//! Offline stand-in for the `bytes` crate, covering the subset this
//! workspace uses: a cheaply cloneable, immutable byte buffer with
//! zero-copy `slice`. Backed by `Arc<[u8]>` plus a window; cloning and
//! slicing never copy the payload.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes::from_vec(Vec::new())
    }

    /// Wrap a static slice. (The real crate is zero-copy here; this
    /// shim copies once, which is equivalent for every in-repo use.)
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from_vec(s.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero-copy sub-slice sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice {lo}..{hi} out of range for Bytes of length {len}");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from_vec(s.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::from_vec(s.as_bytes().to_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_window() {
        let b = Bytes::from_static(b"hello world");
        let w = b.slice(6..11);
        assert_eq!(w.as_ref(), b"world");
        assert_eq!(w.len(), 5);
        let w2 = w.slice(1..3);
        assert_eq!(w2.as_ref(), b"or");
    }

    #[test]
    fn equality_and_clone() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, [1u8, 2, 3]);
        assert!(Bytes::new().is_empty());
    }
}
