//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the in-repo
//! serde shim. No syn/quote: the input item is parsed directly off the
//! `proc_macro::TokenStream` (attributes skipped, `<`/`>` depth tracked
//! to find field boundaries) and the generated impls are emitted as
//! source strings re-parsed into a `TokenStream`.
//!
//! Supported shapes — exactly what the workspace uses: non-generic
//! structs (named / tuple / unit) and enums (unit / tuple / struct
//! variants), plus the field attributes `#[serde(default)]` and
//! `#[serde(with = "module")]`. Anything else panics with a clear
//! message rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
    with: Option<String>,
}

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
enum Input {
    Struct(String, Fields),
    Enum(String, Vec<(String, Fields)>),
}

struct Cursor {
    toks: Vec<TokenTree>,
    i: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            toks: ts.into_iter().collect(),
            i: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.i)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected {what}, got {other:?}"),
        }
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn is_ident(&self, name: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == name)
    }
}

/// Consume leading attributes; fold any `#[serde(...)]` contents into
/// (default, with).
fn parse_attrs(c: &mut Cursor) -> (bool, Option<String>) {
    let mut default = false;
    let mut with = None;
    while c.is_punct('#') {
        c.next();
        let group = match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde shim derive: malformed attribute, got {other:?}"),
        };
        let mut inner = Cursor::new(group.stream());
        if !inner.is_ident("serde") {
            continue; // doc comment, cfg, derive-helper of another macro…
        }
        inner.next();
        let args = match inner.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
            other => panic!("serde shim derive: malformed #[serde(...)], got {other:?}"),
        };
        let mut a = Cursor::new(args.stream());
        while let Some(tok) = a.next() {
            match tok {
                TokenTree::Ident(id) if id.to_string() == "default" => default = true,
                TokenTree::Ident(id) if id.to_string() == "with" => {
                    match (a.next(), a.next()) {
                        (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                            if eq.as_char() == '=' =>
                        {
                            let s = lit.to_string();
                            with = Some(s.trim_matches('"').to_string());
                        }
                        other => panic!("serde shim derive: malformed serde(with), {other:?}"),
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' => {}
                other => panic!(
                    "serde shim derive: unsupported serde attribute {other} — the shim \
                     only knows `default` and `with = \"...\"`"
                ),
            }
        }
    }
    (default, with)
}

fn skip_visibility(c: &mut Cursor) {
    if c.is_ident("pub") {
        c.next();
        if matches!(c.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            c.next();
        }
    }
}

/// Skip tokens until a comma at `<`/`>` depth 0, consuming the comma.
fn skip_to_field_end(c: &mut Cursor) {
    let mut depth = 0i32;
    while let Some(t) = c.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                c.next();
                return;
            }
            _ => {}
        }
        c.next();
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let (default, with) = parse_attrs(&mut c);
        skip_visibility(&mut c);
        let name = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field {name}, got {other:?}"),
        }
        skip_to_field_end(&mut c);
        fields.push(Field {
            name,
            default,
            with,
        });
    }
    fields
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut c = Cursor::new(ts);
    let mut count = 0usize;
    let mut seg_has_tokens = false;
    let mut depth = 0i32;
    while let Some(t) = c.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                seg_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                seg_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if seg_has_tokens {
                    count += 1;
                }
                seg_has_tokens = false;
            }
            _ => seg_has_tokens = true,
        }
    }
    if seg_has_tokens {
        count += 1;
    }
    count
}

fn parse_input(ts: TokenStream) -> Input {
    let mut c = Cursor::new(ts);
    parse_attrs(&mut c);
    skip_visibility(&mut c);
    let kind = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    if c.is_punct('<') {
        panic!("serde shim derive: generic type {name} not supported");
    }
    match kind.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Input::Struct(name, Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Input::Struct(name, Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input::Struct(name, Fields::Unit),
            other => panic!("serde shim derive: malformed struct {name}, got {other:?}"),
        },
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde shim derive: malformed enum {name}, got {other:?}"),
            };
            let mut vc = Cursor::new(body.stream());
            let mut variants = Vec::new();
            while vc.peek().is_some() {
                parse_attrs(&mut vc);
                let vname = vc.expect_ident("variant name");
                let fields = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = count_tuple_fields(g.stream());
                        vc.next();
                        Fields::Tuple(n)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let f = parse_named_fields(g.stream());
                        vc.next();
                        Fields::Named(f)
                    }
                    _ => Fields::Unit,
                };
                // Skip an explicit discriminant, then the separator.
                skip_to_field_end(&mut vc);
                variants.push((vname, fields));
            }
            Input::Enum(name, variants)
        }
        other => panic!("serde shim derive: expected struct/enum, got `{other}`"),
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn named_to_value(fields: &[Field], access_prefix: &str) -> String {
    let mut s = String::from(
        "{ let mut __m = ::std::collections::BTreeMap::new();\n",
    );
    for f in fields {
        let access = format!("{}{}", access_prefix, f.name);
        match &f.with {
            Some(path) => s.push_str(&format!(
                "__m.insert(::std::string::String::from(\"{n}\"), \
                 {path}::serialize(&{access}, ::serde::value::ValueSerializer)\
                 .expect(\"with-module serialization into Value cannot fail\"));\n",
                n = f.name,
            )),
            None => s.push_str(&format!(
                "__m.insert(::std::string::String::from(\"{n}\"), \
                 ::serde::Serialize::to_value(&{access}));\n",
                n = f.name,
            )),
        }
    }
    s.push_str("::serde::value::Value::Object(__m) }");
    s
}

fn named_from_value(ty_label: &str, fields: &[Field]) -> String {
    // Emits the `field: <expr>,` list; caller wraps in `Name { ... }`.
    let mut s = String::new();
    for f in fields {
        let on_missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return Err(::serde::Error::missing_field(\"{ty_label}\", \"{n}\"))",
                n = f.name
            )
        };
        let on_present = match &f.with {
            Some(path) => format!(
                "{path}::deserialize(::serde::value::ValueDeserializer::new(__v))?"
            ),
            None => "::serde::Deserialize::from_value(__v)?".to_string(),
        };
        s.push_str(&format!(
            "{n}: match __m.remove(\"{n}\") {{ Some(__v) => {on_present}, None => {on_missing} }},\n",
            n = f.name
        ));
    }
    s
}

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::Struct(name, Fields::Unit) => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ ::serde::value::Value::Null }}\n}}"
        ),
        Input::Struct(name, Fields::Tuple(1)) => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ ::serde::Serialize::to_value(&self.0) }}\n}}"
        ),
        Input::Struct(name, Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::value::Value {{ \
                 ::serde::value::Value::Array(vec![{}]) }}\n}}",
                elems.join(", ")
            )
        }
        Input::Struct(name, Fields::Named(fields)) => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ {name_body} }}\n}}",
            name_body = named_to_value(fields, "self."),
        ),
        Input::Enum(name, variants) => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::value::Value::String(\
                         ::std::string::String::from(\"{vname}\")),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::value::Value::tag(\"{vname}\", \
                         ::serde::Serialize::to_value(__f0)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::value::Value::tag(\"{vname}\", \
                             ::serde::value::Value::Array(vec![{}])),\n",
                            binds.join(", "),
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                        let body = named_to_value_borrowed(fs);
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::value::Value::tag(\"{vname}\", {body}),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::value::Value {{\n\
                 match self {{\n{arms}}}\n}}\n}}"
            )
        }
    }
}

/// Like `named_to_value` but for match-bound field references
/// (struct-variant bindings are already `&field`).
fn named_to_value_borrowed(fields: &[Field]) -> String {
    let mut s = String::from("{ let mut __m = ::std::collections::BTreeMap::new();\n");
    for f in fields {
        match &f.with {
            Some(path) => s.push_str(&format!(
                "__m.insert(::std::string::String::from(\"{n}\"), \
                 {path}::serialize({n}, ::serde::value::ValueSerializer)\
                 .expect(\"with-module serialization into Value cannot fail\"));\n",
                n = f.name,
            )),
            None => s.push_str(&format!(
                "__m.insert(::std::string::String::from(\"{n}\"), \
                 ::serde::Serialize::to_value({n}));\n",
                n = f.name,
            )),
        }
    }
    s.push_str("::serde::value::Value::Object(__m) }");
    s
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::Struct(name, Fields::Unit) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: ::serde::value::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             match __v {{ ::serde::value::Value::Null => Ok({name}), \
             __other => Err(::serde::Error::unexpected(\"null for unit struct {name}\", &__other)) }}\n}}\n}}"
        ),
        Input::Struct(name, Fields::Tuple(1)) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: ::serde::value::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             Ok({name}(::serde::Deserialize::from_value(__v)?))\n}}\n}}"
        ),
        Input::Struct(name, Fields::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|_| "::serde::Deserialize::from_value(__it.next().unwrap())?".to_string())
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: ::serde::value::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let mut __it = match __v {{\n\
                 ::serde::value::Value::Array(a) if a.len() == {n} => a.into_iter(),\n\
                 __other => return Err(::serde::Error::unexpected(\"array of length {n} for {name}\", &__other)),\n\
                 }};\n\
                 Ok({name}({}))\n}}\n}}",
                elems.join(", ")
            )
        }
        Input::Struct(name, Fields::Named(fields)) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: ::serde::value::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             let mut __m = match __v {{\n\
             ::serde::value::Value::Object(m) => m,\n\
             __other => return Err(::serde::Error::unexpected(\"object for {name}\", &__other)),\n\
             }};\n\
             Ok({name} {{\n{fields_src}}})\n}}\n}}",
            fields_src = named_from_value(name, fields),
        ),
        Input::Enum(name, variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}),\n"
                    )),
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|_| {
                                "::serde::Deserialize::from_value(__it.next().unwrap())?".to_string()
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let mut __it = match __inner {{\n\
                             ::serde::value::Value::Array(a) if a.len() == {n} => a.into_iter(),\n\
                             __other => return Err(::serde::Error::unexpected(\"array of length {n} for {name}::{vname}\", &__other)),\n\
                             }};\n\
                             Ok({name}::{vname}({}))\n}}\n",
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let label = format!("{name}::{vname}");
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let mut __m = match __inner {{\n\
                             ::serde::value::Value::Object(m) => m,\n\
                             __other => return Err(::serde::Error::unexpected(\"object for {label}\", &__other)),\n\
                             }};\n\
                             Ok({name}::{vname} {{\n{fields_src}}})\n}}\n",
                            fields_src = named_from_value(&label, fs),
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: ::serde::value::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match __v {{\n\
                 ::serde::value::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::serde::Error::custom(format!(\"unknown unit variant `{{}}` for {name}\", __other))),\n\
                 }},\n\
                 ::serde::value::Value::Object(mut __map) if __map.len() == 1 => {{\n\
                 let (__tag, __inner) = __map.pop_first().unwrap();\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\
                 __other => Err(::serde::Error::custom(format!(\"unknown variant `{{}}` for {name}\", __other))),\n\
                 }}\n}}\n\
                 __other => Err(::serde::Error::unexpected(\"variant of {name}\", &__other)),\n\
                 }}\n}}\n}}"
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let src = gen_serialize(&parsed);
    src.parse()
        .unwrap_or_else(|e| panic!("serde shim derive: generated invalid Rust: {e:?}\n{src}"))
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let src = gen_deserialize(&parsed);
    src.parse()
        .unwrap_or_else(|e| panic!("serde shim derive: generated invalid Rust: {e:?}\n{src}"))
}
