//! Offline stand-in for `proptest`. Strategies generate values from a
//! deterministic per-test seeded RNG; there is no shrinking — a failing
//! case panics with the regular assert message (the generator is
//! deterministic, so the failure reproduces on re-run). Case count
//! comes from `PROPTEST_CASES` (default 64); `PROPTEST_SEED` perturbs
//! the per-test seed for exploratory runs.

use rand::{Rng, SeedableRng, StdRng};

pub type TestRng = StdRng;

/// Seed derived from the test's name so each property explores its own
/// sequence, reproducibly.
pub fn test_rng(test_name: &str) -> TestRng {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    let extra: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    StdRng::seed_from_u64(h.finish() ^ extra)
}

pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    pub alternatives: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.alternatives.is_empty(), "prop_oneof! of nothing");
        let idx = rng.gen_range(0..self.alternatives.len());
        self.alternatives[idx].generate(rng)
    }
}

// --- primitive strategies ---------------------------------------------------

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// `any::<T>()` — the canonical strategy for a type.
#[derive(Clone, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias toward boundary values the way real proptest's
                // binary search of sizes tends to surface them.
                match rng.gen_range(0..10u32) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0 as $t,
                    3 => 1 as $t,
                    _ => rng.gen::<u64>() as $t,
                }
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.gen_range(0..20u32) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -0.0,
            5 => f64::MIN_POSITIVE,
            // Full-range bit patterns (finite) plus unit-interval picks.
            6..=12 => f64::from_bits(rng.gen::<u64>()),
            _ => (rng.gen::<f64>() - 0.5) * 2e9,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.gen_bool(0.9) {
            rng.gen_range(0x20u32..0x7f) as u8 as char
        } else {
            char::from_u32(rng.gen_range(0x80u32..0xd800)).unwrap_or('ő')
        }
    }
}

// Ranges are strategies.
macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// Tuples of strategies are strategies.
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

// --- string strategies from regex literals ----------------------------------

/// `&str` is a strategy: the string is a regex in the tiny subset the
/// workspace uses — literal chars, `.`, `[a-z0-9_]` classes, and
/// `{m,n}` / `*` / `+` / `?` repetition of the last atom.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_regex(self, rng)
    }
}

#[derive(Clone)]
enum Atom {
    Literal(char),
    AnyChar,
    Class(Vec<(char, char)>),
}

fn class_pick(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u32 = ranges.iter().map(|&(a, b)| b as u32 - a as u32 + 1).sum();
    let mut idx = rng.gen_range(0..total);
    for &(a, b) in ranges {
        let span = b as u32 - a as u32 + 1;
        if idx < span {
            return char::from_u32(a as u32 + idx).unwrap();
        }
        idx -= span;
    }
    unreachable!()
}

fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom.
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyChar
            }
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "proptest shim: unterminated class in regex {pattern:?}"
                );
                i += 1; // ']'
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                assert!(
                    i < chars.len(),
                    "proptest shim: trailing backslash in regex {pattern:?}"
                );
                let c = chars[i];
                i += 1;
                match c {
                    'd' => Atom::Class(vec![('0', '9')]),
                    'w' => Atom::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    other => Atom::Literal(other),
                }
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Parse an optional repetition suffix.
        let (lo, hi) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i)
                        .unwrap_or_else(|| {
                            panic!("proptest shim: unterminated {{}} in regex {pattern:?}")
                        });
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().unwrap_or(0),
                            b.trim().parse().unwrap_or(8),
                        ),
                        None => {
                            let n = body.trim().parse().unwrap_or(1);
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        let n = rng.gen_range(lo..=hi);
        for _ in 0..n {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::AnyChar => out.push(char::arbitrary(rng)),
                Atom::Class(ranges) => out.push(class_pick(ranges, rng)),
            }
        }
    }
    out
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ".{0,16}".generate(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    /// Sizes accepted as `Range<usize>` (exclusive upper bound, like
    /// real proptest's `0..300`).
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy {
            elem,
            lo: size.start,
            hi: size.end - 1,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.lo..=self.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Uniform choice among heterogeneous strategies with a common value
/// type; each arm is boxed.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union { alternatives: vec![ $( $crate::Strategy::boxed($strat) ),+ ] }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// No shrinking, so an assumption failure just skips the case by
/// regenerating on the next loop iteration (implemented as early
/// return from the closure body via labeled continue is not possible
/// in a macro; we simply skip the rest of this case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Parameter binder for `proptest!`: handles both `pat in strategy`
/// and `name: Type` (= `any::<Type>()`) forms, in any mix.
#[macro_export]
#[doc(hidden)]
macro_rules! __prop_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $name: $ty = $crate::Strategy::generate(&$crate::any::<$ty>(), $rng);
        $crate::__prop_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $pat:pat in $strat:expr $(, $($rest:tt)*)?) => {
        let $pat = $crate::Strategy::generate(&($strat), $rng);
        $crate::__prop_bind!($rng $(, $($rest)*)?);
    };
}

/// The property-test harness macro. Each `fn` runs `cases()` times
/// with deterministically seeded inputs.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cases = $crate::cases();
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for _ in 0..__cases {
                // One closure call per case so prop_assume! can skip
                // a case with `return`.
                let __one = |__rng: &mut $crate::TestRng| {
                    $crate::__prop_bind!(__rng, $($params)*);
                    $body
                };
                __one(&mut __rng);
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn mixed_binding_forms(a in 0i64..10, b: bool, s in "[a-z]{0,8}", t in (0u8..3u8, 5u8..9u8)) {
            prop_assert!((0..10).contains(&a));
            let _ = b;
            prop_assert!(s.len() <= 8 && s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(t.0 < 3 && (5..9).contains(&t.1));
        }

        #[test]
        fn oneof_and_map_cover_alternatives(v in crate::collection::vec(
            prop_oneof![
                Just(-1i64),
                any::<i64>().prop_map(|x| x.saturating_abs()),
            ],
            0..50,
        )) {
            for x in v {
                prop_assert!(x >= -1);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let s = crate::collection::vec(0u64..100, 1..20);
        for _ in 0..10 {
            assert_eq!(
                crate::Strategy::generate(&s, &mut a),
                crate::Strategy::generate(&s, &mut b)
            );
        }
    }
}
