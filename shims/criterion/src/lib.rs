//! Offline stand-in for `criterion`. Same macro/builder surface as the
//! real crate for the subset the workspace's benches use; measurement
//! is a simple warm-up + timed-loop mean with text output (no plots,
//! no statistics, no baselines).

use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.warm_up_time, self.measurement_time, self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let c = &*self.criterion;
        let mut b = Bencher::new(c.warm_up_time, c.measurement_time, c.sample_size);
        f(&mut b, input);
        b.report(&label);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.bench_function(&label, f);
        self
    }

    pub fn finish(self) {}
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<P: fmt::Display>(function_name: impl fmt::Display, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    sample_size: usize,
    /// (total elapsed, iterations) recorded by the last `iter` call.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    fn new(warm_up: Duration, measure: Duration, sample_size: usize) -> Self {
        Bencher {
            warm_up,
            measure,
            sample_size,
            result: None,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Measure: aim for sample_size batches within the budget.
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        let target_iters = if per_iter.is_zero() {
            self.sample_size as u64 * 1000
        } else {
            (self.measure.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64
        };
        let start = Instant::now();
        let mut done: u64 = 0;
        while done < target_iters {
            black_box(f());
            done += 1;
            if start.elapsed() >= self.measure {
                break;
            }
        }
        self.result = Some((start.elapsed(), done.max(1)));
    }

    fn report(&self, name: &str) {
        match self.result {
            Some((elapsed, iters)) => {
                let ns = elapsed.as_nanos() as f64 / iters as f64;
                println!("{name:<40} {:>12.1} ns/iter ({iters} iters)", ns);
            }
            None => println!("{name:<40} (no measurement)"),
        }
    }
}

/// Both real-criterion forms: positional and `name/config/targets`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut __c = $config;
            $( $target(&mut __c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut hits = 0u64;
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter("p1"), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        hits += 1;
        assert_eq!(hits, 1);
    }
}
