//! Offline stand-in for the `rand` crate. Implements the subset the
//! workspace uses: `StdRng` (a seeded xoshiro256** generator with
//! splitmix64 stream initialisation), the `Rng`/`RngCore`/`SeedableRng`
//! traits, `gen`/`gen_bool`/`gen_range`/`fill_bytes`, and `thread_rng`.
//!
//! Statistical quality matches what the simulators need (uniform,
//! long-period, well-mixed); the bit streams are NOT those of the real
//! rand crate — every consumer in this workspace only relies on
//! "same seed ⇒ same sequence", which this upholds.

use std::cell::RefCell;
use std::ops::{Bound, RangeBounds};

pub mod rngs {
    pub use crate::StdRng;
    pub use crate::ThreadRng;
}

pub mod prelude {
    pub use crate::{thread_rng, Rng, RngCore, SeedableRng, StdRng};
}

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256** by Blackman & Vigna (public domain reference
/// implementation), seeded through splitmix64 so that nearby seeds
/// produce uncorrelated streams.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Types that can be drawn uniformly from a generator (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in [0, 1) from the top 53 bits, as the real crate does.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types usable as `gen_range` bounds.
pub trait UniformSampled: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_excl: Self) -> Self;
    fn successor(self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_excl: Self) -> Self {
                assert!(lo < hi_excl, "gen_range: empty range");
                let span = (hi_excl as $wide).wrapping_sub(lo as $wide) as u128;
                // Multiply-shift bounded sampling; the tiny modulo bias
                // over a 128-bit draw is far below observable for the
                // simulators' ranges.
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                ((lo as $wide).wrapping_add(draw as $wide)) as $t
            }
            fn successor(self) -> Self { self + 1 }
        }
    )*};
}

uniform_int!(
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, usize => u128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128,
);

impl UniformSampled for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi_excl: Self) -> Self {
        assert!(lo < hi_excl, "gen_range: empty range");
        let unit = <f64 as Standard>::sample(rng);
        lo + unit * (hi_excl - lo)
    }
    fn successor(self) -> Self {
        self // inclusive f64 upper bounds are treated as exclusive
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        <f64 as Standard>::sample(self) < p
    }

    fn gen_range<T: UniformSampled, B: RangeBounds<T>>(&mut self, range: B) -> T {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n.successor(),
            Bound::Unbounded => panic!("gen_range: unbounded start"),
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n.successor(),
            Bound::Excluded(&n) => n,
            Bound::Unbounded => panic!("gen_range: unbounded end"),
        };
        T::sample_range(self, lo, hi)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

thread_local! {
    static THREAD_RNG: RefCell<StdRng> = RefCell::new({
        // Entropy without any external crate: hash the thread id and a
        // monotonic counter through RandomState (itself OS-seeded).
        use std::collections::hash_map::RandomState;
        use std::hash::{BuildHasher, Hash, Hasher};
        let mut h = RandomState::new().build_hasher();
        std::thread::current().id().hash(&mut h);
        std::time::SystemTime::UNIX_EPOCH.elapsed().ok().hash(&mut h);
        StdRng::seed_from_u64(h.finish())
    });
}

/// Handle to a thread-local OS-entropy-seeded generator.
#[derive(Clone, Debug, Default)]
pub struct ThreadRng;

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        THREAD_RNG.with(|r| r.borrow_mut().next_u32())
    }
    fn next_u64(&mut self) -> u64 {
        THREAD_RNG.with(|r| r.borrow_mut().next_u64())
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        THREAD_RNG.with(|r| r.borrow_mut().fill_bytes(dest))
    }
}

pub fn thread_rng() -> ThreadRng {
    ThreadRng
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let inc = r.gen_range(0..=3u64);
            assert!(inc <= 3);
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} not ~0.5");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
