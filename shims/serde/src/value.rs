//! The JSON-like value tree at the center of the shim's data model,
//! plus the compact writer (`Display`) and the `Value`-backed
//! `Serializer`/`Deserializer` adapters used by derived code and
//! `#[serde(with = "...")]` modules.
//!
//! Objects are `BTreeMap`s so every rendering of the same logical
//! value is byte-identical — the chaos harness and the observability
//! snapshots assert on exactly this.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Deserializer, Error, Serializer};

#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

#[derive(Debug, Clone, Copy)]
pub enum Number {
    PosInt(u128),
    NegInt(i128),
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(p) => p as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(p) => u64::try_from(p).ok(),
            Number::NegInt(_) | Number::Float(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(p) => i64::try_from(p).ok(),
            Number::NegInt(n) => i64::try_from(n).ok(),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        use Number::*;
        match (*self, *other) {
            (PosInt(a), PosInt(b)) => a == b,
            (NegInt(a), NegInt(b)) => a == b,
            (PosInt(a), NegInt(b)) | (NegInt(b), PosInt(a)) => {
                b >= 0 && a == b as u128
            }
            (Float(a), Float(b)) => a == b,
            // Integer-vs-float compare numerically (serde_json treats
            // 1 and 1.0 as distinct, but nothing here relies on that).
            (Float(f), other) | (other, Float(f)) => Number::as_f64(&other) == f,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(p) => write!(f, "{p}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) if !x.is_finite() => f.write_str("null"),
            Number::Float(x) if x == x.trunc() && x.abs() < 1e16 => write!(f, "{x:.1}"),
            Number::Float(x) => write!(f, "{x}"),
        }
    }
}

impl Value {
    /// Externally tagged enum payload: `{"name": inner}`.
    pub fn tag(name: &str, inner: Value) -> Value {
        let mut m = BTreeMap::new();
        m.insert(name.to_string(), inner);
        Value::Object(m)
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

pub(crate) fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

/// Compact JSON — `format!("{v}")` is the canonical snapshot encoding.
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(self, &mut out);
        f.write_str(&out)
    }
}

/// Parse a bare JSON number (used for stringified map keys).
pub(crate) fn parse_number_str(s: &str) -> Option<Number> {
    if s.is_empty() {
        return None;
    }
    if !s.contains(['.', 'e', 'E']) {
        if let Some(rest) = s.strip_prefix('-') {
            if rest.chars().all(|c| c.is_ascii_digit()) && !rest.is_empty() {
                return s.parse::<i128>().ok().map(Number::NegInt);
            }
            return None;
        }
        if s.chars().all(|c| c.is_ascii_digit()) {
            return s.parse::<u128>().ok().map(Number::PosInt);
        }
        return None;
    }
    s.parse::<f64>().ok().map(Number::Float)
}

/// `Serializer` that just hands back the `Value` — the terminal of
/// every generic serialization path in the shim.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    fn serialize_value(self, value: Value) -> Result<Value, Error> {
        Ok(value)
    }
}

/// `Deserializer` over an owned `Value`.
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;
    fn into_value(self) -> Result<Value, Error> {
        Ok(self.value)
    }
}

// From impls so `json!`-style construction works ergonomically.
macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::PosInt(v as u128)) }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value { Value::from(*v) }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize, u128);

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                let v = v as i128;
                if v >= 0 { Value::Number(Number::PosInt(v as u128)) }
                else { Value::Number(Number::NegInt(v)) }
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value { Value::from(*v) }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize, i128);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        if v.is_finite() {
            Value::Number(Number::Float(v))
        } else {
            Value::Null
        }
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::from(v as f64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&&str> for Value {
    fn from(v: &&str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&f64> for Value {
    fn from(v: &f64) -> Value {
        Value::from(*v)
    }
}

impl From<&f32> for Value {
    fn from(v: &f32) -> Value {
        Value::from(*v)
    }
}

impl From<&bool> for Value {
    fn from(v: &bool) -> Value {
        Value::Bool(*v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

impl From<BTreeMap<String, Value>> for Value {
    fn from(m: BTreeMap<String, Value>) -> Value {
        Value::Object(m)
    }
}
