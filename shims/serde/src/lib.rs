//! Offline stand-in for `serde`, shaped so the workspace's existing
//! serde-idiomatic code compiles unchanged. The data model is
//! Value-centric: `Serialize` produces a [`value::Value`] tree and
//! `Deserialize` consumes one; the generic `Serializer`/`Deserializer`
//! traits are thin adapters over that tree so hand-written
//! `#[serde(with = "...")]` modules (generic over `S: Serializer` /
//! `D: Deserializer<'de>`) keep their real-serde signatures.
//!
//! Encoding conventions mirror serde_json: structs are objects, enums
//! are externally tagged (`"Unit"` / `{"Variant": ...}`), newtype
//! structs are transparent, map keys are stringified.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Number, Value, ValueDeserializer, ValueSerializer};

/// The single error type for shim (de)serialization.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error {
            msg: format!("missing field `{field}` while deserializing {ty}"),
        }
    }

    pub fn unexpected(expected: &str, got: &Value) -> Self {
        Error {
            msg: format!("expected {expected}, got {got}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    /// Convert to the shim's JSON-like value tree.
    fn to_value(&self) -> Value;

    /// real-serde-shaped entry point; routes through [`Self::to_value`].
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>
    where
        Self: Sized,
    {
        serializer.serialize_value(self.to_value())
    }
}

pub trait Serializer: Sized {
    type Ok;
    type Error: From<Error>;
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// No `'de` lifetime on the trait itself (the shim always deserializes
/// from an owned `Value`), so every `Deserialize` is `DeserializeOwned`.
pub trait Deserialize: Sized {
    fn from_value(value: Value) -> Result<Self, Error>;

    /// real-serde-shaped entry point; routes through [`Self::from_value`].
    fn deserialize<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.into_value()?;
        Self::from_value(value).map_err(D::Error::from)
    }
}

pub trait Deserializer<'de>: Sized {
    type Error: From<Error>;
    fn into_value(self) -> Result<Value, Self::Error>;
}

pub mod ser {
    pub use crate::{Error, Serialize, Serializer};
}

pub mod de {
    pub use crate::Deserialize as DeserializeOwned;
    pub use crate::{Deserialize, Deserializer, Error};
}

pub fn to_value<T: Serialize + ?Sized>(t: &T) -> Value {
    t.to_value()
}

pub fn from_value<T: Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(v)
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u128))
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize, u128);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u128))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize, i128);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort the rendered elements.
        let mut elems: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        elems.sort_by_key(|a| a.to_string());
        Value::Array(elems)
    }
}

fn key_string(v: Value) -> String {
    match v {
        Value::String(s) => s,
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must serialize to a string, number, or bool; got {other}"),
    }
}

fn key_from_string<T: Deserialize>(s: String) -> Result<T, Error> {
    match T::from_value(Value::String(s.clone())) {
        Ok(v) => Ok(v),
        Err(first) => match value::parse_number_str(&s) {
            Some(n) => T::from_value(Value::Number(n)),
            None => Err(first),
        },
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(b),
            other => Err(Error::unexpected("bool", &other)),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s),
            other => Err(Error::unexpected("string", &other)),
        }
    }
}

impl Deserialize for char {
    fn from_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::unexpected("single-char string", &other)),
        }
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::PosInt(p)) => {
                        <$t>::try_from(p).map_err(|_| Error::custom(format!(
                            "integer {p} out of range for {}", stringify!($t)
                        )))
                    }
                    Value::Number(Number::NegInt(n)) => {
                        <$t>::try_from(n).map_err(|_| Error::custom(format!(
                            "integer {n} out of range for {}", stringify!($t)
                        )))
                    }
                    other => Err(Error::unexpected(stringify!($t), &other)),
                }
            }
        }
    )*};
}
deserialize_int!(u8, u16, u32, u64, usize, u128, i8, i16, i32, i64, isize, i128);

impl Deserialize for f64 {
    fn from_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(Error::unexpected("number", &other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.into_iter().map(T::from_value).collect(),
            other => Err(Error::unexpected("array", &other)),
        }
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(|v| v.into_iter().collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(|v| v.into_iter().collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .into_iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::unexpected("object", &other)),
        }
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .into_iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::unexpected("object", &other)),
        }
    }
}

fn fixed_array(v: Value, n: usize) -> Result<Vec<Value>, Error> {
    match v {
        Value::Array(items) if items.len() == n => Ok(items),
        Value::Array(items) => Err(Error::custom(format!(
            "expected array of length {n}, got length {}",
            items.len()
        ))),
        other => Err(Error::unexpected("array", &other)),
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: Value) -> Result<Self, Error> {
        let mut it = fixed_array(v, 2)?.into_iter();
        Ok((
            A::from_value(it.next().unwrap())?,
            B::from_value(it.next().unwrap())?,
        ))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: Value) -> Result<Self, Error> {
        let mut it = fixed_array(v, 3)?.into_iter();
        Ok((
            A::from_value(it.next().unwrap())?,
            B::from_value(it.next().unwrap())?,
            C::from_value(it.next().unwrap())?,
        ))
    }
}

impl Deserialize for Value {
    fn from_value(v: Value) -> Result<Self, Error> {
        Ok(v)
    }
}
