//! Offline stand-in for `serde_json`, built on the serde shim's
//! [`Value`] tree: a strict recursive-descent JSON parser, compact and
//! pretty writers, and a flat-object `json!` macro. Object keys are
//! `BTreeMap`-ordered, so output is deterministic — the observability
//! snapshots rely on that for byte-identical same-seed runs.

use serde::{Deserialize, Serialize};

pub use serde::value::{Number, Value};
pub use serde::Error;

pub mod error {
    pub use serde::Error;
}

pub fn to_value<T: Serialize + ?Sized>(t: &T) -> Result<Value, Error> {
    Ok(t.to_value())
}

pub fn from_value<T: Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(v)
}

pub fn to_string<T: Serialize + ?Sized>(t: &T) -> Result<String, Error> {
    Ok(t.to_value().to_string())
}

pub fn to_string_pretty<T: Serialize + ?Sized>(t: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&t.to_value(), 0, &mut out);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(t: &T) -> Result<Vec<u8>, Error> {
    to_string(t).map(String::into_bytes)
}

pub fn to_vec_pretty<T: Serialize + ?Sized>(t: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(t).map(String::into_bytes)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(parse(s)?)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in m.iter().enumerate() {
                out.push_str(&pad_in);
                out.push_str(&Value::String(k.clone()).to_string());
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
                if i + 1 < m.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut m = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(Error::custom(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair handling.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::custom("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xd800) << 10) + (low.wrapping_sub(0xdc00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos already
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::custom(format!("invalid UTF-8 in string: {e}")))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(|f| Value::Number(Number::Float(f)))
                .map_err(|e| Error::custom(format!("bad number `{text}`: {e}")))
        } else if let Some(neg) = text.strip_prefix('-') {
            // Parse the magnitude, then negate, so i128::MIN-adjacent
            // values stay exact.
            neg.parse::<i128>()
                .map(|m| Value::Number(Number::NegInt(-m)))
                .map_err(|e| Error::custom(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u128>()
                .map(|u| Value::Number(Number::PosInt(u)))
                .map_err(|e| Error::custom(format!("bad number `{text}`: {e}")))
        }
    }
}

/// Build a [`Value`] in place. Supports the workspace's usage: flat or
/// nested objects with string-literal keys, arrays, and bare
/// expressions convertible with `Value::from`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __m = ::std::collections::BTreeMap::new();
        // Borrow like serde_json's `json!` does, so callers can keep
        // using the named value afterwards.
        $( __m.insert(::std::string::String::from($key), $crate::to_value(&$val).unwrap()); )*
        $crate::Value::Object(__m)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem).unwrap() ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basics() {
        for text in [
            "null",
            "true",
            "[1,2,3]",
            "{\"a\":1,\"b\":[true,null],\"c\":\"x\\ny\"}",
            "-12",
            "1.5",
        ] {
            let v: Value = from_str(text).unwrap();
            let v2: Value = from_str(&v.to_string()).unwrap();
            assert_eq!(v, v2, "{text}");
        }
    }

    #[test]
    fn json_macro_and_display() {
        let v = json!({"b": 2u64, "a": "x", "list": vec![1u64, 2]});
        // BTreeMap ordering: keys sorted.
        assert_eq!(v.to_string(), "{\"a\":\"x\",\"b\":2,\"list\":[1,2]}");
    }

    #[test]
    fn pretty_parses_back() {
        let v = json!({"x": 1u64, "y": vec![1u64, 2]});
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_formatting_is_stable() {
        assert_eq!(json!(1.0f64).to_string(), "1.0");
        assert_eq!(json!(0.25f64).to_string(), "0.25");
        assert_eq!(json!(f64::NAN).to_string(), "null");
    }
}
