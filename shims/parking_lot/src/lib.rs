//! Offline stand-in for `parking_lot`, backed by `std::sync`. Matches
//! the parking_lot API shape the workspace uses: no-poison `lock()`
//! returning the guard directly, `Condvar::wait(&mut guard)`, and
//! RwLock `read()`/`write()`.
//!
//! Poisoning is deliberately swallowed (`unwrap_or_else(PoisonError::
//! into_inner)`): parking_lot has no poisoning, and the chaos harness
//! intentionally panics worker threads while locks are held.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard moved during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard moved during wait")
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard moved during wait");
        guard.inner = Some(
            self.inner
                .wait(std_guard)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Returns true if the wait timed out (parking_lot's
    /// `WaitTimeoutResult::timed_out` folded into a bool).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let std_guard = guard.inner.take().expect("guard moved during wait");
        let (g, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        res.timed_out()
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            *ready = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        h.join().unwrap();
        assert!(*ready);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }
}
