//! Cross-architecture validation: every TPC-H query must produce the
//! same answer on Eon mode (shared storage, distributed local phases +
//! coordinator merge) and on the Enterprise baseline (shared nothing,
//! buddy projections). The two paths share the executor but nothing
//! about storage, pruning, caching, sharding, or distribution — so
//! agreement is strong evidence both are right.

use std::sync::Arc;

use eon_core::{EonConfig, EonDb};
use eon_enterprise::{EnterpriseConfig, EnterpriseDb};
use eon_storage::MemFs;
use eon_workload::tpch::{load_tpch_enterprise, load_tpch_eon, TpchData};
use eon_workload::{tpch_query, TPCH_QUERY_COUNT};

/// Float aggregates are sensitive to summation order, which differs
/// across architectures and after mergeout re-sorts containers; compare
/// with a relative tolerance instead of bitwise.
fn rows_approx_eq(a: &[Vec<eon_types::Value>], b: &[Vec<eon_types::Value>]) -> bool {
    use eon_types::Value;
    if a.len() != b.len() {
        return false;
    }
    a.iter().zip(b).all(|(ra, rb)| {
        ra.len() == rb.len()
            && ra.iter().zip(rb).all(|(va, vb)| match (va, vb) {
                (Value::Float(x), Value::Float(y)) => {
                    let scale = x.abs().max(y.abs()).max(1.0);
                    (x - y).abs() / scale < 1e-9
                }
                _ => va == vb,
            })
    })
}

fn setup() -> (Arc<EonDb>, Arc<EnterpriseDb>) {
    let data = TpchData::generate(0.002, 0xeee);
    let eon = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(4, 3)).unwrap();
    load_tpch_eon(&eon, &data).unwrap();
    let ent = EnterpriseDb::create(EnterpriseConfig {
        num_nodes: 4,
        exec_slots: 4,
        wos_threshold: 1_000_000, // force everything through the WOS path too
        fragment_ms: 0,
    });
    load_tpch_enterprise(&ent, &data).unwrap();
    (eon, ent)
}

#[test]
fn all_twenty_queries_agree_across_architectures() {
    let (eon, ent) = setup();
    let mut nonempty = 0;
    for q in 1..=TPCH_QUERY_COUNT {
        let plan = tpch_query(q);
        let a = eon.query(&plan).unwrap_or_else(|e| panic!("Q{q} failed on Eon: {e}"));
        let b = ent
            .query(&plan)
            .unwrap_or_else(|e| panic!("Q{q} failed on Enterprise: {e}"));
        assert!(
            rows_approx_eq(&a, &b),
            "Q{q}: Eon and Enterprise disagree\n eon: {a:?}\n ent: {b:?}"
        );
        if !a.is_empty() {
            nonempty += 1;
        }
    }
    // The tiny scale factor can legitimately leave a few highly
    // selective queries empty, but most must return rows or the
    // workload itself is broken.
    assert!(nonempty >= 14, "only {nonempty}/20 queries returned rows");
}

#[test]
fn eon_answers_stable_under_node_failure() {
    let (eon, _) = setup();
    let baseline: Vec<_> = (1..=6).map(|q| eon.query(&tpch_query(q)).unwrap()).collect();
    eon.kill_node(eon_types::NodeId(2)).unwrap();
    for (i, q) in (1..=6).enumerate() {
        assert!(
            rows_approx_eq(&eon.query(&tpch_query(q)).unwrap(), &baseline[i]),
            "Q{q} changed after node failure"
        );
    }
}

#[test]
fn eon_answers_stable_after_mergeout() {
    let (eon, _) = setup();
    let baseline: Vec<_> = (1..=6).map(|q| eon.query(&tpch_query(q)).unwrap()).collect();
    eon.run_mergeout().unwrap();
    for (i, q) in (1..=6).enumerate() {
        assert!(
            rows_approx_eq(&eon.query(&tpch_query(q)).unwrap(), &baseline[i]),
            "Q{q} changed after mergeout"
        );
    }
}
