//! End-to-end tests for the network front door (DESIGN.md "Network
//! service layer"): concurrent sessions over real TCP, typed
//! backpressure on the wire, disconnect-fires-CancelToken resource
//! release, and a malformed-frame fuzz that must never hang or panic
//! the server.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eon_columnar::Projection;
use eon_core::{EonConfig, EonDb};
use eon_net::wire::{read_frame, write_frame};
use eon_net::{
    ClientOpts, EonClient, EonServer, Request, Response, ServerHandle, ServerOpts, SqlOutcome,
    MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use eon_storage::MemFs;
use eon_types::{schema, EonError, Value};

const SLOTS: usize = 4;

/// A served cluster: 3 nodes / 3 shards, a seeded table, and the given
/// admission-pool shape.
fn serve(
    max_concurrent: usize,
    max_queue: usize,
    timeout_ms: u64,
) -> (Arc<EonDb>, ServerHandle) {
    let db = EonDb::create(
        Arc::new(MemFs::new()),
        EonConfig::new(3, 3)
            .exec_slots(SLOTS)
            .admission_max_concurrent(max_concurrent)
            .admission_max_queue(max_queue)
            .admission_timeout_ms(timeout_ms)
            .slot_wait_ms(30_000),
    )
    .unwrap();
    let s = schema![("id", Int), ("grp", Str), ("price", Int)];
    db.create_table(
        "sales",
        s.clone(),
        vec![Projection::super_projection("sales_super", &s, &[0], &[0])],
    )
    .unwrap();
    db.copy_into(
        "sales",
        (0..2000)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Str(if i % 3 == 0 { "a" } else { "b" }.into()),
                    Value::Int(i % 50),
                ]
            })
            .collect(),
    )
    .unwrap();
    let server = EonServer::bind(db.clone(), "127.0.0.1:0", ServerOpts::default()).unwrap();
    (db, server.spawn())
}

/// Every node's slot semaphore back at capacity, admission pool
/// drained, and no live server sessions — the quiesce invariant.
fn assert_quiesced(db: &Arc<EonDb>, handle: &ServerHandle) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.active_sessions() > 0 {
        assert!(
            Instant::now() < deadline,
            "server sessions never quiesced ({} live)",
            handle.active_sessions()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    for node in db.membership().up_nodes() {
        assert_eq!(
            node.slots.available(),
            node.slots.capacity(),
            "node {} leaked execution slots",
            node.id
        );
    }
    assert_eq!(db.admission().pool_depths(0), (0, 0), "admission pool did not drain");
}

/// Read a server counter: the registry interns by (name, labels), so
/// this resolves to the live counter the server increments.
fn counter(db: &Arc<EonDb>, name: &str) -> u64 {
    db.config()
        .obs
        .counter(name, &[("subsystem", "server")])
        .get()
}

#[test]
fn concurrent_sessions_resolve_with_typed_outcomes() {
    let (db, handle) = serve(2, 2, 1_000);
    let addr = handle.addr();

    // Hold every slot for 100ms so the pool and queue fill and the
    // overflow must bounce with Saturated instead of parking.
    let guards: Vec<_> = db
        .membership()
        .up_nodes()
        .iter()
        .map(|n| n.slots.acquire(n.slots.capacity()).unwrap())
        .collect();

    let mut clients = Vec::new();
    for _ in 0..16 {
        clients.push(std::thread::spawn(move || {
            let mut c = EonClient::connect(addr)?;
            c.sql("SELECT grp, COUNT(*) FROM sales GROUP BY grp ORDER BY grp")
        }));
    }
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        drop(guards);
    });

    let (mut ok, mut saturated, mut deadline) = (0, 0, 0);
    for c in clients {
        match c.join().unwrap() {
            Ok(SqlOutcome::Rows { columns, rows }) => {
                assert_eq!(columns, vec!["grp", "COUNT(*)"]);
                assert_eq!(
                    rows,
                    vec![
                        vec![Value::Str("a".into()), Value::Int(667)],
                        vec![Value::Str("b".into()), Value::Int(1333)],
                    ]
                );
                ok += 1;
            }
            // The typed backpressure contract, reconstructed from the
            // wire code — payload intact, no string matching.
            Err(EonError::Saturated { queued, depth }) => {
                assert_eq!(depth, 2);
                assert!(queued <= depth, "queued {queued} > depth {depth}");
                saturated += 1;
            }
            Err(EonError::DeadlineExceeded(_)) => deadline += 1,
            Err(e) => panic!("untyped session outcome: {e}"),
            Ok(other) => panic!("unexpected outcome {other:?}"),
        }
    }
    assert_eq!(ok + saturated + deadline, 16, "sessions went missing");
    assert!(ok > 0, "no session ever succeeded");
    assert!(
        saturated > 0,
        "16 sessions against a 2+2 pool never saturated (ok={ok} deadline={deadline})"
    );
    assert_quiesced(&db, &handle);
}

#[test]
fn disconnect_mid_query_cancels_and_frees_holds() {
    let (db, handle) = serve(0, 0, 0);
    let addr = handle.addr();

    // Park the next query at the slot semaphore (30s budget — if
    // disconnect did NOT cancel, quiesce would blow the 10s watchdog).
    let guards: Vec<_> = db
        .membership()
        .up_nodes()
        .iter()
        .map(|n| n.slots.acquire(n.slots.capacity()).unwrap())
        .collect();

    {
        let stream = TcpStream::connect(addr).unwrap();
        let mut w = stream.try_clone().unwrap();
        let mut r = stream;
        write_frame(
            &mut w,
            &Request::Hello {
                protocol_version: PROTOCOL_VERSION,
                subcluster: None,
                bypass_cache: false,
                crunch: false,
            }
            .encode(),
        )
        .unwrap();
        let ack = read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&ack).unwrap(),
            Response::HelloAck { .. }
        ));
        write_frame(
            &mut w,
            &Request::Sql {
                sql: "SELECT SUM(price) FROM sales".into(),
            }
            .encode(),
        )
        .unwrap();
        // Let the query reach the slot wait, then vanish.
        std::thread::sleep(Duration::from_millis(150));
        // Drop both halves: the server's reader sees EOF and fires the
        // session's CancelToken.
    }

    // The cancelled session must release everything it held *while the
    // slots are still spiked* — the freed state below cannot come from
    // the query completing.
    let t0 = Instant::now();
    while handle.active_sessions() > 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "disconnected session never unwound"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        counter(&db, "server_disconnect_cancels_total") >= 1,
        "disconnect did not fire the session CancelToken"
    );
    drop(guards);
    assert_quiesced(&db, &handle);

    // And the server still serves new sessions afterwards.
    let mut c = EonClient::connect(addr).unwrap();
    match c.sql("SELECT COUNT(*) FROM sales").unwrap() {
        SqlOutcome::Rows { rows, .. } => assert_eq!(rows, vec![vec![Value::Int(2000)]]),
        other => panic!("unexpected outcome {other:?}"),
    }
}

#[test]
fn malformed_frames_yield_typed_errors_never_hangs() {
    let (db, handle) = serve(0, 0, 0);
    let addr = handle.addr();
    let read_deadline = Some(Duration::from_secs(5));

    // (a) Junk payload in a well-formed frame: typed CORRUPT response.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(read_deadline).unwrap();
        write_frame(&mut s, &[0x7f, 0xde, 0xad]).unwrap();
        let resp = read_frame(&mut s.try_clone().unwrap(), MAX_FRAME_BYTES)
            .unwrap()
            .expect("server should respond before closing");
        match Response::decode(&resp).unwrap() {
            Response::Error(w) => {
                assert!(matches!(w.decode(), EonError::Corrupt(_)), "code {}", w.code)
            }
            other => panic!("expected typed error, got {other:?}"),
        }
    }

    // (b) Oversized length prefix: rejected before allocation, typed
    // CORRUPT response, connection closed.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(read_deadline).unwrap();
        s.write_all(&u32::MAX.to_be_bytes()).unwrap();
        s.write_all(b"junk that will never be a frame").unwrap();
        let resp = read_frame(&mut s.try_clone().unwrap(), MAX_FRAME_BYTES)
            .unwrap()
            .expect("server should respond before closing");
        match Response::decode(&resp).unwrap() {
            Response::Error(w) => {
                assert!(matches!(w.decode(), EonError::Corrupt(_)), "code {}", w.code)
            }
            other => panic!("expected typed error, got {other:?}"),
        }
        // After a framing error the server closes: next read is EOF,
        // not a hang.
        let mut rest = Vec::new();
        let n = s.read_to_end(&mut rest).unwrap_or(0);
        assert_eq!(n, 0, "server kept talking after a framing error");
    }

    // (c) Truncated length prefix then half-close: the server must
    // tear the session down without hanging (no response owed — the
    // frame never completed).
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(read_deadline).unwrap();
        s.write_all(&[0x00, 0x01]).unwrap();
        s.shutdown(Shutdown::Write).unwrap();
        let mut rest = Vec::new();
        let _ = s.read_to_end(&mut rest); // typed error frame or clean EOF
        if !rest.is_empty() {
            let mut r = &rest[..];
            if let Ok(Some(frame)) = read_frame(&mut r, MAX_FRAME_BYTES) {
                match Response::decode(&frame) {
                    Ok(Response::Error(_)) | Err(_) => {}
                    Ok(other) => panic!("expected error frame, got {other:?}"),
                }
            }
        }
    }

    // (d) Raw junk bytes (not even a plausible prefix).
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(read_deadline).unwrap();
        s.write_all(&[0xff; 64]).unwrap();
        let mut rest = Vec::new();
        let _ = s.read_to_end(&mut rest); // must terminate
    }

    // The server survived all of it: a well-formed session still works
    // and nothing leaked.
    let mut c = EonClient::connect(addr).unwrap();
    c.set_read_timeout(read_deadline).unwrap();
    match c.sql("SELECT COUNT(*) FROM sales").unwrap() {
        SqlOutcome::Rows { rows, .. } => assert_eq!(rows, vec![vec![Value::Int(2000)]]),
        other => panic!("unexpected outcome {other:?}"),
    }
    drop(c);
    assert_quiesced(&db, &handle);
}

#[test]
fn multibyte_literals_round_trip_lexer_to_wire_byte_exact() {
    let (db, handle) = serve(0, 0, 0);
    let addr = handle.addr();
    // Rows whose strings exercise 2-, 3-, and 4-byte UTF-8.
    let exotic = ["café", "名前", "🦀 crab", "it's"];
    db.copy_into(
        "sales",
        exotic
            .iter()
            .enumerate()
            .map(|(i, s)| {
                vec![
                    Value::Int(10_000 + i as i64),
                    Value::Str(s.to_string()),
                    Value::Int(1),
                ]
            })
            .collect(),
    )
    .unwrap();

    let mut c = EonClient::connect(addr).unwrap();
    for s in exotic {
        // The literal goes through the lexer (char-boundary-safe), the
        // executor (byte equality), and the wire (length-delimited
        // UTF-8) — and must come back identical.
        let escaped = s.replace('\'', "''");
        match c
            .sql(&format!("SELECT grp FROM sales WHERE grp = '{escaped}'"))
            .unwrap()
        {
            SqlOutcome::Rows { rows, .. } => {
                assert_eq!(rows, vec![vec![Value::Str(s.to_string())]], "literal {s:?}");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    // Non-ASCII outside a literal is the typed lexer error, over the
    // wire, with its stable code.
    let err = c.sql("SELECT café FROM sales").unwrap_err();
    assert!(
        matches!(err, EonError::Query(ref m) if m.contains("non-ASCII")),
        "{err}"
    );
    drop(c);
    assert_quiesced(&db, &handle);
}

#[test]
fn explain_and_analyze_ride_the_session() {
    let (db, handle) = serve(0, 0, 0);
    let addr = handle.addr();
    let mut c = EonClient::connect_opts(
        addr,
        &ClientOpts {
            bypass_cache: true,
            ..Default::default()
        },
    )
    .unwrap();
    match c.sql("EXPLAIN SELECT id FROM sales WHERE price > 10").unwrap() {
        SqlOutcome::Text(text) => assert!(text.contains("Scan sales"), "{text}"),
        other => panic!("unexpected outcome {other:?}"),
    }
    match c
        .sql("EXPLAIN ANALYZE SELECT grp, COUNT(*) AS n FROM sales GROUP BY grp ORDER BY grp")
        .unwrap()
    {
        SqlOutcome::RowsWithReport {
            columns,
            rows,
            report,
        } => {
            assert_eq!(columns, vec!["grp", "n"]);
            assert_eq!(rows.len(), 2);
            assert!(report.contains("Query Profile"), "{report}");
        }
        other => panic!("unexpected outcome {other:?}"),
    }
    match c.sql("\u{0}nonsense").unwrap_err() {
        EonError::Query(_) => {}
        e => panic!("expected Query error, got {e}"),
    }
    drop(c);
    assert_quiesced(&db, &handle);
}
