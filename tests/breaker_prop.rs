//! Property test for the S3 circuit breaker's state machine (DESIGN.md
//! "Failure detection & degraded modes"): the implementation is checked
//! op-for-op against an independent reference model over random
//! admit/outcome sequences and random (small) configurations.
//!
//! Invariants pinned after **every** op:
//!
//! * an open breaker **never admits a write** before its cooldown is
//!   consumed — the first `cooldown` admissions fast-fail with typed
//!   `StoreUnavailable`;
//! * an open breaker **always half-opens** once exactly `cooldown`
//!   admissions have fast-failed — the next admission goes through as
//!   the probe (no wall clock involved, so this is exact);
//! * terminal outcomes (NotFound, precondition violations) never trip
//!   or re-open the breaker — only exhausted-retry transient failures
//!   do;
//! * the implementation's state always equals the model's.

use eon_db as _;
use eon_storage::{BreakerConfig, BreakerState, CircuitBreaker};
use eon_types::EonError;
use proptest::collection::vec;
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Gate one operation (may fast-fail).
    Admit,
    /// An admitted operation reached the store and succeeded.
    Success,
    /// An admitted operation exhausted its retry budget (transient).
    TransientFail,
    /// The store answered with a terminal error (NotFound etc.).
    TerminalFail,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Admit),
        Just(Op::Admit),
        Just(Op::Success),
        Just(Op::TransientFail),
        Just(Op::TerminalFail),
    ]
}

/// Independent re-statement of the intended state machine.
#[derive(Debug)]
struct Model {
    cfg: BreakerConfig,
    state: BreakerState,
    failures: u32,
    fast_fails: u32,
    probes: u32,
}

impl Model {
    fn new(cfg: BreakerConfig) -> Self {
        Model {
            cfg,
            state: BreakerState::Closed,
            failures: 0,
            fast_fails: 0,
            probes: 0,
        }
    }

    /// Returns whether the admission goes through.
    fn admit(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if self.fast_fails >= self.cfg.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.probes = 0;
                    true
                } else {
                    self.fast_fails += 1;
                    false
                }
            }
        }
    }

    fn success(&mut self) {
        self.failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.probes += 1;
            if self.probes >= self.cfg.half_open_probes {
                self.state = BreakerState::Closed;
                self.fast_fails = 0;
                self.probes = 0;
            }
        }
    }

    fn transient_fail(&mut self) {
        match self.state {
            BreakerState::Closed => {
                self.failures += 1;
                if self.failures >= self.cfg.failure_threshold {
                    self.state = BreakerState::Open;
                    self.failures = 0;
                    self.fast_fails = 0;
                }
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.fast_fails = 0;
                self.probes = 0;
            }
            BreakerState::Open => {}
        }
    }
}

proptest! {
    #[test]
    fn breaker_matches_model_and_honors_cooldown(
        threshold in 1u32..4,
        cooldown in 1u32..5,
        probes in 1u32..3,
        ops in vec(op_strategy(), 1..120),
    ) {
        let cfg = BreakerConfig {
            failure_threshold: threshold,
            cooldown,
            half_open_probes: probes,
        };
        let breaker = CircuitBreaker::new(cfg.clone());
        let mut model = Model::new(cfg);

        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Admit => {
                    // The model decides first what MUST happen.
                    let was_open = model.state == BreakerState::Open;
                    let must_admit = model.admit();
                    let got = breaker.admit();
                    if must_admit {
                        prop_assert!(
                            got.is_ok(),
                            "op {i}: model admits (open={was_open}) but impl fast-failed"
                        );
                        if was_open {
                            // Cooldown consumed ⇒ ALWAYS half-opens.
                            prop_assert_eq!(breaker.state(), BreakerState::HalfOpen);
                        }
                    } else {
                        // Open before cooldown ⇒ NEVER serves a write.
                        prop_assert!(
                            matches!(got, Err(EonError::StoreUnavailable(_))),
                            "op {i}: open breaker admitted before cooldown"
                        );
                    }
                }
                Op::Success => {
                    model.success();
                    breaker.observe(&Ok(()));
                }
                Op::TransientFail => {
                    model.transient_fail();
                    breaker.observe(&Err(EonError::Storage("503".into())));
                }
                Op::TerminalFail => {
                    // Terminal = the store answered: same as a success
                    // for the trip accounting.
                    model.success();
                    breaker.observe(&Err(EonError::NotFound("k".into())));
                }
            }
            prop_assert_eq!(
                breaker.state(),
                model.state,
                "op {} ({:?}): state diverged from model",
                i,
                op
            );
        }
    }

    /// From ANY reachable open state, exactly `cooldown` fast-fails
    /// then one admission half-opens — the breaker can never wedge
    /// open forever.
    #[test]
    fn open_breaker_always_half_opens_after_cooldown(
        cooldown in 1u32..6,
        warmup in vec(op_strategy(), 0..60),
    ) {
        let breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown,
            half_open_probes: 1,
        });
        for op in warmup {
            match op {
                Op::Admit => { let _ = breaker.admit(); }
                Op::Success => breaker.observe(&Ok(())),
                Op::TransientFail => breaker.observe(&Err(EonError::Storage("x".into()))),
                Op::TerminalFail => breaker.observe(&Err(EonError::NotFound("k".into()))),
            }
        }
        // Force open (threshold 1; a failure from any state lands in
        // Open), then drain: within `cooldown + 1` admissions one MUST
        // go through.
        breaker.observe(&Err(EonError::Storage("x".into())));
        prop_assert_eq!(breaker.state(), BreakerState::Open);
        let mut admitted = false;
        for _ in 0..=cooldown {
            if breaker.admit().is_ok() {
                admitted = true;
                break;
            }
        }
        prop_assert!(admitted, "breaker wedged open past its cooldown");
        prop_assert_eq!(breaker.state(), BreakerState::HalfOpen);
    }
}
