//! Self-healing cluster integration tests (DESIGN.md "Failure
//! detection & degraded modes"): the failure detector declares dead
//! nodes deterministically, the supervisor takes over their shard
//! subscriptions via the ring rebalance and re-admits them through the
//! restart path — all with zero operator action — and the admission
//! front doors convert lost viability and storage brownouts into typed
//! fast failures instead of deep failover errors.

use std::sync::Arc;

use eon_columnar::Projection;
use eon_core::{check_crash_invariants, ClusterHealth, EonConfig, EonDb, TableModel};
use eon_exec::{Plan, ScanSpec};
use eon_storage::fault::{site, FaultPlan};
use eon_storage::{BreakerState, FileSystem, MemFs, S3Config, S3SimFs};
use eon_types::{schema, EonError, NodeId, Value};

fn int_rows(range: std::ops::Range<i64>) -> Vec<Vec<Value>> {
    range.map(|i| vec![Value::Int(i), Value::Int(i * 3)]).collect()
}

fn loaded_db(config: EonConfig) -> (Arc<EonDb>, TableModel) {
    let db = EonDb::create(Arc::new(MemFs::new()), config).unwrap();
    let s = schema![("id", Int), ("v", Int)];
    db.create_table(
        "t",
        s.clone(),
        vec![Projection::super_projection("p", &s, &[0], &[0])],
    )
    .unwrap();
    let rows = int_rows(0..900);
    db.copy_into("t", rows.clone()).unwrap();
    let mut model = TableModel::new("t");
    model.rows = rows;
    (db, model)
}

fn scan_sorted(db: &Arc<EonDb>) -> Vec<Vec<Value>> {
    let mut rows = db.query(&Plan::scan(ScanSpec::new("t"))).unwrap();
    rows.sort();
    rows
}

/// Sorted (node, shard) pairs of every ACTIVE subscription.
fn active_layout(db: &Arc<EonDb>) -> Vec<(eon_types::NodeId, eon_types::ShardId)> {
    let snap = db.snapshot().unwrap();
    let mut layout: Vec<_> = snap
        .subscriptions
        .values()
        .filter(|s| s.state == eon_catalog::SubState::Active)
        .map(|s| (s.node, s.shard))
        .collect();
    layout.sort();
    layout
}

/// A participant killed *mid-query* (the `query.worker.local` fault
/// site) is absorbed by failover, then detected, taken over, and
/// auto-restarted — the operator never acts.
#[test]
fn node_killed_mid_query_self_heals_without_operator() {
    let config = EonConfig::new(3, 3)
        .faults(FaultPlan::at_node(site::QUERY_WORKER_LOCAL, 0, 2))
        .health_ticks(1, 2, 1)
        .supervisor_restart_ticks(2);
    let (db, model) = loaded_db(config);
    let mut want = model.rows.clone();
    want.sort();

    // The armed site kills node 2 inside its local query phase;
    // failover must still return the exact answer.
    assert_eq!(scan_sorted(&db), want, "mid-query kill broke failover");
    assert!(!db.membership().get(NodeId(2)).unwrap().is_up());

    // Detector → takeover → auto-restart, driven only by ticks.
    let mut restarts = 0;
    let mut takeovers = 0;
    for _ in 0..8 {
        let r = db.supervise_tick();
        assert!(r.errors.is_empty(), "supervisor errors: {:?}", r.errors);
        restarts += r.restarted.len();
        takeovers += r.takeover_ops;
        assert_eq!(scan_sorted(&db), want, "service gap during self-heal");
    }
    assert!(restarts >= 1, "dead node was never auto-restarted");
    assert!(takeovers >= 1, "no subscription takeover happened");
    assert!(db.membership().get(NodeId(2)).unwrap().is_up());
    assert_eq!(db.cluster_health(), ClusterHealth::Healthy);
    let trace = db.health_trace();
    assert!(trace.contains("node2 DOWN"), "trace: {trace}");
    assert!(trace.contains("node2 RECOVERED"), "trace: {trace}");
    check_crash_invariants(&db, std::slice::from_ref(&model)).unwrap();
}

/// An operator restart racing the supervisor's in-flight rebalance
/// converges: the supervisor tolerates "already up", trims the
/// takeover surplus, and the cluster reaches a quiescent healthy
/// state upholding every invariant.
#[test]
fn operator_restart_racing_takeover_converges() {
    let config = EonConfig::new(3, 3)
        .health_ticks(1, 2, 1)
        .supervisor_restart_ticks(10); // supervisor would wait; operator races it
    let (db, model) = loaded_db(config);
    let initial_layout = active_layout(&db);
    db.kill_node(NodeId(1)).unwrap();

    // Tick until the takeover is mid-flight (DOWN declared, repair
    // passes committing), then restart the node out from under it.
    let mut saw_takeover = false;
    for _ in 0..3 {
        saw_takeover |= db.supervise_tick().takeover_ops > 0;
    }
    assert!(saw_takeover, "takeover never started");
    db.restart_node(NodeId(1)).unwrap();

    // The loop must converge to quiescence, not thrash.
    let mut quiet = 0;
    for _ in 0..12 {
        let r = db.supervise_tick();
        assert!(r.errors.is_empty(), "supervisor errors: {:?}", r.errors);
        if r.acted() { quiet = 0 } else { quiet += 1 }
    }
    assert!(quiet >= 2, "supervisor still acting after 12 ticks");
    assert_eq!(db.cluster_health(), ClusterHealth::Healthy);
    db.ensure_viable().unwrap();

    // Subscription layout converged back to the ring: identical to
    // the bootstrap layout (takeover surplus trimmed, rejoiner's
    // subscriptions re-activated).
    assert_eq!(
        active_layout(&db),
        initial_layout,
        "subscriptions did not converge back to the ring layout"
    );
    let mut want = model.rows.clone();
    want.sort();
    assert_eq!(scan_sorted(&db), want);
    check_crash_invariants(&db, std::slice::from_ref(&model)).unwrap();
}

/// Lost shard coverage rejects at the front door with typed
/// `ClusterDown` — queries, COPY, and DML alike — instead of
/// surfacing deep failover or storage errors.
#[test]
fn front_doors_reject_typed_cluster_down() {
    let (db, _) = loaded_db(EonConfig::new(3, 3));
    db.kill_node(NodeId(0)).unwrap();
    db.kill_node(NodeId(1)).unwrap(); // both subscribers of some shard
    assert!(matches!(db.cluster_health(), ClusterHealth::Down { .. }));
    assert!(matches!(
        db.query(&Plan::scan(ScanSpec::new("t"))),
        Err(EonError::ClusterDown(_))
    ));
    assert!(matches!(
        db.copy_into("t", int_rows(0..3)),
        Err(EonError::ClusterDown(_))
    ));
    assert!(matches!(
        db.delete_where(
            "t",
            &eon_columnar::Predicate::cmp(0, eon_columnar::pruning::CmpOp::Lt, 10i64)
        ),
        Err(EonError::ClusterDown(_))
    ));
}

/// Through an S3 brownout the cluster serves depot-only reads while
/// writes fast-fail with typed `StoreUnavailable`; when the brownout
/// clears, the breaker half-opens after its cooldown and recovers by
/// itself.
#[test]
fn brownout_serves_depot_reads_and_fast_fails_writes() {
    // Single node/shard: one warm scan provably populates the depot.
    let s3 = Arc::new(S3SimFs::new(S3Config::instant()));
    let config = EonConfig::new(1, 1).k_safety(0).breaker(1, 2, 1);
    let db = EonDb::create(s3.clone(), config).unwrap();
    let s = schema![("id", Int), ("v", Int)];
    db.create_table(
        "t",
        s.clone(),
        vec![Projection::super_projection("p", &s, &[0], &[0])],
    )
    .unwrap();
    let rows = int_rows(0..500);
    db.copy_into("t", rows.clone()).unwrap();
    let mut want = rows.clone();
    want.sort();
    assert_eq!(scan_sorted(&db), want); // warm the depot

    s3.set_brownout(true);
    // Reads: pure depot hits, no backing traffic, exact answers.
    let cost_before = s3.stats().cost_nanodollars;
    for _ in 0..3 {
        assert_eq!(scan_sorted(&db), want, "depot-only read failed");
    }
    assert_eq!(
        s3.stats().cost_nanodollars,
        cost_before,
        "brownout reads must not touch the store"
    );
    // The first write's initial upload burns one retry budget and
    // trips the breaker (threshold 1); everything after — including
    // the rest of that same statement — fast-fails, typed.
    let mut fast_fails = 0;
    for i in 0..4 {
        match db.copy_into("t", int_rows(500..510)) {
            Ok(_) => panic!("write {i} succeeded during brownout"),
            Err(EonError::StoreUnavailable(_)) => fast_fails += 1,
            // A full-budget transient failure: the trip itself, or a
            // post-cooldown probe finding the store still dark.
            Err(EonError::Storage(_)) => {}
            Err(e) => panic!("write {i}: unexpected error {e}"),
        }
    }
    assert!(fast_fails >= 1, "breaker never fast-failed a write");
    let breaker = db.breaker().unwrap();
    assert_eq!(breaker.state(), BreakerState::Open);
    assert!(matches!(db.cluster_health(), ClusterHealth::ReadOnly { .. }));

    // Brownout over: once the open breaker's cooldown is consumed the
    // next admission probes, succeeds, and closes it — no operator.
    s3.set_brownout(false);
    let extra = int_rows(500..600);
    let mut recovered = false;
    for _ in 0..6 {
        match db.copy_into("t", extra.clone()) {
            Ok(_) => {
                recovered = true;
                break;
            }
            Err(EonError::StoreUnavailable(_)) => continue, // cooldown
            Err(e) => panic!("post-brownout write: {e}"),
        }
    }
    assert!(recovered, "breaker never recovered after brownout cleared");
    assert_eq!(breaker.state(), BreakerState::Closed);
    assert_eq!(db.cluster_health(), ClusterHealth::Healthy);
    want.extend(extra);
    want.sort();
    assert_eq!(scan_sorted(&db), want, "post-brownout state inexact");
}

/// The same kill/restart schedule produces a byte-identical detection
/// trace and tick count, run to run.
#[test]
fn detection_trace_is_deterministic() {
    let run = || {
        let (db, _) = loaded_db(
            EonConfig::new(3, 3)
                .health_ticks(2, 4, 2)
                .supervisor_restart_ticks(3),
        );
        for t in 0..16u64 {
            if t == 1 {
                db.kill_node(NodeId(0)).unwrap();
            }
            if t == 8 {
                db.kill_node(NodeId(2)).unwrap();
            }
            db.supervise_tick();
        }
        (db.health_trace(), db.supervisor_ticks())
    };
    let a = run();
    assert!(!a.0.is_empty());
    assert_eq!(a, run(), "detection traces diverged across identical runs");
}
