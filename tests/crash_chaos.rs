//! Crash-point chaos (DESIGN.md "Fault model"): a seeded [`FaultPlan`]
//! crashes the cluster at named sites in the load, DML, mergeout,
//! sync, revive, and query paths; the `eon-bench` chaos harness
//! restarts/revives and verifies the crash-consistency invariants —
//! committed data answers exactly, uncommitted work is invisible, and
//! the leak scan reclaims every orphaned upload. The full sweep is
//! `cargo run --release --bin chaos_sweep -- --seeds 32`; these tests
//! pin the two properties the sweep relies on: every named site is
//! reachable, and a given seed replays identically.

use eon_bench::chaos::{crash_schedule, seeded_crash_schedule};
use eon_db as _;
use eon_storage::fault::{site, FaultPlan, SITES};

/// Crash at every named site in turn: the schedule must reach the
/// site, take the crash, recover, and still uphold every invariant.
#[test]
fn every_named_site_crashes_and_recovers() {
    for s in SITES {
        let report = crash_schedule(FaultPlan::at(s, 0), 0xc4a05, false)
            .unwrap_or_else(|e| panic!("site {s}: {e}"));
        assert!(
            report.fired.iter().any(|f| f == s),
            "site {s} never fired (fired: {:?})",
            report.fired
        );
        // The query site kills a participant instead of surfacing an
        // error (failover absorbs it); every other site must have been
        // observed by the driver as a crash.
        if *s != site::QUERY_WORKER_LOCAL {
            assert!(report.crashes >= 1, "site {s}: crash not observed");
        }
    }
}

/// Same fault-plan seed ⇒ same crash sites and same post-recovery
/// state, run to run.
#[test]
fn seeded_schedule_replays_identically() {
    for seed in [0u64, 3, 11] {
        let a = seeded_crash_schedule(seed, false).unwrap();
        let b = seeded_crash_schedule(seed, false).unwrap();
        assert_eq!(a.fired, b.fired, "seed {seed}: crash sites diverged");
        assert_eq!(a.digest, b.digest, "seed {seed}: final state diverged");
        assert_eq!(a.rows, b.rows);
    }
}

/// Determinism holds with ambiguous S3 outcomes layered on top: the
/// simulator's dice are seeded, so applied-but-reported-failed PUTs
/// land on the same requests in both runs.
#[test]
fn ambiguous_mode_replays_identically() {
    let a = seeded_crash_schedule(7, true).unwrap();
    let b = seeded_crash_schedule(7, true).unwrap();
    assert_eq!(a.fired, b.fired);
    assert_eq!(a.digest, b.digest);
}

/// A slice of the seed sweep in-tree so `cargo test` exercises the
/// invariants without the release-mode binary.
#[test]
fn seed_sweep_slice_upholds_invariants() {
    for seed in 0..6u64 {
        for ambiguous in [false, true] {
            seeded_crash_schedule(seed, ambiguous)
                .unwrap_or_else(|e| panic!("seed {seed} ambiguous={ambiguous}: {e}"));
        }
    }
}
