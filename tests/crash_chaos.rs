//! Crash-point chaos (DESIGN.md "Fault model"): a seeded [`FaultPlan`]
//! crashes the cluster at named sites in the load, DML, mergeout,
//! sync, revive, and query paths; the `eon-bench` chaos harness
//! restarts/revives and verifies the crash-consistency invariants —
//! committed data answers exactly, uncommitted work is invisible, and
//! the leak scan reclaims every orphaned upload. The full sweep is
//! `cargo run --release --bin chaos_sweep -- --seeds 32`; these tests
//! pin the two properties the sweep relies on: every named site is
//! reachable, and a given seed replays identically.

use eon_bench::chaos::{
    crash_schedule, crash_schedule_encoded, crash_schedule_group_commit, crash_schedule_pushdown,
    flap_brownout_schedule, seeded_crash_schedule,
};
use eon_columnar::Encoding;
use eon_db as _;
use eon_storage::fault::{site, FaultPlan, SITES};

/// Crash at every named site in turn: the schedule must reach the
/// site, take the crash, recover, and still uphold every invariant.
#[test]
fn every_named_site_crashes_and_recovers() {
    for s in SITES {
        let report = crash_schedule(FaultPlan::at(s, 0), 0xc4a05, false)
            .unwrap_or_else(|e| panic!("site {s}: {e}"));
        assert!(
            report.fired.iter().any(|f| f == s),
            "site {s} never fired (fired: {:?})",
            report.fired
        );
        // The query sites don't surface a crash to the driver: the
        // worker-local site kills a participant (failover absorbs it),
        // and the worker-panic site is contained into a typed error at
        // the join (failover retries it). Every other site must have
        // been observed by the driver as a crash.
        if *s != site::QUERY_WORKER_LOCAL && *s != site::QUERY_WORKER_PANIC {
            assert!(report.crashes >= 1, "site {s}: crash not observed");
        }
    }
}

/// Same fault-plan seed ⇒ same crash sites and same post-recovery
/// state, run to run.
#[test]
fn seeded_schedule_replays_identically() {
    for seed in [0u64, 3, 11] {
        let a = seeded_crash_schedule(seed, false).unwrap();
        let b = seeded_crash_schedule(seed, false).unwrap();
        assert_eq!(a.fired, b.fired, "seed {seed}: crash sites diverged");
        assert_eq!(a.digest, b.digest, "seed {seed}: final state diverged");
        assert_eq!(a.rows, b.rows);
    }
}

/// Determinism holds with ambiguous S3 outcomes layered on top: the
/// simulator's dice are seeded, so applied-but-reported-failed PUTs
/// land on the same requests in both runs.
#[test]
fn ambiguous_mode_replays_identically() {
    let a = seeded_crash_schedule(7, true).unwrap();
    let b = seeded_crash_schedule(7, true).unwrap();
    assert_eq!(a.fired, b.fired);
    assert_eq!(a.digest, b.digest);
}

/// Two same-seed runs must emit **byte-identical** deterministic
/// metrics snapshots (DESIGN.md "Observability"): every seeded counter
/// — depot hits/misses, S3 requests by verb, injected faults, retries,
/// mergeout totals — lands on exactly the same value regardless of
/// thread interleaving, because the S3 fault dice are keyed hashes of
/// (seed, verb, path, attempt) rather than draws from a shared RNG.
#[test]
fn same_seed_runs_emit_identical_metrics_snapshots() {
    for (seed, ambiguous) in [(0u64, false), (7, true)] {
        let a = seeded_crash_schedule(seed, ambiguous).unwrap();
        let b = seeded_crash_schedule(seed, ambiguous).unwrap();
        assert!(
            !a.metrics.is_empty() && a.metrics.contains("s3_requests_total"),
            "snapshot should carry S3 request counters: {}",
            a.metrics
        );
        assert!(
            a.metrics.contains("depot_hits_total"),
            "snapshot should carry depot counters"
        );
        assert_eq!(
            a.metrics, b.metrics,
            "seed {seed} ambiguous={ambiguous}: metrics snapshots diverged"
        );
    }
}

/// Compression-aware execution under crashes: the same seeded schedule
/// over containers force-encoded as RLE and as Dict must (a) uphold
/// every crash-consistency invariant while scans run on encoded views,
/// (b) replay deterministically — same seed, same force ⇒ byte-identical
/// digest and metrics snapshot — and (c) land on the same logical table
/// (row count) as the heuristic-encoded run, since encoding is purely
/// physical.
#[test]
fn force_encoded_schedules_replay_identically() {
    for seed in [0u64, 7] {
        let baseline = seeded_crash_schedule(seed, false).unwrap();
        for force in [Encoding::Rle, Encoding::Dict] {
            let plan = || FaultPlan::seeded(seed, SITES, 3);
            let a = crash_schedule_encoded(plan(), seed, false, Some(force))
                .unwrap_or_else(|e| panic!("seed {seed} force {force:?}: {e}"));
            let b = crash_schedule_encoded(plan(), seed, false, Some(force)).unwrap();
            assert_eq!(a.fired, b.fired, "seed {seed} force {force:?}: sites diverged");
            assert_eq!(a.digest, b.digest, "seed {seed} force {force:?}: digest diverged");
            assert_eq!(
                a.metrics, b.metrics,
                "seed {seed} force {force:?}: metrics snapshots diverged"
            );
            assert_eq!(
                a.rows, baseline.rows,
                "seed {seed} force {force:?}: encoding changed the logical table"
            );
        }
    }
}

/// Pushdown under crashes: the seeded schedule with S3-Select pushdown
/// forced eager (selective scans and partial aggregates answered below
/// the GET, against delete-vectored containers, across injected
/// crashes) must (a) uphold every crash-consistency invariant, (b)
/// replay deterministically — selects roll the same keyed-hash fault
/// dice as every other verb, so same seed ⇒ byte-identical digest and
/// metrics — and (c) land on the same logical table as the plain run,
/// since pushdown is purely a cost change.
#[test]
fn pushdown_schedules_replay_identically() {
    for seed in [0u64, 7] {
        let baseline = seeded_crash_schedule(seed, false).unwrap();
        let plan = || FaultPlan::seeded(seed, SITES, 3);
        let a = crash_schedule_pushdown(plan(), seed, false)
            .unwrap_or_else(|e| panic!("seed {seed} pushdown: {e}"));
        let b = crash_schedule_pushdown(plan(), seed, false).unwrap();
        assert_eq!(a.fired, b.fired, "seed {seed} pushdown: sites diverged");
        assert_eq!(a.digest, b.digest, "seed {seed} pushdown: digest diverged");
        assert_eq!(
            a.metrics, b.metrics,
            "seed {seed} pushdown: metrics snapshots diverged"
        );
        assert_eq!(
            a.rows, baseline.rows,
            "seed {seed} pushdown: pushdown changed the logical table"
        );
        assert!(
            a.metrics.contains("scan_pushdown_selects_total"),
            "seed {seed}: schedule never pushed down: {}",
            a.metrics
        );
    }
}

/// Group-commit crash points (DESIGN.md "Group commit"): a full batch
/// of parked writers crashes at the leader-append, mid-distribution,
/// or post-append point, the whole cluster cold-restarts from its
/// durable logs, and batch durability must be prefix-or-nothing —
/// the leader-append crash aborts the batch (and the leak scan
/// reclaims every member's orphaned upload); the later crash points
/// commit it everywhere, with laggard peers converging from the
/// most-advanced durable log. The schedule itself verifies the
/// per-node log contents; this test pins the site → durability map.
#[test]
fn group_commit_crash_points_are_prefix_or_nothing() {
    let mut aborted = 0;
    let mut committed = 0;
    // Seeds 0..3 cycle through the three group-commit crash sites.
    for seed in 0..3u64 {
        let r = crash_schedule_group_commit(seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            r.batch_durable,
            r.site != site::COMMIT_LEADER_APPEND,
            "seed {seed} site {}: wrong durability outcome",
            r.site
        );
        if r.batch_durable {
            committed += 1;
        } else {
            aborted += 1;
            assert!(
                r.reclaimed >= 4,
                "seed {seed}: aborted batch reclaimed only {} orphans",
                r.reclaimed
            );
        }
    }
    assert_eq!((aborted, committed), (1, 2));
}

/// Same seed ⇒ byte-identical digest and metrics snapshot for the
/// group-commit crash schedule: sequenced arrivals pin the batch
/// composition, so the whole run — upload order, crash point, cold
/// restart, leak scan — replays exactly.
#[test]
fn group_commit_schedule_replays_identically() {
    for seed in 0..3u64 {
        let a = crash_schedule_group_commit(seed).unwrap();
        let b = crash_schedule_group_commit(seed).unwrap();
        assert_eq!(a.site, b.site, "seed {seed}: armed sites diverged");
        assert_eq!(a.digest, b.digest, "seed {seed}: final state diverged");
        assert_eq!(a.rows, b.rows);
        assert_eq!(
            a.metrics, b.metrics,
            "seed {seed}: metrics snapshots diverged"
        );
        assert!(
            a.metrics.contains("commit_batch_size"),
            "snapshot should carry commit metrics: {}",
            a.metrics
        );
    }
}

/// A slice of the seed sweep in-tree so `cargo test` exercises the
/// invariants without the release-mode binary.
#[test]
fn seed_sweep_slice_upholds_invariants() {
    for seed in 0..6u64 {
        for ambiguous in [false, true] {
            seeded_crash_schedule(seed, ambiguous)
                .unwrap_or_else(|e| panic!("seed {seed} ambiguous={ambiguous}: {e}"));
        }
    }
}

/// Self-healing chaos (DESIGN.md "Failure detection & degraded
/// modes"): a node flap plus an S3 brownout window completes with zero
/// operator intervention — the detector declares DOWN once despite the
/// flap, the supervisor takes over subscriptions and auto-restarts the
/// node, depot-only reads serve through the brownout, writes fast-fail
/// with `StoreUnavailable`, and the breaker self-recovers.
#[test]
fn flap_and_brownout_self_heal_without_operator() {
    for seed in [1u64, 5, 9] {
        let r = flap_brownout_schedule(seed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(r.restarts >= 1, "seed {seed}: no auto-restart");
        assert!(r.takeover_ops >= 1, "seed {seed}: no subscription takeover");
        assert_eq!(r.brownout_reads, 3, "seed {seed}: brownout reads failed");
        assert!(r.write_fast_fails >= 1, "seed {seed}: no fast-fail");
        // Exactly one DOWN and one RECOVERED despite the flap
        // (hysteresis): the detector must not thrash the rebalancer.
        let downs = r.trace.matches(" DOWN").count();
        let recoveries = r.trace.matches(" RECOVERED").count();
        assert_eq!((downs, recoveries), (1, 1), "seed {seed}: trace {}", r.trace);
    }
}

/// Same seed ⇒ byte-identical detection trace, digest, and metrics
/// snapshot for the flap-and-brownout schedule.
#[test]
fn flap_and_brownout_replays_identically() {
    let a = flap_brownout_schedule(5).unwrap();
    let b = flap_brownout_schedule(5).unwrap();
    assert_eq!(a.trace, b.trace, "detection traces diverged");
    assert_eq!(a.digest, b.digest, "final state diverged");
    assert_eq!(a.metrics, b.metrics, "metrics snapshots diverged");
    assert!(
        a.metrics.contains("breaker_opened_total"),
        "snapshot should carry breaker counters: {}",
        a.metrics
    );
}
