//! Property tests pinning S3-Select-style pushdown (DESIGN.md
//! "Pushdown execution") as *invisible*: executing predicates,
//! projections, and partial aggregates below the GET must be a pure
//! cost change.
//!
//! Three families of properties:
//!
//! * **A/B equivalence** — the same randomized workload (predicates ×
//!   projections × aggregates, with delete vectors layered in) returns
//!   byte-identical answers (down to `Debug` strings, so `Int(1)` can
//!   never silently become `Float(1.0)`) with pushdown on and off,
//!   across bypass mode, depot-cold normal mode, and repeat queries —
//!   while the on side is required to have actually issued selects.
//!
//! * **Fault participation** — selects ride the same retry/breaker
//!   path as every other S3 verb: under a seeded transient-failure
//!   rate the pushdown database must still answer every plan exactly
//!   like a clean pushdown-off database, with retries observed.
//!
//! * **Depot policy** — answering below the GET must never fault whole
//!   files into the depot ("selects leave the depot cold").

use std::sync::Arc;

use eon_columnar::pruning::CmpOp;
use eon_columnar::{Predicate, Projection};
use eon_core::{EonConfig, EonDb, SessionOpts};
use eon_db as _;
use eon_exec::{AggSpec, Expr, Plan, ScanSpec, SortKey};
use eon_obs::Registry;
use eon_storage::{S3Config, S3SimFs};
use eon_types::{schema, Value};
use proptest::prelude::*;
use rand::{Rng, SeedableRng, StdRng};

const TAGS: [&str; 5] = ["ad", "api", "batch", "etl", "ui"];

/// Rows with an unsorted uniform value column (footer pruning cannot
/// help, pushdown can), a low-cardinality group key, strings, and
/// sprinkled NULLs.
fn gen_rows(seed: u64, n: usize) -> Vec<Vec<Value>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let val = if rng.gen_range(0..6u32) == 0 {
                Value::Null
            } else {
                Value::Int(rng.gen_range(-50..500i64))
            };
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..5i64)),
                Value::Str(TAGS[rng.gen_range(0..TAGS.len())].to_string()),
                val,
            ]
        })
        .collect()
}

/// A cluster over simulated S3. `pushdown` toggles the tentpole;
/// `fail_rate` arms seeded transient faults on every verb, selects
/// included. The crossover knobs are opened wide (`min_bytes 0`,
/// `max_selectivity 1.0`) so eligibility — not the cost model — decides
/// whether a select fires; the cost model has its own sweep in
/// `ablate_pushdown`.
fn make_db(pushdown: bool, fail_rate: f64, rows: &[Vec<Value>]) -> (Arc<EonDb>, Registry) {
    let registry = Registry::new();
    let s3 = Arc::new(S3SimFs::with_metrics(
        S3Config {
            fail_rate,
            seed: 0xeed5,
            ..S3Config::instant()
        },
        &registry,
    ));
    let cfg = EonConfig::new(2, 2)
        .scan_workers(2)
        .observability(registry.clone())
        .pushdown(pushdown)
        .pushdown_min_bytes(0)
        .pushdown_max_selectivity(1.0);
    let db = EonDb::create(s3, cfg).unwrap();
    let s = schema![("id", Int), ("grp", Int), ("tag", Str), ("val", Int)];
    db.create_table(
        "t",
        s.clone(),
        vec![Projection::super_projection("p", &s, &[0], &[0])],
    )
    .unwrap();
    let half = rows.len().div_ceil(2).max(1);
    for chunk in rows.chunks(half) {
        db.copy_into("t", chunk.to_vec()).unwrap();
    }
    (db, registry)
}

/// Random predicates weighted toward every wire shape: comparisons on
/// sorted and unsorted columns, string equality, NULL tests, And/Or.
fn gen_predicate(rng: &mut StdRng, n: usize) -> Predicate {
    let ops = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
    match rng.gen_range(0..7u32) {
        0 => Predicate::cmp(0, ops[rng.gen_range(0..ops.len())], rng.gen_range(0..n as i64)),
        1 => Predicate::cmp(3, ops[rng.gen_range(0..ops.len())], rng.gen_range(-50..500i64)),
        2 => Predicate::cmp(2, CmpOp::Eq, TAGS[rng.gen_range(0..TAGS.len())]),
        3 => Predicate::IsNull(3),
        4 => Predicate::IsNotNull(3),
        5 => Predicate::and(vec![
            Predicate::cmp(1, CmpOp::Le, rng.gen_range(0..5i64)),
            Predicate::cmp(3, CmpOp::Ge, rng.gen_range(-50..500i64)),
        ]),
        _ => Predicate::Or(vec![
            Predicate::cmp(1, CmpOp::Le, rng.gen_range(0..5i64)),
            Predicate::cmp(2, CmpOp::Eq, TAGS[rng.gen_range(0..TAGS.len())]),
        ]),
    }
}

/// Random plans: projection scans, predicate scans, a fully pushable
/// grouped aggregate (Sum/Count/Min/Max over ints), and a mixed
/// aggregate with Avg that must fall back to rows-mode underneath.
fn gen_plans(rng: &mut StdRng, n: usize) -> Vec<Plan> {
    let mut plans = Vec::new();
    let mut cols: Vec<usize> = (0..4).filter(|_| rng.gen_range(0..2u32) == 0).collect();
    if cols.is_empty() {
        cols.push(rng.gen_range(0..4usize));
    }
    let keys: Vec<SortKey> = (0..cols.len()).map(SortKey::asc).collect();
    plans.push(
        Plan::scan(
            ScanSpec::new("t")
                .columns(cols)
                .predicate(gen_predicate(rng, n)),
        )
        .sort(keys),
    );
    plans.push(
        Plan::scan(ScanSpec::new("t").predicate(gen_predicate(rng, n))).sort(vec![
            SortKey::asc(0),
            SortKey::asc(1),
            SortKey::asc(2),
            SortKey::asc(3),
        ]),
    );
    // Pushable partial aggregates: the store folds and ships states.
    plans.push(
        Plan::scan(ScanSpec::new("t").predicate(gen_predicate(rng, n)))
            .aggregate(
                vec![1],
                vec![
                    AggSpec::sum(Expr::col(3)),
                    AggSpec::count_star(),
                    AggSpec::min(Expr::col(3)),
                    AggSpec::max(Expr::col(0)),
                ],
            )
            .sort(vec![SortKey::asc(0)]),
    );
    // Avg is not mergeable below the GET: the whole spec must decline
    // to partial-agg pushdown and take rows-mode instead.
    plans.push(
        Plan::scan(ScanSpec::new("t").predicate(gen_predicate(rng, n)))
            .aggregate(
                vec![2],
                vec![AggSpec::avg(Expr::col(3)), AggSpec::count_star()],
            )
            .sort(vec![SortKey::asc(0)]),
    );
    plans
}

fn metric_sum(registry: &Registry, name: &str) -> u64 {
    let snap = registry.snapshot();
    let prefix = format!("{name}{{");
    snap.as_object()
        .map(|obj| {
            obj.iter()
                .filter(|(k, _)| k.as_str() == name || k.starts_with(&prefix))
                .filter_map(|(_, v)| v.as_u64())
                .sum()
        })
        .unwrap_or(0)
}

fn clear_depots(db: &EonDb) {
    for node in db.membership().all() {
        node.cache.clear().unwrap();
    }
}

proptest! {
    /// The tentpole equivalence: pushdown on and off answer a random
    /// workload byte-identically in bypass mode, depot-cold normal
    /// mode, and on repeat — with delete vectors layered in halfway —
    /// and the on side must actually have executed below the GET.
    #[test]
    fn pushdown_on_and_off_agree(seed in 0u64..1_000_000, n in 60usize..200) {
        let rows = gen_rows(seed, n);
        let plans = gen_plans(&mut StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15), n);
        let (on, on_reg) = make_db(true, 0.0, &rows);
        let (off, _) = make_db(false, 0.0, &rows);
        let bypass = SessionOpts { bypass_cache: true, ..Default::default() };
        for round in 0..2 {
            for plan in &plans {
                let a = on.query_with(plan, &bypass).unwrap();
                let b = off.query_with(plan, &bypass).unwrap();
                prop_assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "bypass diverged: seed {} round {}", seed, round
                );
                clear_depots(&on);
                clear_depots(&off);
                let a = on.query(plan).unwrap();
                let b = off.query(plan).unwrap();
                prop_assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "depot-cold diverged: seed {} round {}", seed, round
                );
                // Repeat without clearing: warm/partially-warm depots.
                let a = on.query(plan).unwrap();
                let b = off.query(plan).unwrap();
                prop_assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "repeat diverged: seed {} round {}", seed, round
                );
            }
            if round == 0 {
                // Delete a slice on both sides: rows-mode pushdown must
                // apply delete vectors node-side, and per-container agg
                // pushdown must decline on DV'd containers — invisibly.
                let cut = Predicate::cmp(0, CmpOp::Lt, (n / 5) as i64);
                let da = on.delete_where("t", &cut).unwrap();
                let db_ = off.delete_where("t", &cut).unwrap();
                prop_assert_eq!(da, db_, "delete counts diverged: seed {}", seed);
            }
        }
        prop_assert!(
            metric_sum(&on_reg, "scan_pushdown_selects_total") > 0,
            "pushdown never engaged: seed {}", seed
        );
    }

    /// Selects ride the retry path: with seeded transient faults armed
    /// on every S3 verb, the pushdown database must answer every plan
    /// exactly like a clean pushdown-off database.
    #[test]
    fn faulted_selects_retry_and_agree(seed in 0u64..1_000_000) {
        let n = 120usize;
        let rows = gen_rows(seed, n);
        let plans = gen_plans(&mut StdRng::seed_from_u64(seed ^ 0xbf58476d1ce4e5b9), n);
        let (on, on_reg) = make_db(true, 0.25, &rows);
        let (off, _) = make_db(false, 0.0, &rows);
        let bypass = SessionOpts { bypass_cache: true, ..Default::default() };
        for plan in &plans {
            let a = on.query_with(plan, &bypass).unwrap();
            let b = off.query_with(plan, &bypass).unwrap();
            prop_assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "faulted bypass diverged: seed {}", seed
            );
        }
        prop_assert!(
            metric_sum(&on_reg, "scan_pushdown_selects_total") > 0,
            "pushdown never engaged under faults: seed {}", seed
        );
        prop_assert!(
            metric_sum(&on_reg, "s3_retries_total") > 0,
            "fault plan never fired: seed {}", seed
        );
    }

    /// Selects never fill the depot: a depot-cold selective query on
    /// the pushdown database answers below the GET without a single
    /// depot write, so cache capacity stays reserved for reads that
    /// benefit from it.
    #[test]
    fn selects_leave_the_depot_cold(seed in 0u64..1_000_000) {
        let n = 150usize;
        let rows = gen_rows(seed, n);
        let (on, on_reg) = make_db(true, 0.0, &rows);
        let plan = Plan::scan(
            ScanSpec::new("t").predicate(Predicate::cmp(3, CmpOp::Eq, 7i64)),
        )
        .sort(vec![SortKey::asc(0)]);
        clear_depots(&on);
        let w0 = metric_sum(&on_reg, "depot_writes_total");
        let s0 = metric_sum(&on_reg, "scan_pushdown_selects_total");
        on.query(&plan).unwrap();
        prop_assert!(
            metric_sum(&on_reg, "scan_pushdown_selects_total") > s0,
            "selective cold query did not push down: seed {}", seed
        );
        prop_assert_eq!(
            metric_sum(&on_reg, "depot_writes_total"),
            w0,
            "pushdown faulted files into the depot: seed {}", seed
        );
    }
}
