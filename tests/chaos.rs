//! Chaos testing against the flaky S3 simulator: "any filesystem access
//! can (and will) fail" (§5.3). With transient failures and throttles
//! injected on every request, the retry loops in the cache and the
//! catalog sync must keep loads, queries, DML, mergeout, and revive
//! fully functional — and never corrupt an answer.

use std::sync::Arc;

use eon_core::{EonConfig, EonDb, SessionOpts};
use eon_db as _;
use eon_exec::{AggSpec, Expr, Plan, ScanSpec};
use eon_storage::{S3Config, S3SimFs};
use eon_types::{schema, NodeId, Value};

fn flaky_s3(fail: f64, throttle: f64, seed: u64) -> Arc<S3SimFs> {
    Arc::new(S3SimFs::new(S3Config::flaky(fail, throttle, seed)))
}

fn count_plan() -> Plan {
    Plan::scan(ScanSpec::new("t")).aggregate(vec![], vec![AggSpec::count_star()])
}

fn sum_plan() -> Plan {
    Plan::scan(ScanSpec::new("t")).aggregate(vec![], vec![AggSpec::sum(Expr::col(1))])
}

fn setup(db: &EonDb, rows: i64) {
    let s = schema![("id", Int), ("v", Int)];
    db.create_table(
        "t",
        s.clone(),
        vec![eon_columnar::Projection::super_projection("p", &s, &[0], &[0])],
    )
    .unwrap();
    db.copy_into(
        "t",
        (0..rows).map(|i| vec![Value::Int(i), Value::Int(i % 101)]).collect(),
    )
    .unwrap();
}

#[test]
fn lifecycle_survives_flaky_s3() {
    // 8% transient failures + 4% throttles on every S3 request.
    let db = EonDb::create(flaky_s3(0.08, 0.04, 0xc4a05), EonConfig::new(3, 3)).unwrap();
    setup(&db, 3_000);
    let expect_sum: i64 = (0..3_000).map(|i| i % 101).sum();

    assert_eq!(db.query(&count_plan()).unwrap()[0][0], Value::Int(3_000));
    assert_eq!(db.query(&sum_plan()).unwrap()[0][0], Value::Int(expect_sum));

    // Cache-bypass reads hammer S3 directly — the retry loop is all
    // that stands between them and the injected failures.
    let bypass = SessionOpts {
        bypass_cache: true,
        ..Default::default()
    };
    assert_eq!(
        db.query_with(&count_plan(), &bypass).unwrap()[0][0],
        Value::Int(3_000)
    );

    // DML + compaction under the same fault rate.
    let deleted = db
        .delete_where(
            "t",
            &eon_columnar::Predicate::cmp(0, eon_columnar::pruning::CmpOp::Lt, 500i64),
        )
        .unwrap();
    assert_eq!(deleted, 500);
    db.run_mergeout().unwrap();
    assert_eq!(db.query(&count_plan()).unwrap()[0][0], Value::Int(2_500));

    // Node failure on top of storage failures.
    db.kill_node(NodeId(2)).unwrap();
    assert_eq!(db.query(&count_plan()).unwrap()[0][0], Value::Int(2_500));
    db.restart_node(NodeId(2)).unwrap();
    assert_eq!(db.query(&count_plan()).unwrap()[0][0], Value::Int(2_500));
}

#[test]
fn sync_and_revive_survive_flaky_s3() {
    let s3 = flaky_s3(0.08, 0.04, 0x5eed);
    let db = EonDb::create(s3.clone(), EonConfig::new(3, 3)).unwrap();
    setup(&db, 1_000);
    // Metadata sync retries uploads until the consensus advances.
    let info = db.sync_metadata(1_000).unwrap();
    assert_eq!(info.truncation_version, db.version());
    drop(db);

    // Revive reads everything back through the same flaky storage.
    // Revive itself does not retry (it is a manual, restartable
    // operation) — drive it like an operator would.
    let mut attempt = 0;
    let revived = loop {
        attempt += 1;
        match EonDb::revive(s3.clone(), EonConfig::new(3, 3), 100_000 + attempt) {
            Ok(db) => break db,
            Err(e) if attempt < 200 => {
                assert!(
                    !matches!(e, eon_types::EonError::Revive(_)) || attempt < 200,
                    "revive logic error: {e}"
                );
            }
            Err(e) => panic!("revive never succeeded: {e}"),
        }
    };
    assert_eq!(revived.query(&count_plan()).unwrap()[0][0], Value::Int(1_000));
}

#[test]
fn hard_throttling_still_completes() {
    // 30% throttle rate: progress is slow but everything completes.
    let db = EonDb::create(flaky_s3(0.0, 0.30, 0x7777), EonConfig::new(3, 2)).unwrap();
    setup(&db, 500);
    assert_eq!(db.query(&count_plan()).unwrap()[0][0], Value::Int(500));
}
