//! Property tests pinning compression-aware execution (DESIGN.md
//! "Compression-aware execution") as *invisible*: running predicates
//! and aggregates directly on RLE/dict block views must be a pure
//! performance change.
//!
//! Two families of properties:
//!
//! * **A/B equivalence** — the same randomized workload (predicates ×
//!   projections × group-bys) over containers force-encoded as each of
//!   Plain/RLE/Dict/Delta returns byte-identical rows (down to `Debug`
//!   strings, so `Int(1)` can never silently become `Float(1.0)`) on an
//!   encoded-exec database and a decode-first database, with the
//!   pruning metrics in agreement and the decode-first side never
//!   touching an encoded view.
//!
//! * **Decoder hardening** — truncating or bit-flipping encoded column
//!   bytes must yield a typed [`EonError`], never a panic; at the
//!   container layer a corrupted block may only surface as an error or
//!   as a block of exactly the footer's row count — never silently
//!   short rows.

use std::sync::Arc;

use bytes::Bytes;
use eon_columnar::format::{Reader, Writer};
use eon_columnar::pruning::CmpOp;
use eon_columnar::{
    decode_column, encode_with, encoding_fits, Encoding, Predicate, Projection, RosReader,
    RosWriter,
};
use eon_core::{EonConfig, EonDb};
use eon_db as _;
use eon_exec::{AggSpec, Expr, Plan, ScanSpec, SortKey};
use eon_storage::{FileSystem, MemFs};
use eon_types::{schema, EonError, Value};
use proptest::prelude::*;
use rand::{Rng, SeedableRng, StdRng};

/// Every force-encoding configuration the write path accepts: the
/// heuristic, plus each encoding forced (with silent per-block fallback
/// where it cannot represent the data, e.g. Delta over strings).
const FORCES: [Option<Encoding>; 5] = [
    None,
    Some(Encoding::Plain),
    Some(Encoding::Rle),
    Some(Encoding::Dict),
    Some(Encoding::Delta),
];

/// Rows designed so every encoding has something to bite on: a
/// monotone id (delta-friendly), a small group key (RLE-friendly), a
/// low-cardinality string tag (dict-friendly), and a value column with
/// sprinkled NULLs.
fn gen_rows(seed: u64, n: usize) -> Vec<Vec<Value>> {
    let mut rng = StdRng::seed_from_u64(seed);
    const TAGS: [&str; 5] = ["ad", "api", "batch", "etl", "ui"];
    (0..n)
        .map(|i| {
            let val = if rng.gen_range(0..6u32) == 0 {
                Value::Null
            } else {
                Value::Int(rng.gen_range(-50..500i64))
            };
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..5i64)),
                Value::Str(TAGS[rng.gen_range(0..TAGS.len())].to_string()),
                val,
            ]
        })
        .collect()
}

fn make_db(force: Option<Encoding>, decode_first: bool, rows: &[Vec<Value>]) -> Arc<EonDb> {
    let cfg = EonConfig::new(1, 1)
        .scan_workers(2)
        .scan_late_materialization(true)
        .force_encoding(force)
        .scan_decode_first(decode_first);
    let db = EonDb::create(Arc::new(MemFs::new()), cfg).unwrap();
    let s = schema![("id", Int), ("grp", Int), ("tag", Str), ("val", Int)];
    db.create_table(
        "t",
        s.clone(),
        vec![Projection::super_projection("p", &s, &[0], &[0])],
    )
    .unwrap();
    // Two batches so each shard holds more than one container.
    let half = rows.len().div_ceil(2).max(1);
    for chunk in rows.chunks(half) {
        db.copy_into("t", chunk.to_vec()).unwrap();
    }
    db
}

/// A random predicate over the four columns, weighted toward shapes the
/// encoded paths specialize: comparisons on the RLE-friendly group key,
/// equality on the dict-friendly tag, and NULL tests on the value.
fn gen_predicate(rng: &mut StdRng, n: usize) -> Predicate {
    const TAGS: [&str; 5] = ["ad", "api", "batch", "etl", "ui"];
    let ops = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
    match rng.gen_range(0..6u32) {
        0 => Predicate::cmp(0, ops[rng.gen_range(0..ops.len())], rng.gen_range(0..n as i64)),
        1 => Predicate::cmp(1, ops[rng.gen_range(0..ops.len())], rng.gen_range(0..5i64)),
        2 => Predicate::cmp(2, CmpOp::Eq, TAGS[rng.gen_range(0..TAGS.len())]),
        3 => Predicate::IsNull(3),
        4 => Predicate::IsNotNull(3),
        _ => Predicate::Or(vec![
            Predicate::cmp(1, CmpOp::Le, rng.gen_range(0..5i64)),
            Predicate::cmp(2, CmpOp::Eq, TAGS[rng.gen_range(0..TAGS.len())]),
        ]),
    }
}

/// Random plans: full/predicate scans under random projections (always
/// covering the predicate's columns), plus grouped aggregates with a
/// mixed function set.
fn gen_plans(rng: &mut StdRng, n: usize) -> Vec<Plan> {
    let mut plans = Vec::new();
    // Projection scan: a random non-empty column subset, sorted on
    // every output column so answers compare deterministically.
    let mut cols: Vec<usize> = (0..4).filter(|_| rng.gen_range(0..2u32) == 0).collect();
    if cols.is_empty() {
        cols.push(rng.gen_range(0..4usize));
    }
    let keys: Vec<SortKey> = (0..cols.len()).map(SortKey::asc).collect();
    plans.push(Plan::scan(ScanSpec::new("t").columns(cols)).sort(keys));
    // Predicate scan over all columns.
    plans.push(
        Plan::scan(ScanSpec::new("t").predicate(gen_predicate(rng, n))).sort(vec![
            SortKey::asc(0),
            SortKey::asc(1),
            SortKey::asc(2),
            SortKey::asc(3),
        ]),
    );
    // Grouped aggregate over a predicate scan: group by the RLE- or
    // dict-friendly key, with Sum/Count/Avg/Min/Max partials that merge
    // at the coordinator.
    let grp = if rng.gen_range(0..2u32) == 0 { 1 } else { 2 };
    plans.push(
        Plan::scan(ScanSpec::new("t").predicate(gen_predicate(rng, n)))
            .aggregate(
                vec![grp],
                vec![
                    AggSpec::sum(Expr::col(3)),
                    AggSpec::count_star(),
                    AggSpec::avg(Expr::col(3)),
                    AggSpec::min(Expr::col(3)),
                    AggSpec::max(Expr::col(0)),
                ],
            )
            .sort(vec![SortKey::asc(0)]),
    );
    plans
}

/// Sum a counter across all label sets in a database's registry.
fn metric_sum(db: &EonDb, name: &str) -> u64 {
    let snap = db.metrics().snapshot();
    let prefix = format!("{name}{{");
    snap.as_object()
        .map(|obj| {
            obj.iter()
                .filter(|(k, _)| k.as_str() == name || k.starts_with(&prefix))
                .filter_map(|(_, v)| v.as_u64())
                .sum()
        })
        .unwrap_or(0)
}

proptest! {
    /// The tentpole equivalence: for every forced encoding, an
    /// encoded-exec database and a decode-first database answer a
    /// random workload with byte-identical rows — including the exact
    /// `Value` variants (`Debug` equality), so run-collapsed aggregates
    /// can never alias `Int` and `Float` — and their pruning metrics
    /// agree, while the decode-first side never serves an encoded view.
    #[test]
    fn encoded_and_decode_first_modes_agree(seed in 0u64..1_000_000, n in 60usize..220) {
        let rows = gen_rows(seed, n);
        let plans = gen_plans(&mut StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15), n);
        for force in FORCES {
            let enc = make_db(force, false, &rows);
            let dec = make_db(force, true, &rows);
            for plan in &plans {
                let a = enc.query(plan).unwrap();
                let b = dec.query(plan).unwrap();
                prop_assert_eq!(&a, &b, "force {:?} seed {}", force, seed);
                prop_assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "value representations diverged: force {:?} seed {}",
                    force,
                    seed
                );
            }
            // Decode-first mode must never see an encoded view…
            prop_assert_eq!(metric_sum(&dec, "scan_encoded_blocks_total"), 0u64);
            // …and force-Plain stores nothing *to* view encoded.
            if force == Some(Encoding::Plain) {
                prop_assert_eq!(metric_sum(&enc, "scan_encoded_blocks_total"), 0u64);
            }
            // Force-RLE/Dict always fits, so the encoded side must have
            // genuinely executed on compressed views.
            if matches!(force, Some(Encoding::Rle) | Some(Encoding::Dict)) {
                prop_assert!(metric_sum(&enc, "scan_encoded_blocks_total") > 0);
            }
            // Stats pruning is upstream of block decoding: both modes
            // must prune identically.
            prop_assert_eq!(
                metric_sum(&enc, "scan_blocks_pruned_total"),
                metric_sum(&dec, "scan_blocks_pruned_total"),
                "pruning diverged under force {:?}", force
            );
        }
    }

    /// Decoder hardening: any truncation of an encoded column is a
    /// typed [`EonError`] — never a panic, never a partial row set —
    /// and any single-bit flip either still decodes to the block's
    /// declared shape or fails typed.
    #[test]
    fn corrupted_column_bytes_fail_typed_never_panic(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..200usize);
        // Int-only when Delta must fit; otherwise a mixed bag of types.
        let int_only = rng.gen_range(0..2u32) == 0;
        let values: Vec<Value> = (0..n)
            .map(|i| match if int_only { 0 } else { rng.gen_range(0..4u32) } {
                0 => Value::Int(rng.gen_range(-9..9i64) * (i as i64 / 7 + 1)),
                1 => Value::Str(format!("s{}", rng.gen_range(0..4u32))),
                2 => Value::Float(f64::from(rng.gen_range(-3..3i32)) * 0.5),
                _ => Value::Null,
            })
            .collect();
        for enc in [Encoding::Plain, Encoding::Rle, Encoding::Dict, Encoding::Delta] {
            if !encoding_fits(&values, enc) {
                continue;
            }
            let mut w = Writer::new();
            encode_with(&values, enc, &mut w);
            let bytes = w.as_slice().to_vec();

            // Pristine bytes round-trip exactly.
            let decoded = decode_column(&mut Reader::new(&bytes)).unwrap();
            prop_assert_eq!(format!("{decoded:?}"), format!("{values:?}"));

            // Truncation: a strict prefix is always missing payload, so
            // decode must return a typed Corrupt — not rows, not a panic.
            let cut = rng.gen_range(0..bytes.len());
            match decode_column(&mut Reader::new(&bytes[..cut])) {
                Ok(rows) => prop_assert!(
                    false,
                    "{enc:?}: truncation at {cut}/{} decoded {} rows",
                    bytes.len(),
                    rows.len()
                ),
                Err(e) => prop_assert!(
                    matches!(e, EonError::Corrupt(_)),
                    "{enc:?}: truncation surfaced untyped error {e}"
                ),
            }

            // Bit flip: decoding may still succeed (payload bits are
            // not checksummed at this layer — the container footer row
            // count is the integrity gate, tested below), but it must
            // never panic and errors must stay typed.
            let mut mutated = bytes.clone();
            let pos = rng.gen_range(0..mutated.len());
            mutated[pos] ^= 1 << rng.gen_range(0..8u32);
            if let Err(e) = decode_column(&mut Reader::new(&mutated)) {
                prop_assert!(
                    matches!(e, EonError::Corrupt(_)),
                    "{enc:?}: bit flip at {pos} surfaced untyped error {e}"
                );
            }
        }
    }

    /// Container-level integrity: flipping a bit anywhere in a ROS file
    /// (data region, footer, or trailer) can surface only as a typed
    /// error or as blocks of exactly the footer's declared row counts —
    /// a corrupted run length or dictionary can never silently shrink
    /// or stretch a block.
    #[test]
    fn corrupted_containers_never_yield_short_blocks(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(50..400usize);
        let force = FORCES[rng.gen_range(0..FORCES.len())];
        let cols: Vec<Vec<Value>> = vec![
            (0..n).map(|i| Value::Int(i as i64)).collect(),
            (0..n).map(|_| Value::Int(rng.gen_range(0..4i64))).collect(),
            (0..n).map(|_| Value::Str(format!("t{}", rng.gen_range(0..3u32)))).collect(),
        ];
        let (bytes, footer) = RosWriter::with_block_rows(64)
            .force_encoding(force)
            .encode(&cols)
            .unwrap();

        let mut raw = bytes.to_vec();
        let pos = rng.gen_range(0..raw.len());
        raw[pos] ^= 1 << rng.gen_range(0..8u32);
        let truncate = rng.gen_range(0..4u32) == 0;
        if truncate {
            raw.truncate(rng.gen_range(0..raw.len()));
        }

        let fs = MemFs::new();
        fs.write("ros/corrupt", Bytes::from(raw)).unwrap();
        let reader = match RosReader::open(&fs, "ros/corrupt") {
            Ok(r) => r,
            // Footer/trailer damage detected at open: typed, done.
            Err(EonError::Corrupt(_)) => return,
            Err(e) => panic!("untyped open error: {e}"),
        };
        for (c, meta) in footer.columns.iter().enumerate() {
            let keep = vec![true; meta.blocks.len()];
            match reader.read_column_blocks(&fs, c, &keep) {
                Ok(blocks) => {
                    for (b, rows) in blocks.iter().enumerate() {
                        let got = rows.as_ref().map(Vec::len).unwrap_or(0) as u64;
                        prop_assert_eq!(
                            got, meta.blocks[b].rows,
                            "col {} block {}: short/long rows survived corruption at byte {}",
                            c, b, pos
                        );
                    }
                }
                Err(EonError::Corrupt(_)) => {}
                Err(EonError::NotFound(_) | EonError::Storage(_)) if truncate => {}
                Err(e) => panic!("untyped read error: {e}"),
            }
        }
    }
}
