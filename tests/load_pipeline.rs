//! Equivalence, atomicity, and rollback tests for the parallel write
//! pipeline (DESIGN.md "Write pipeline").
//!
//! The write pool is performance machinery: fanning (projection, shard)
//! upload jobs across workers must never change what a load *commits*.
//! These tests pin the contract:
//!
//! * a property test drives the same seeded COPY/DELETE/UPDATE/mergeout
//!   workload through a serial pool and a wide one and requires
//!   byte-identical committed catalog state — storage keys included —
//!   plus identical query answers;
//! * armed `LOAD_UPLOAD` / `LOAD_PRE_COMMIT` crashes must leave no
//!   committed trace, the retry must run clean, and a post-restart leak
//!   scan must reclaim the orphaned uploads;
//! * UPDATE is one transaction: a crash at any of its fault sites
//!   leaves the table byte-identical to before, and a concurrent reader
//!   during a successful UPDATE only ever sees the old state or the new
//!   state, never the deleted-but-not-reinserted middle;
//! * statements that fail for ordinary (non-crash) reasons register
//!   every upload that may have reached shared storage with the reaper
//!   — COPY containers and DELETE's delete vectors both;
//! * a reap pass whose S3 DELETEs fail — including ambiguous
//!   applied-but-reported-failed outcomes — re-registers what it could
//!   not confirm instead of leaking it;
//! * loads race mergeout and reap without losing a row.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use eon_columnar::pruning::CmpOp;
use eon_columnar::{Predicate, Projection};
use eon_core::{check_crash_invariants, EonConfig, EonDb, TableModel};
use eon_db as _;
use eon_exec::{AggSpec, Expr, Plan, ScanSpec, SortKey};
use eon_obs::Registry;
use eon_storage::fault::{site, FaultPlan};
use eon_storage::{FileSystem, FsStats, MemFs};
use eon_types::{schema, EonError, NodeId, Result, Value};
use proptest::prelude::*;
use rand::{Rng, SeedableRng, StdRng};

fn gen_rows(seed: u64, n: usize) -> Vec<Vec<Value>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..7i64)),
                Value::Int(rng.gen_range(0..1000i64)),
            ]
        })
        .collect()
}

fn make_table(db: &EonDb) {
    let s = schema![("id", Int), ("grp", Int), ("val", Int)];
    db.create_table(
        "t",
        s.clone(),
        vec![Projection::super_projection("p", &s, &[0], &[0])],
    )
    .unwrap();
}

fn cfg(nodes: usize, shards: usize, load_workers: usize) -> EonConfig {
    EonConfig::new(nodes, shards)
        .exec_slots(8)
        .load_workers(load_workers)
}

/// Committed write-path state, storage keys included: the pool must
/// reproduce the serial loop byte for byte (DESIGN.md "Write pipeline"
/// determinism rule).
fn fingerprint(db: &EonDb) -> Vec<String> {
    let snap = db.snapshot().unwrap();
    let mut out: Vec<String> = snap
        .containers
        .values()
        .map(|c| {
            format!(
                "c:{}:{}:{}:{}:{}:{}",
                c.oid.0, c.key, c.projection.0, c.shard, c.rows, c.size_bytes
            )
        })
        .chain(snap.delete_vectors.values().map(|d| {
            format!("d:{}:{}:{}:{}", d.oid.0, d.key, d.container.0, d.deleted_rows)
        }))
        .collect();
    out.sort();
    out
}

fn sorted_rows(db: &EonDb) -> Vec<Vec<Value>> {
    let plan = Plan::scan(ScanSpec::new("t")).sort(vec![
        SortKey::asc(0),
        SortKey::asc(1),
        SortKey::asc(2),
    ]);
    db.query(&plan).unwrap()
}

fn count_and_sum(db: &EonDb) -> (i64, i64) {
    let plan = Plan::scan(ScanSpec::new("t"))
        .aggregate(vec![], vec![AggSpec::count_star(), AggSpec::sum(Expr::col(2))]);
    let row = &db.query(&plan).unwrap()[0];
    // SUM over an empty table is NULL; report it as 0.
    (row[0].as_int().unwrap(), row[1].as_int().unwrap_or(0))
}

proptest! {
    /// Serial and wide write pools must commit identical state — keys,
    /// OIDs, stats — and identical answers, through COPY batches, a
    /// DELETE, an atomic UPDATE, and a mergeout pass.
    #[test]
    fn parallel_load_commits_identical_state(seed in 0u64..1_000_000, n in 90usize..300) {
        let serial = EonDb::create(Arc::new(MemFs::new()), cfg(4, 4, 1)).unwrap();
        let wide = EonDb::create(Arc::new(MemFs::new()), cfg(4, 4, 6)).unwrap();
        let rows = gen_rows(seed, n);
        for db in [&serial, &wide] {
            make_table(db);
            for chunk in rows.chunks(n.div_ceil(3).max(1)) {
                db.copy_into("t", chunk.to_vec()).unwrap();
            }
            db.delete_where("t", &Predicate::cmp(0, CmpOp::Lt, (n / 6) as i64)).unwrap();
            db.update_where(
                "t",
                &Predicate::cmp(0, CmpOp::Ge, (5 * n / 6) as i64),
                &[(2, Value::Int(4242))],
            ).unwrap();
        }
        prop_assert_eq!(fingerprint(&serial), fingerprint(&wide));
        prop_assert_eq!(sorted_rows(&serial), sorted_rows(&wide));

        // Mergeout rewrites containers through the same write path.
        serial.run_mergeout().unwrap();
        wide.run_mergeout().unwrap();
        prop_assert_eq!(fingerprint(&serial), fingerprint(&wide));
        prop_assert_eq!(sorted_rows(&serial), sorted_rows(&wide));
    }
}

/// An armed crash in the upload fan-out or just before the commit must
/// leave no committed trace; the retry (the plan is one-shot) runs
/// clean, and after cycling the nodes the leak scan reclaims every
/// orphaned upload.
#[test]
fn armed_load_crash_leaves_no_committed_trace() {
    for s in [site::LOAD_UPLOAD, site::LOAD_PRE_COMMIT] {
        let db = EonDb::create(
            Arc::new(MemFs::new()),
            cfg(3, 3, 4).faults(FaultPlan::at(s, 0)),
        )
        .unwrap();
        make_table(&db);
        let rows = gen_rows(7, 200);

        let err = db.copy_into("t", rows.clone()).unwrap_err();
        assert!(matches!(err, EonError::FaultInjected(_)), "site {s}: {err}");
        assert_eq!(count_and_sum(&db).0, 0, "site {s}: uncommitted rows visible");
        assert!(
            db.snapshot().unwrap().containers.is_empty(),
            "site {s}: containers committed despite crash"
        );

        // Retry runs clean and commits everything.
        assert_eq!(db.copy_into("t", rows.clone()).unwrap(), 200);
        let model = TableModel {
            name: "t".into(),
            rows: rows.clone(),
        };

        // Fresh instance ids make the crashed attempt's uploads stop
        // looking like live in-flight work; the leak scan then owns
        // them (§6.5). LOAD_PRE_COMMIT orphans every staged container.
        for id in 0..3u64 {
            db.kill_node(NodeId(id)).unwrap();
            db.restart_node(NodeId(id)).unwrap();
        }
        let report = check_crash_invariants(&db, &[model]).unwrap();
        if s == site::LOAD_PRE_COMMIT {
            assert!(
                !report.reclaimed.is_empty(),
                "pre-commit crash must orphan uploads for the leak scan"
            );
        }
    }
}

/// Batched commits under armed crash points (DESIGN.md "Group
/// commit"): a full batch of sequenced writers parks in the
/// accumulator and the leader "dies" at the leader-append,
/// mid-distribution, or post-append point. Every member observes the
/// crash; after a cold restart (all in-memory state lost, durable
/// logs survive) batch durability must be prefix-or-nothing — the
/// whole batch on every node's log, or none of it, never a gap — and
/// an aborted batch's uploads must be reclaimable crash orphans.
#[test]
fn batched_commit_crash_is_prefix_or_nothing() {
    const WRITERS: usize = 3;
    for s in [
        site::COMMIT_LEADER_APPEND,
        site::COMMIT_MID_DISTRIBUTION,
        site::COMMIT_POST_APPEND,
    ] {
        let faults = FaultPlan::inert();
        let db = EonDb::create(
            Arc::new(MemFs::new()),
            cfg(3, 3, 1).faults(faults.clone()).commit_group_max(WRITERS),
        )
        .unwrap();
        make_table(&db);
        let base = gen_rows(3, 90);
        db.copy_into("t", base.clone()).unwrap();
        let v0 = db.version();

        // Quiet bootstrap done: arm the crash, open the window, park a
        // full batch (writer `i` arrives once `i` are queued, so
        // composition is the plan's, not the scheduler's).
        faults.rearm(s, 0, None);
        db.set_commit_group_window(500_000);
        let batch_row =
            |i: usize| vec![Value::Int(1_000 + i as i64), Value::Int(0), Value::Int(0)];
        let outcomes: Vec<Result<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..WRITERS)
                .map(|i| {
                    let db = db.clone();
                    scope.spawn(move || {
                        while db.commit_group_queued() < i {
                            std::thread::yield_now();
                        }
                        db.copy_into("t", vec![batch_row(i)])
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, o) in outcomes.iter().enumerate() {
            assert!(
                matches!(o, Err(EonError::FaultInjected(_))),
                "site {s}: writer {i} should observe the leader's crash: {o:?}"
            );
        }

        // The leader's death loses every in-memory catalog at once:
        // recover from the durable logs alone.
        db.cold_restart_all().unwrap();
        let durable = s != site::COMMIT_LEADER_APPEND;
        let want = if durable { WRITERS } else { 0 };
        for node in db.membership().up_nodes() {
            assert_eq!(
                node.store.read_records_after(v0).unwrap().len(),
                want,
                "site {s}: {} batch records on {} (prefix-or-nothing violated)",
                want,
                node.id
            );
        }

        let mut model = TableModel {
            name: "t".into(),
            rows: base,
        };
        if durable {
            model.rows.extend((0..WRITERS).map(batch_row));
        }
        db.set_commit_group_window(0);
        let report = check_crash_invariants(&db, &[model]).unwrap();
        if !durable {
            assert!(
                report.reclaimed.len() >= WRITERS,
                "site {s}: aborted members' uploads not reclaimed: {:?}",
                report.reclaimed
            );
        }
    }
}

/// The same sequenced batch schedule commits byte-identical state —
/// storage keys included — run to run: batch composition is pinned by
/// the arrival gate, so group commit adds no nondeterminism to the
/// write pipeline.
#[test]
fn batched_commit_replays_byte_identically() {
    let run = || {
        let db = EonDb::create(
            Arc::new(MemFs::new()),
            cfg(3, 3, 1).commit_group_max(4),
        )
        .unwrap();
        make_table(&db);
        db.copy_into("t", gen_rows(11, 60)).unwrap();
        db.set_commit_group_window(500_000);
        std::thread::scope(|scope| {
            for i in 0..4usize {
                let db = db.clone();
                scope.spawn(move || {
                    while db.commit_group_queued() < i {
                        std::thread::yield_now();
                    }
                    db.copy_into(
                        "t",
                        vec![vec![Value::Int(2_000 + i as i64), Value::Int(1), Value::Int(2)]],
                    )
                    .unwrap();
                });
            }
        });
        (fingerprint(&db), sorted_rows(&db))
    };
    assert_eq!(run(), run());
}

/// UPDATE atomicity under crashes: arm each fault site the statement
/// passes — DV upload, container upload, pre-commit — and require the
/// table to be byte-identical to before the UPDATE, then a clean retry.
#[test]
fn update_crash_exposes_no_intermediate_state() {
    let rows = gen_rows(21, 240);
    let pred = Predicate::cmp(0, CmpOp::Lt, 120i64);
    let set: &[(usize, Value)] = &[(2, Value::Int(9999))];

    // Probe run with inert faults: count how often each site fires
    // during setup, so the armed run crashes inside the UPDATE itself
    // rather than during the setup load.
    let probe = EonDb::create(Arc::new(MemFs::new()), cfg(3, 3, 4)).unwrap();
    make_table(&probe);
    probe.copy_into("t", rows.clone()).unwrap();
    let setup_counts = probe.config().faults.site_counts();

    for s in [site::DML_UPLOAD, site::LOAD_UPLOAD, site::DML_PRE_COMMIT] {
        let nth = setup_counts.get(s).copied().unwrap_or(0);
        let db = EonDb::create(
            Arc::new(MemFs::new()),
            cfg(3, 3, 4).faults(FaultPlan::at(s, nth)),
        )
        .unwrap();
        make_table(&db);
        db.copy_into("t", rows.clone()).unwrap();
        let before = sorted_rows(&db);
        let fp_before = fingerprint(&db);

        let err = db.update_where("t", &pred, set).unwrap_err();
        assert!(matches!(err, EonError::FaultInjected(_)), "site {s}: {err}");
        assert_eq!(
            sorted_rows(&db),
            before,
            "site {s}: crash exposed intermediate UPDATE state"
        );
        assert_eq!(
            fingerprint(&db),
            fp_before,
            "site {s}: crash left committed catalog changes"
        );

        // One-shot plan: the retry is a plain re-execution.
        assert_eq!(db.update_where("t", &pred, set).unwrap(), 120);
        let after = sorted_rows(&db);
        assert_eq!(after.len(), 240);
        assert!(after
            .iter()
            .all(|r| r[0].as_int().unwrap() >= 120 || r[2] == Value::Int(9999)));
    }
}

/// During a *successful* UPDATE, a concurrent reader must only ever see
/// the old table or the new table: the row count never dips (no
/// deleted-but-not-reinserted window) and the aggregate is always one
/// of exactly two values.
#[test]
fn concurrent_reader_sees_update_atomically() {
    let db = EonDb::create(Arc::new(MemFs::new()), cfg(3, 3, 4)).unwrap();
    make_table(&db);
    let rows = gen_rows(33, 300);
    db.copy_into("t", rows).unwrap();
    let old = count_and_sum(&db);

    let done = AtomicBool::new(false);
    let observed = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        scope.spawn(|| {
            while !done.load(Ordering::Relaxed) {
                observed.lock().unwrap().push(count_and_sum(&db));
            }
        });
        db.update_where(
            "t",
            &Predicate::cmp(1, CmpOp::Le, 3i64),
            &[(2, Value::Int(0))],
        )
        .unwrap();
        done.store(true, Ordering::Relaxed);
    });
    let new = count_and_sum(&db);
    assert_ne!(old, new, "update should change the aggregate");
    for (i, obs) in observed.lock().unwrap().iter().enumerate() {
        assert!(
            *obs == old || *obs == new,
            "reader {i} saw intermediate state {obs:?} (old {old:?}, new {new:?})"
        );
    }
}

/// A shared filesystem whose writes and deletes can be told to fail
/// with a *non-transient* error (so the §5.3 retry loop does not mask
/// the failure), optionally applying the operation first — the
/// ambiguous applied-but-reported-failed S3 outcome.
struct FlakyFs {
    inner: MemFs,
    /// `u64::MAX` = disarmed; otherwise the number of further `data/`
    /// writes allowed before every subsequent one fails.
    data_writes_allowed: AtomicU64,
    fail_deletes: AtomicBool,
    /// When failing, apply the operation before reporting the error.
    apply_before_fail: AtomicBool,
}

impl FlakyFs {
    fn new() -> Self {
        FlakyFs {
            inner: MemFs::new(),
            data_writes_allowed: AtomicU64::new(u64::MAX),
            fail_deletes: AtomicBool::new(false),
            apply_before_fail: AtomicBool::new(false),
        }
    }
}

impl FileSystem for FlakyFs {
    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        if path.starts_with("data/") {
            let allowed = self.data_writes_allowed.load(Ordering::SeqCst);
            if allowed != u64::MAX {
                if allowed == 0 {
                    if self.apply_before_fail.load(Ordering::SeqCst) {
                        self.inner.write(path, data)?;
                    }
                    return Err(EonError::Internal(format!("injected PUT failure: {path}")));
                }
                self.data_writes_allowed.fetch_sub(1, Ordering::SeqCst);
            }
        }
        self.inner.write(path, data)
    }
    fn read(&self, path: &str) -> Result<Bytes> {
        self.inner.read(path)
    }
    fn size(&self, path: &str) -> Result<u64> {
        self.inner.size(path)
    }
    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.inner.list(prefix)
    }
    fn delete(&self, path: &str) -> Result<()> {
        if self.fail_deletes.load(Ordering::SeqCst) {
            if self.apply_before_fail.load(Ordering::SeqCst) {
                self.inner.delete(path)?;
            }
            return Err(EonError::Internal(format!(
                "injected DELETE failure: {path}"
            )));
        }
        self.inner.delete(path)
    }
    fn stats(&self) -> FsStats {
        self.inner.stats()
    }
    fn kind(&self) -> &'static str {
        "flaky-mem"
    }
}

/// A COPY that fails partway through its upload fan-out (an ordinary
/// storage error, not a crash) must roll back by registering every key
/// that may have reached shared storage with the reaper — and a reap
/// pass then deletes them all.
#[test]
fn failed_load_registers_uploads_with_reaper() {
    let fs = Arc::new(FlakyFs::new());
    let registry = Registry::new();
    let db = EonDb::create(
        fs.clone(),
        cfg(3, 4, 1).observability(registry.clone()),
    )
    .unwrap();
    make_table(&db);
    db.copy_into("t", gen_rows(5, 120)).unwrap();
    let committed = sorted_rows(&db);
    assert!(db.reaper_pending_keys().is_empty());

    // Serial pool (load_workers = 1): the first upload job lands on
    // shared storage, the second fails with a non-transient error.
    fs.data_writes_allowed.store(1, Ordering::SeqCst);
    let err = db.copy_into("t", gen_rows(6, 160)).unwrap_err();
    assert!(matches!(err, EonError::Internal(_)), "{err}");
    fs.data_writes_allowed.store(u64::MAX, Ordering::SeqCst);

    assert_eq!(sorted_rows(&db), committed, "failed load changed the table");
    let pending = db.reaper_pending_keys();
    assert!(
        pending.len() >= 2,
        "both the landed and the attempted upload must be registered: {pending:?}"
    );
    assert!(pending.iter().all(|k| k.starts_with("data/")));
    // At least one of the registered keys actually exists (the job that
    // completed before the failure).
    assert!(pending.iter().any(|k| fs.inner.read(k).is_ok()));

    // `TxnVersion::ZERO` registration means no retention condition can
    // hold them back: one reap pass deletes every orphan.
    db.sync_metadata(1_000).unwrap();
    let deleted = db.reap_files().unwrap();
    for k in &pending {
        assert!(deleted.contains(k), "{k} not reaped");
        assert!(fs.inner.read(k).is_err(), "{k} still on shared storage");
    }
    assert!(db.reaper_pending_keys().is_empty());
    assert_eq!(sorted_rows(&db), committed);
}

/// DELETE's delete-vector uploads take the same rollback path: a failed
/// DV PUT aborts the statement, tombstones nothing, and parks the
/// attempted key with the reaper.
#[test]
fn failed_delete_registers_dv_uploads_with_reaper() {
    let fs = Arc::new(FlakyFs::new());
    let db = EonDb::create(fs.clone(), cfg(3, 4, 1)).unwrap();
    make_table(&db);
    db.copy_into("t", gen_rows(9, 200)).unwrap();
    let committed = sorted_rows(&db);

    fs.data_writes_allowed.store(0, Ordering::SeqCst);
    let err = db
        .delete_where("t", &Predicate::cmp(0, CmpOp::Lt, 100i64))
        .unwrap_err();
    assert!(matches!(err, EonError::Internal(_)), "{err}");
    fs.data_writes_allowed.store(u64::MAX, Ordering::SeqCst);

    assert_eq!(sorted_rows(&db), committed, "failed DELETE tombstoned rows");
    let pending = db.reaper_pending_keys();
    assert!(
        !pending.is_empty() && pending.iter().all(|k| k.ends_with(".dv")),
        "attempted DV keys must be registered: {pending:?}"
    );

    db.sync_metadata(1_000).unwrap();
    db.reap_files().unwrap();
    assert!(db.reaper_pending_keys().is_empty());
    // The statement retries clean afterwards.
    assert_eq!(
        db.delete_where("t", &Predicate::cmp(0, CmpOp::Lt, 100i64)).unwrap(),
        100
    );
}

/// A reap pass whose S3 DELETEs fail re-registers the undeleted entries
/// instead of leaking them — for plain failures and for ambiguous
/// outcomes where the delete applied but the response was lost.
#[test]
fn failed_reap_reinstates_pending_entries() {
    let fs = Arc::new(FlakyFs::new());
    let registry = Registry::new();
    let db = EonDb::create(
        fs.clone(),
        cfg(3, 3, 0).observability(registry.clone()),
    )
    .unwrap();
    make_table(&db);
    for b in 0..6u64 {
        db.copy_into("t", gen_rows(b, 150)).unwrap();
    }
    let rows_before = sorted_rows(&db);
    db.run_mergeout().unwrap();
    let pending_before = {
        let mut p = db.reaper_pending_keys();
        p.sort();
        p
    };
    assert!(!pending_before.is_empty(), "mergeout should strand old containers");
    db.sync_metadata(1_000).unwrap();

    // Plain failure: nothing deleted, everything re-registered.
    fs.fail_deletes.store(true, Ordering::SeqCst);
    assert!(db.reap_files().is_err());
    let mut pending_after = db.reaper_pending_keys();
    pending_after.sort();
    assert_eq!(
        pending_before, pending_after,
        "failed reap must re-register every undeleted entry"
    );
    for k in &pending_after {
        assert!(fs.inner.read(k).is_ok(), "{k} deleted despite reported failure");
    }
    let reinstated = registry
        .snapshot()
        .get("reaper_reinstated_total{subsystem=\"reaper\"}")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    assert_eq!(reinstated as usize, pending_before.len());

    // Ambiguous outcome: the deletes *apply* but report failure. The
    // entries must still be re-registered — and the retry pass is a
    // harmless no-op because deleting a missing object is not an error.
    fs.apply_before_fail.store(true, Ordering::SeqCst);
    assert!(db.reap_files().is_err());
    let mut pending_ambiguous = db.reaper_pending_keys();
    pending_ambiguous.sort();
    assert_eq!(pending_before, pending_ambiguous);

    fs.fail_deletes.store(false, Ordering::SeqCst);
    fs.apply_before_fail.store(false, Ordering::SeqCst);
    let deleted = db.reap_files().unwrap();
    assert_eq!(deleted.len(), pending_before.len());
    assert!(db.reaper_pending_keys().is_empty());
    assert_eq!(sorted_rows(&db), rows_before, "reap touched live data");
}

/// Parallel loads racing mergeout and reap: every committed row
/// survives, and the crash-consistency invariants (exactness, no
/// dangling references, no leaks) hold at the end.
#[test]
fn concurrent_loads_mergeout_and_reap_lose_nothing() {
    const LOADERS: usize = 3;
    const BATCHES: usize = 4;
    const PER: usize = 120;
    let db = EonDb::create(Arc::new(MemFs::new()), cfg(4, 4, 0)).unwrap();
    make_table(&db);

    std::thread::scope(|scope| {
        for l in 0..LOADERS {
            let db = &db;
            scope.spawn(move || {
                for b in 0..BATCHES {
                    let rows = gen_rows((l * BATCHES + b) as u64, PER);
                    loop {
                        match db.copy_into("t", rows.clone()) {
                            Ok(_) => break,
                            // OCC loser under a concurrent mergeout
                            // commit: re-execute like a client would.
                            Err(EonError::WriteConflict(_)) => continue,
                            Err(e) => panic!("loader {l} batch {b}: {e}"),
                        }
                    }
                }
            });
        }
        let db = &db;
        scope.spawn(move || {
            for i in 0..6 {
                let _ = db.run_mergeout();
                let _ = db.sync_metadata(1_000 + i);
                let _ = db.reap_files();
            }
        });
    });

    let mut model = TableModel::new("t");
    for l in 0..LOADERS {
        for b in 0..BATCHES {
            model.rows.extend(gen_rows((l * BATCHES + b) as u64, PER));
        }
    }
    assert_eq!(count_and_sum(&db).0 as usize, LOADERS * BATCHES * PER);
    // Final quiesced mergeout + reap, then the full invariant check.
    db.run_mergeout().unwrap();
    db.sync_metadata(10_000).unwrap();
    db.reap_files().unwrap();
    check_crash_invariants(&db, &[model]).unwrap();
}
