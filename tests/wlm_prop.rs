//! Property test for the admission/scheduling state machines
//! (DESIGN.md "Admission control"): random interleavings of
//! acquire/timeout/cancel/close over a 2-slot execution semaphore and
//! a 2-wide admission pool never deadlock and never leak.
//!
//! Invariants pinned after **every** op and at quiesce:
//!
//! * `available == capacity − slots held by live guards`, always —
//!   including across close/reopen cycles (a kill must not eat slots);
//! * every waiter resolves: a guard, `Saturated`, `Cancelled`,
//!   `NodeDown`, or `DeadlineExceeded` — nothing parks forever (each
//!   case runs to completion without a watchdog precisely because the
//!   planned-wait budget bounds every wait);
//! * the admission pool's running count mirrors the live guards and
//!   its queue drains to zero.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use eon_cluster::{ExecSlots, SlotWait};
use eon_core::{AdmissionControl, AdmissionGuard, AdmissionLimits};
use eon_db as _;
use eon_obs::Registry;
use eon_types::{CancelToken, EonError};
use proptest::collection::vec;
use proptest::prelude::*;

const CAPACITY: usize = 2;
const MAX_CONCURRENT: usize = 2;
const MAX_QUEUE: usize = 1;
const ADMIT_TIMEOUT: Duration = Duration::from_millis(10);

#[derive(Clone, Debug)]
enum Op {
    /// Non-blocking acquire of `n` slots.
    TryAcquire(usize),
    /// Deadline-bounded acquire: resolves with a guard or a typed
    /// error, never parks.
    TimedAcquire(usize),
    /// Drop the oldest held slot guard.
    Release,
    /// Node kill: poisons the semaphore, wakes every waiter.
    Close,
    /// Node revival.
    Reopen,
    /// Acquire with a pre-fired cancellation token.
    CancelledAcquire,
    /// Saturate the semaphore, park a real waiter thread, then close:
    /// the waiter must wake with `NodeDown`, not sit on a dead node.
    KillWake,
    /// Enter the admission pool (or time out if it is full).
    Admit,
    /// Drop the oldest admission guard.
    ReleaseAdmit,
    /// With the pool full: a queued waiter fills the queue, the next
    /// session bounces with `Saturated`, the waiter times out.
    AdmitContended,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..=CAPACITY).prop_map(Op::TryAcquire),
        (1usize..=CAPACITY).prop_map(Op::TimedAcquire),
        Just(Op::Release),
        Just(Op::Close),
        Just(Op::Reopen),
        Just(Op::CancelledAcquire),
        Just(Op::KillWake),
        Just(Op::Admit),
        Just(Op::ReleaseAdmit),
        Just(Op::AdmitContended),
    ]
}

fn admission() -> Arc<AdmissionControl> {
    Arc::new(AdmissionControl::new(
        AdmissionLimits {
            max_concurrent: MAX_CONCURRENT,
            max_queue: MAX_QUEUE,
            timeout: Some(ADMIT_TIMEOUT),
        },
        Registry::new(),
    ))
}

/// Plain admit with the full outcome contract: a guard when the pool
/// has room, `DeadlineExceeded` when it doesn't (single-threaded, so
/// nobody drains the queue while we wait).
fn admit_one(ctl: &AdmissionControl, admits: &mut Vec<AdmissionGuard>) {
    match ctl.admit(0, None) {
        Ok(Some(g)) => {
            assert!(admits.len() < MAX_CONCURRENT, "admitted past max_concurrent");
            admits.push(g);
        }
        Ok(None) => panic!("admission is enabled; pass-through is a bug"),
        Err(EonError::DeadlineExceeded(_)) => {
            assert_eq!(admits.len(), MAX_CONCURRENT, "timed out with room in the pool");
        }
        Err(other) => panic!("unexpected admit outcome: {other}"),
    }
}

proptest! {
    #[test]
    fn random_interleavings_never_deadlock_or_leak(
        ops in vec(op_strategy(), 1..40),
    ) {
        let slots = ExecSlots::new(CAPACITY);
        let ctl = admission();
        let mut held: Vec<(usize, eon_cluster::SlotGuard)> = Vec::new();
        let mut held_n = 0usize;
        let mut admits: Vec<AdmissionGuard> = Vec::new();
        let mut closed = false;

        for op in &ops {
            match op {
                Op::TryAcquire(n) => {
                    let room = slots.available() >= *n;
                    match slots.try_acquire(*n) {
                        Some(g) => {
                            assert!(!closed && room, "try_acquire handed out a slot it didn't have");
                            held.push((*n, g));
                            held_n += n;
                        }
                        None => assert!(closed || !room, "try_acquire refused an available slot"),
                    }
                }
                Op::TimedAcquire(n) => {
                    let room = slots.available() >= *n;
                    match slots.acquire_wait(*n, &SlotWait::with_timeout(Duration::from_millis(5))) {
                        Ok(g) => {
                            assert!(!closed && room);
                            held.push((*n, g));
                            held_n += n;
                        }
                        Err(EonError::NodeDown(_)) => assert!(closed),
                        Err(EonError::DeadlineExceeded(_)) => assert!(!closed && !room),
                        Err(other) => panic!("unexpected acquire outcome: {other}"),
                    }
                }
                Op::Release => {
                    if !held.is_empty() {
                        held_n -= held.remove(0).0;
                    }
                }
                Op::Close => {
                    slots.close();
                    closed = true;
                }
                Op::Reopen => {
                    slots.reopen();
                    closed = false;
                }
                Op::CancelledAcquire => {
                    let token = CancelToken::new();
                    token.cancel();
                    match slots.acquire_wait(1, &SlotWait::unbounded().cancel(token)) {
                        Err(EonError::NodeDown(_)) => assert!(closed),
                        Err(EonError::Cancelled(_)) => assert!(!closed),
                        other => panic!("fired token must cancel, got {other:?}"),
                    }
                }
                Op::KillWake => {
                    if closed {
                        slots.reopen();
                        closed = false;
                    }
                    // Saturate, park a real waiter, kill the node: the
                    // waiter must resolve with NodeDown (this join is
                    // the no-deadlock proof for the unbounded path).
                    let mut temps = Vec::new();
                    while let Some(g) = slots.try_acquire(1) {
                        temps.push(g);
                    }
                    let waiter = {
                        let slots = slots.clone();
                        thread::spawn(move || slots.acquire_wait(1, &SlotWait::unbounded()))
                    };
                    thread::sleep(Duration::from_millis(1));
                    slots.close();
                    match waiter.join().unwrap() {
                        Err(EonError::NodeDown(_)) => {}
                        other => panic!("kill must wake the waiter with NodeDown, got {other:?}"),
                    }
                    drop(temps);
                    slots.reopen();
                }
                Op::Admit => admit_one(&ctl, &mut admits),
                Op::ReleaseAdmit => {
                    if !admits.is_empty() {
                        admits.remove(0);
                    }
                }
                Op::AdmitContended => {
                    if admits.len() < MAX_CONCURRENT {
                        admit_one(&ctl, &mut admits);
                        continue;
                    }
                    // Pool full: a background session takes the one
                    // queue spot, so the foreground one is Saturated.
                    let waiter = {
                        let ctl = ctl.clone();
                        thread::spawn(move || ctl.admit(0, None).map(|_| ()))
                    };
                    while ctl.pool_depths(0).1 == 0 && !waiter.is_finished() {
                        thread::yield_now();
                    }
                    match ctl.admit(0, None) {
                        Err(EonError::Saturated { queued, depth }) => {
                            assert_eq!((queued, depth), (MAX_QUEUE, MAX_QUEUE));
                        }
                        // The background waiter can hit its own
                        // deadline before we observe the full queue;
                        // then we take the (now free) queue spot and
                        // time out the same way. Either way: typed,
                        // bounded, no park.
                        Err(EonError::DeadlineExceeded(_)) => {}
                        other => panic!("full pool + full queue must saturate, got {other:?}"),
                    }
                    // The queued waiter resolves by deadline, never a
                    // guard (single-threaded: nobody releases).
                    match waiter.join().unwrap() {
                        Err(EonError::DeadlineExceeded(_)) => {}
                        other => panic!("queued waiter must time out, got {other:?}"),
                    }
                }
            }
            // The ledger invariant, after every single op.
            prop_assert_eq!(
                slots.available(),
                CAPACITY - held_n,
                "semaphore out of sync with live guards after {:?}",
                op
            );
            let (running, _) = ctl.pool_depths(0);
            prop_assert_eq!(running, admits.len(), "pool running count out of sync");
        }

        // Quiesce: release everything, revive, and the full budget is
        // back — no interleaving may eat a slot or a pool seat.
        held.clear();
        admits.clear();
        slots.reopen();
        prop_assert_eq!(slots.available(), CAPACITY);
        prop_assert_eq!(ctl.pool_depths(0), (0, 0));
    }
}
