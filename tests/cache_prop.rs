//! Property test for the depot file cache (DESIGN.md "Depot").
//!
//! A seeded op sequence (reads, bypass reads, write-through puts,
//! local inserts, pins, explicit evictions) runs against both a real
//! [`FileCache`] and a tiny reference model that mirrors the documented
//! semantics. After every op the two must agree, which pins the four
//! invariants the engine leans on:
//!
//! * used bytes never exceed capacity (the pinnable set is sized so
//!   the "everything pinned" overshoot escape hatch can't trigger);
//! * pinned objects survive LRU eviction;
//! * `mru_list` reflects true recency order (LRU discipline);
//! * `hits + misses + bypasses` equals the number of whole-object
//!   reads issued, and the registry counters agree with `CacheStats`.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use eon_cache::{mem_cache, CacheMode, FileCache};
use eon_db as _;
use eon_obs::Registry;
use eon_storage::{MemFs, SharedFs};
use proptest::collection::vec;
use proptest::prelude::*;

/// Cacheable keys `k0..k7` with sizes 10, 20, …, 80 bytes.
const KEYS: usize = 8;
/// Only `k0`/`k1` (10 + 20 = 30 bytes) may be pinned, so with
/// capacity ≥ 120 the eviction loop always finds an unpinned victim
/// and `used ≤ capacity` holds unconditionally.
const PINNABLE: usize = 2;
/// Keys under the never-cache prefix (§5.2 "never cache table T2").
const TMP_KEYS: [&str; 2] = ["tmp/a", "tmp/b"];

fn key(i: usize) -> String {
    format!("k{i}")
}

fn size_of(i: usize) -> u64 {
    (i as u64 + 1) * 10
}

#[derive(Clone, Debug)]
enum Op {
    /// `read_with(Normal)`: hit or miss + fault-in.
    Read(usize),
    /// `read_with(Bypass)`: straight to backing, no cache mutation.
    Bypass(usize),
    /// Write-through put (load path).
    Put(usize),
    /// Cache-only insert (fault-in / peer warm-up path).
    Insert(usize),
    /// Pin or unpin one of the pinnable keys.
    Pin(usize, bool),
    /// Explicit removal (local refcount hit zero, §6.5).
    Evict(usize),
    /// Normal read of a never-cache key: behaves like a bypass-free
    /// miss that is never admitted.
    ReadTmp(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..KEYS).prop_map(Op::Read),
        (0usize..KEYS).prop_map(Op::Bypass),
        (0usize..KEYS).prop_map(Op::Put),
        (0usize..KEYS).prop_map(Op::Insert),
        (0usize..PINNABLE * 2).prop_map(|v| Op::Pin(v / 2, v % 2 == 0)),
        (0usize..KEYS).prop_map(Op::Evict),
        (0usize..TMP_KEYS.len()).prop_map(Op::ReadTmp),
    ]
}

/// Reference model mirroring the cache's documented semantics.
struct Model {
    capacity: u64,
    /// key → (size, pinned)
    entries: BTreeMap<String, (u64, bool)>,
    /// Oldest → newest.
    recency: Vec<String>,
    used: u64,
    hits: u64,
    misses: u64,
    bypasses: u64,
    evictions: u64,
    reads: u64,
}

impl Model {
    fn new(capacity: u64) -> Self {
        Model {
            capacity,
            entries: BTreeMap::new(),
            recency: Vec::new(),
            used: 0,
            hits: 0,
            misses: 0,
            bypasses: 0,
            evictions: 0,
            reads: 0,
        }
    }

    fn touch(&mut self, key: &str) {
        self.recency.retain(|k| k != key);
        self.recency.push(key.to_owned());
    }

    fn insert(&mut self, key: &str, size: u64) {
        if key.starts_with("tmp/") || size > self.capacity {
            return;
        }
        if let Some((old, _)) = self.entries.remove(key) {
            self.recency.retain(|k| k != key);
            self.used -= old;
        }
        while self.used + size > self.capacity {
            let victim = self
                .recency
                .iter()
                .find(|k| !self.entries[*k].1)
                .cloned();
            match victim {
                Some(v) => {
                    let (sz, _) = self.entries.remove(&v).unwrap();
                    self.recency.retain(|k| k != &v);
                    self.used -= sz;
                    self.evictions += 1;
                }
                None => break,
            }
        }
        self.entries.insert(key.to_owned(), (size, false));
        self.recency.push(key.to_owned());
        self.used += size;
    }

    fn read(&mut self, key: &str, size: u64) {
        self.reads += 1;
        if self.entries.contains_key(key) {
            self.hits += 1;
            self.touch(key);
        } else {
            self.misses += 1;
            self.insert(key, size);
        }
    }

    fn evict(&mut self, key: &str) {
        if let Some((size, _)) = self.entries.remove(key) {
            self.recency.retain(|k| k != key);
            self.used -= size;
        }
    }
}

fn apply(cache: &FileCache, model: &mut Model, op: &Op) {
    match op {
        Op::Read(i) => {
            let data = cache.read_with(&key(*i), CacheMode::Normal).unwrap();
            assert_eq!(data.len() as u64, size_of(*i));
            model.read(&key(*i), size_of(*i));
        }
        Op::Bypass(i) => {
            cache.read_with(&key(*i), CacheMode::Bypass).unwrap();
            model.reads += 1;
            model.bypasses += 1;
        }
        Op::Put(i) => {
            cache
                .put_through(&key(*i), Bytes::from(vec![*i as u8; size_of(*i) as usize]))
                .unwrap();
            model.insert(&key(*i), size_of(*i));
        }
        Op::Insert(i) => {
            cache
                .insert_local(&key(*i), Bytes::from(vec![*i as u8; size_of(*i) as usize]))
                .unwrap();
            model.insert(&key(*i), size_of(*i));
        }
        Op::Pin(i, pinned) => {
            cache.set_pinned(&key(*i), *pinned);
            if let Some(e) = model.entries.get_mut(&key(*i)) {
                e.1 = *pinned;
            }
        }
        Op::Evict(i) => {
            cache.evict(&key(*i)).unwrap();
            model.evict(&key(*i));
        }
        Op::ReadTmp(i) => {
            let data = cache.read_with(TMP_KEYS[*i], CacheMode::Normal).unwrap();
            assert_eq!(data.len(), 15);
            model.read(TMP_KEYS[*i], 15);
        }
    }
}

fn check(cache: &FileCache, model: &Model) {
    let stats = cache.stats();
    assert_eq!(cache.used_bytes(), model.used, "used bytes diverged");
    assert!(
        cache.used_bytes() <= model.capacity,
        "cache over capacity: {} > {}",
        cache.used_bytes(),
        model.capacity
    );
    for (k, (_, pinned)) in &model.entries {
        assert!(cache.contains(k), "model entry {k} missing from cache");
        if *pinned {
            assert!(cache.contains(k), "pinned key {k} was evicted");
        }
    }
    for i in 0..KEYS {
        assert_eq!(
            cache.contains(&key(i)),
            model.entries.contains_key(&key(i)),
            "containment diverged on {}",
            key(i)
        );
    }
    for k in TMP_KEYS {
        assert!(!cache.contains(k), "never-cache key {k} was admitted");
    }
    // LRU discipline: mru_list with an unlimited budget is exactly the
    // model's recency order, newest first.
    let mru: Vec<String> = model.recency.iter().rev().cloned().collect();
    assert_eq!(cache.mru_list(u64::MAX / 2), mru, "recency order diverged");
    assert_eq!(stats.hits, model.hits);
    assert_eq!(stats.misses, model.misses);
    assert_eq!(stats.bypasses, model.bypasses);
    assert_eq!(stats.evictions, model.evictions);
    assert_eq!(
        stats.hits + stats.misses + stats.bypasses,
        model.reads,
        "hits + misses + bypasses must equal whole-object reads"
    );
}

proptest! {
    #[test]
    fn cache_agrees_with_reference_model(
        capacity in 120u64..200,
        ops in vec(op_strategy(), 1..300),
    ) {
        let backing: SharedFs = Arc::new(MemFs::new());
        for i in 0..KEYS {
            backing
                .write(&key(i), Bytes::from(vec![i as u8; size_of(i) as usize]))
                .unwrap();
        }
        for k in TMP_KEYS {
            backing.write(k, Bytes::from(vec![9u8; 15])).unwrap();
        }
        let registry = Registry::new();
        let cache = mem_cache(backing, capacity);
        cache.never_cache_prefix("tmp/");
        cache.attach_metrics(&registry, "prop");

        let mut model = Model::new(capacity);
        for op in &ops {
            apply(&cache, &mut model, op);
            check(&cache, &model);
        }

        // The registry view must agree with CacheStats at the end.
        let snap = registry.deterministic_snapshot();
        let metric = |name: &str| {
            snap.get(&format!("{name}{{node=\"prop\",subsystem=\"depot\"}}"))
                .and_then(|v| v.as_u64())
                .unwrap_or(u64::MAX)
        };
        prop_assert_eq!(metric("depot_hits_total"), model.hits);
        prop_assert_eq!(metric("depot_misses_total"), model.misses);
        prop_assert_eq!(metric("depot_bypasses_total"), model.bypasses);
        prop_assert_eq!(metric("depot_evictions_total"), model.evictions);
        prop_assert_eq!(metric("depot_used_bytes"), model.used);
    }
}
