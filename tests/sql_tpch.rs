//! SQL front end vs plan API on real TPC-H data: the same query
//! expressed both ways must return the same rows. This pins the whole
//! pipeline — parser, name resolution, predicate pushdown, distributed
//! execution — against the independently hand-planned workloads.

use std::sync::Arc;

use eon_core::{EonConfig, EonDb};
use eon_storage::MemFs;
use eon_workload::tpch::{load_tpch_eon, TpchData};
use eon_workload::tpch_query;

fn setup() -> Arc<EonDb> {
    let data = TpchData::generate(0.002, 0x501);
    let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(3, 3)).unwrap();
    load_tpch_eon(&db, &data).unwrap();
    db
}

fn approx_eq(a: &[Vec<eon_types::Value>], b: &[Vec<eon_types::Value>]) -> bool {
    use eon_types::Value;
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(x, y)| match (x, y) {
                    (Value::Float(x), Value::Float(y)) => {
                        let scale = x.abs().max(y.abs()).max(1.0);
                        (x - y).abs() / scale < 1e-9
                    }
                    _ => x == y,
                })
        })
}

#[test]
fn q1_pricing_summary_via_sql() {
    let db = setup();
    let sql = "SELECT l_returnflag, l_linestatus, \
                      SUM(l_quantity), SUM(l_extendedprice), \
                      SUM(l_extendedprice * (1 - l_discount)), \
                      SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)), \
                      AVG(l_quantity), AVG(l_extendedprice), AVG(l_discount), COUNT(*) \
               FROM lineitem \
               WHERE l_shipdate <= DATE '1998-09-02' \
               GROUP BY l_returnflag, l_linestatus \
               ORDER BY l_returnflag, l_linestatus";
    let via_sql = db.sql(sql).unwrap();
    let via_plan = db.query(&tpch_query(1)).unwrap();
    assert!(!via_sql.is_empty());
    assert!(approx_eq(&via_sql, &via_plan), "Q1 mismatch");
}

#[test]
fn q6_forecast_revenue_via_sql() {
    let db = setup();
    let sql = "SELECT SUM(l_extendedprice * l_discount) FROM lineitem \
               WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
                 AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24";
    let via_sql = db.sql(sql).unwrap();
    let via_plan = db.query(&tpch_query(6)).unwrap();
    assert!(approx_eq(&via_sql, &via_plan), "Q6 mismatch: {via_sql:?} vs {via_plan:?}");
}

#[test]
fn q3_shipping_priority_via_sql() {
    let db = setup();
    // The plan version scans lineitem first; SQL puts orders first —
    // different join orders, same rows (up to float rounding).
    let sql = "SELECT l.l_orderkey, o.o_orderdate, o.o_shippriority, \
                      SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue \
               FROM lineitem l \
               JOIN orders o ON l.l_orderkey = o.o_orderkey \
               JOIN customer c ON o.o_custkey = c.c_custkey \
               WHERE c.c_mktsegment = 'BUILDING' \
                 AND o.o_orderdate < DATE '1995-03-15' \
                 AND l.l_shipdate > DATE '1995-03-15' \
               GROUP BY l.l_orderkey, o.o_orderdate, o.o_shippriority \
               ORDER BY revenue DESC, 2 ASC LIMIT 10";
    let via_sql = db.sql(sql).unwrap();
    // The plan version's output is (okey, odate, priority, revenue) too.
    let via_plan = db.query(&tpch_query(3)).unwrap();
    assert!(approx_eq(&via_sql, &via_plan), "Q3 mismatch");
}

#[test]
fn q10_returned_items_via_sql() {
    let db = setup();
    let sql = "SELECT c.c_custkey, c.c_name, c.c_acctbal, n.n_name, \
                      SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue \
               FROM lineitem l \
               JOIN orders o ON l.l_orderkey = o.o_orderkey \
               JOIN customer c ON o.o_custkey = c.c_custkey \
               JOIN nation n ON c.c_nationkey = n.n_nationkey \
               WHERE l.l_returnflag = 'R' \
                 AND o.o_orderdate >= DATE '1993-10-01' \
                 AND o.o_orderdate < DATE '1994-01-01' \
               GROUP BY c.c_custkey, c.c_name, c.c_acctbal, n.n_name \
               ORDER BY revenue DESC LIMIT 20";
    let via_sql = db.sql(sql).unwrap();
    let via_plan = db.query(&tpch_query(10)).unwrap();
    assert!(approx_eq(&via_sql, &via_plan), "Q10 mismatch");
}
