//! Admission control & deadline-aware scheduling (DESIGN.md
//! "Admission control"): no session parks forever on a saturated or
//! dying cluster.
//!
//! These tests pin the workload-management contract end to end:
//!
//! * a full resource pool rejects with typed [`EonError::Saturated`]
//!   instead of queueing without bound;
//! * a queued session gives up with `DeadlineExceeded` inside its
//!   configured queue timeout — the previously-hanging scenario;
//! * execution-slot waits are deadline-bounded too, and a node kill
//!   wakes every parked waiter with `NodeDown` instead of leaving it
//!   on a dead semaphore;
//! * cancellation tokens release everything a session holds at the
//!   next boundary (admission queue, slot wait, scan/write pools);
//! * after every scenario — including a seeded multi-session stress
//!   mix of queries, COPY, mergeout, and a node kill — the cluster
//!   quiesces clean: `available == capacity` on every up node's slot
//!   semaphore and zero running/queued sessions in every pool.
//!
//! Every blocking test runs under a watchdog so a regression shows up
//! as a failed assertion, not a hung `cargo test`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use eon_cluster::SlotGuard;
use eon_core::{EonConfig, EonDb, SessionOpts};
use eon_db as _;
use eon_exec::{AggSpec, Expr, Plan, ScanSpec};
use eon_storage::MemFs;
use eon_types::{schema, CancelToken, EonError, NodeId, Value};

/// Fail the test if `f` does not finish within `secs` — a hang is a
/// bug this suite exists to catch, and it must surface as a failure.
fn with_watchdog<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(Duration::from_secs(secs))
        .expect("watchdog fired: scenario hung instead of resolving")
}

fn count_plan() -> Plan {
    Plan::scan(ScanSpec::new("t")).aggregate(vec![], vec![AggSpec::count_star()])
}

fn sum_plan() -> Plan {
    Plan::scan(ScanSpec::new("t")).aggregate(vec![], vec![AggSpec::sum(Expr::col(1))])
}

fn setup(db: &EonDb, rows: i64) {
    let s = schema![("id", Int), ("v", Int)];
    db.create_table(
        "t",
        s.clone(),
        vec![eon_columnar::Projection::super_projection("p", &s, &[0], &[0])],
    )
    .unwrap();
    db.copy_into(
        "t",
        (0..rows).map(|i| vec![Value::Int(i), Value::Int(i % 101)]).collect(),
    )
    .unwrap();
}

/// Take every execution slot on every up node, so the next session
/// parks at the slot semaphore.
fn hold_all_slots(db: &EonDb) -> Vec<SlotGuard> {
    db.membership()
        .up_nodes()
        .iter()
        .map(|n| n.slots.acquire(n.slots.capacity()).unwrap())
        .collect()
}

/// The quiesce invariant: nothing leaked anywhere.
fn assert_quiesced(db: &EonDb) {
    for node in db.membership().up_nodes() {
        assert_eq!(
            node.slots.available(),
            node.slots.capacity(),
            "node {} leaked execution slots",
            node.id
        );
    }
    assert_eq!(
        db.admission().pool_depths(0),
        (0, 0),
        "admission pool leaked running/queued sessions"
    );
}

/// Spin until `cond` holds (bounded — the enclosing watchdog is the
/// real backstop, this keeps the error local).
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(start.elapsed() < Duration::from_secs(20), "never reached: {what}");
        thread::sleep(Duration::from_millis(1));
    }
}

/// Pool at max concurrency + full queue ⇒ the next session is turned
/// away immediately with `Saturated {queued, depth}`, and the sessions
/// already admitted or queued still complete once capacity frees up.
#[test]
fn saturated_pool_rejects_instead_of_parking() {
    with_watchdog(120, || {
        let db = EonDb::create(
            Arc::new(MemFs::new()),
            EonConfig::new(2, 2)
                .admission_max_concurrent(1)
                .admission_max_queue(1)
                .admission_timeout_ms(60_000)
                .slot_wait_ms(60_000),
        )
        .unwrap();
        setup(&db, 500);

        // Session A is admitted (running=1) and parks at the slot
        // semaphore; session B fills the one queue spot.
        let held = hold_all_slots(&db);
        let a = {
            let db = db.clone();
            thread::spawn(move || db.query(&count_plan()))
        };
        wait_until("A admitted", || db.admission().pool_depths(0) == (1, 0));
        let b = {
            let db = db.clone();
            thread::spawn(move || db.query(&count_plan()))
        };
        wait_until("B queued", || db.admission().pool_depths(0) == (1, 1));

        // Session C must be rejected *now*, not after a timeout.
        let started = Instant::now();
        match db.query(&count_plan()) {
            Err(EonError::Saturated { queued, depth }) => {
                assert_eq!((queued, depth), (1, 1));
            }
            other => panic!("expected Saturated, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "Saturated took {:?} — rejection must not wait out the queue timeout",
            started.elapsed()
        );

        // Free the slots: A runs, then B drains from the queue.
        drop(held);
        assert_eq!(a.join().unwrap().unwrap()[0][0], Value::Int(500));
        assert_eq!(b.join().unwrap().unwrap()[0][0], Value::Int(500));
        assert_quiesced(&db);
    });
}

/// A queued session on a pool that never drains gives up with
/// `DeadlineExceeded` — the exact scenario that used to park forever.
#[test]
fn queue_deadline_expires_instead_of_hanging() {
    with_watchdog(120, || {
        let db = EonDb::create(
            Arc::new(MemFs::new()),
            EonConfig::new(2, 2)
                .admission_max_concurrent(1)
                .admission_max_queue(0) // unbounded queue: only the deadline saves us
                .admission_timeout_ms(300)
                .slot_wait_ms(60_000),
        )
        .unwrap();
        setup(&db, 500);

        let held = hold_all_slots(&db);
        let a = {
            let db = db.clone();
            thread::spawn(move || db.query(&count_plan()))
        };
        wait_until("A admitted", || db.admission().pool_depths(0) == (1, 0));

        let started = Instant::now();
        match db.query(&count_plan()) {
            Err(EonError::DeadlineExceeded(what)) => {
                assert!(what.contains("admission"), "unexpected deadline site: {what}")
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // The planned-wait budget is 300ms of 1ms ticks; scheduler slop
        // may stretch the wall clock, but nowhere near a hang.
        assert!(
            started.elapsed() < Duration::from_secs(60),
            "queue deadline took {:?}",
            started.elapsed()
        );

        drop(held);
        assert_eq!(a.join().unwrap().unwrap()[0][0], Value::Int(500));
        assert_quiesced(&db);
    });
}

/// With admission control off, the execution-slot wait itself is
/// deadline-bounded: a session facing a saturated semaphore resolves
/// with `DeadlineExceeded` within `slot_wait_ms`, then succeeds once
/// the slots free up.
#[test]
fn slot_wait_deadline_bounds_a_saturated_node() {
    with_watchdog(120, || {
        let db = EonDb::create(
            Arc::new(MemFs::new()),
            EonConfig::new(2, 2).slot_wait_ms(250),
        )
        .unwrap();
        setup(&db, 500);

        let held = hold_all_slots(&db);
        let started = Instant::now();
        match db.query(&count_plan()) {
            Err(EonError::DeadlineExceeded(what)) => {
                assert!(what.contains("slot"), "unexpected deadline site: {what}")
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(started.elapsed() < Duration::from_secs(60));

        drop(held);
        assert_eq!(db.query(&count_plan()).unwrap()[0][0], Value::Int(500));
        assert_quiesced(&db);
    });
}

/// A fired cancellation token resolves a session wherever it is —
/// parked at the slot semaphore, queued for admission, or about to
/// claim scan work — with `Cancelled`, releasing everything it held.
#[test]
fn cancel_token_releases_a_parked_session() {
    with_watchdog(120, || {
        let db = EonDb::create(
            Arc::new(MemFs::new()),
            EonConfig::new(2, 2)
                .admission_max_concurrent(2)
                .admission_timeout_ms(60_000)
                .slot_wait_ms(60_000),
        )
        .unwrap();
        setup(&db, 500);

        // Parked at the slot wait, then cancelled from outside.
        let held = hold_all_slots(&db);
        let token = CancelToken::new();
        let a = {
            let db = db.clone();
            let opts = SessionOpts {
                cancel: Some(token.clone()),
                ..Default::default()
            };
            thread::spawn(move || db.query_with(&count_plan(), &opts))
        };
        thread::sleep(Duration::from_millis(50));
        token.cancel();
        match a.join().unwrap() {
            Err(EonError::Cancelled(_)) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        drop(held);

        // A pre-fired token never runs at all — same typed outcome on a
        // completely healthy cluster.
        let fired = CancelToken::new();
        fired.cancel();
        let opts = SessionOpts {
            cancel: Some(fired),
            ..Default::default()
        };
        match db.query_with(&count_plan(), &opts) {
            Err(EonError::Cancelled(_)) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }

        // A cancelled COPY rolls back and leaks nothing.
        let fired = CancelToken::new();
        fired.cancel();
        let before = db.query(&count_plan()).unwrap()[0][0].clone();
        assert!(db
            .copy_into_cancellable(
                "t",
                (0..100).map(|i| vec![Value::Int(i), Value::Int(i)]).collect(),
                fired,
            )
            .is_err());
        assert_eq!(db.query(&count_plan()).unwrap()[0][0], before);
        assert_quiesced(&db);
    });
}

/// Killing a node wakes every session parked on its slot semaphore
/// with `NodeDown` — nobody waits out a 60s deadline on a dead node.
/// The woken worker's `NodeDown` feeds failover, which re-plans on the
/// survivor and answers.
#[test]
fn node_kill_wakes_parked_sessions() {
    with_watchdog(120, || {
        let db = EonDb::create(
            Arc::new(MemFs::new()),
            EonConfig::new(3, 3).slot_wait_ms(60_000),
        )
        .unwrap();
        setup(&db, 500);

        // Every node's semaphore is saturated, so the session's
        // workers park at the slot wait. (Three nodes: killing one
        // keeps quorum and shard coverage for the failover.)
        let held = hold_all_slots(&db);
        let a = {
            let db = db.clone();
            thread::spawn(move || db.query(&count_plan()))
        };
        thread::sleep(Duration::from_millis(50));

        // Kill node 0: its parked worker must wake with `NodeDown`
        // immediately (not after the 60s deadline). Freeing the
        // survivors' slots lets failover answer on nodes 1–2.
        let started = Instant::now();
        db.kill_node(NodeId(0)).unwrap();
        drop(held);
        assert_eq!(a.join().unwrap().unwrap()[0][0], Value::Int(500));
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "kill should wake the parked worker, not leave it to the 60s deadline"
        );

        db.restart_node(NodeId(0)).unwrap();
        assert_eq!(db.query(&count_plan()).unwrap()[0][0], Value::Int(500));
        assert_quiesced(&db);
    });
}

/// Seeded multi-session stress: queries (plain, bypass, crunch), COPY,
/// mergeout, mid-run cancellations, and a node kill+restart, all under
/// tight admission limits. Every session must resolve (the watchdog is
/// the hang detector), and the cluster must quiesce with zero leaked
/// slots and empty pools.
#[test]
fn stress_mix_quiesces_with_no_leaks() {
    with_watchdog(300, || {
        let db = EonDb::create(
            Arc::new(MemFs::new()),
            EonConfig::new(3, 3)
                .admission_max_concurrent(2)
                .admission_max_queue(8)
                .admission_timeout_ms(10_000)
                .slot_wait_ms(10_000),
        )
        .unwrap();
        setup(&db, 2_000);

        let errors = Arc::new(AtomicU64::new(0));
        let mut workers = Vec::new();
        for w in 0..4u64 {
            let db = db.clone();
            let errors = errors.clone();
            workers.push(thread::spawn(move || {
                // Per-thread seeded LCG: the op mix is reproducible.
                let mut seed = 0x9e3779b97f4a7c15u64.wrapping_mul(w + 1);
                let mut next = || {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    seed >> 33
                };
                for i in 0..24 {
                    let r = match next() % 6 {
                        0 => db.query(&count_plan()).map(|_| ()),
                        1 => db.query(&sum_plan()).map(|_| ()),
                        2 => db
                            .query_with(
                                &count_plan(),
                                &SessionOpts {
                                    bypass_cache: true,
                                    ..Default::default()
                                },
                            )
                            .map(|_| ()),
                        3 => db
                            .copy_into(
                                "t",
                                vec![vec![
                                    Value::Int(1_000_000 + (w * 100 + i) as i64),
                                    Value::Int(0),
                                ]],
                            )
                            .map(|_| ()),
                        4 => db.run_mergeout().map(|_| ()),
                        _ => {
                            // Cancel mid-flight from a sibling thread.
                            let token = CancelToken::new();
                            let killer = {
                                let t = token.clone();
                                thread::spawn(move || {
                                    thread::sleep(Duration::from_millis(2));
                                    t.cancel();
                                })
                            };
                            let r = db
                                .query_with(
                                    &sum_plan(),
                                    &SessionOpts {
                                        cancel: Some(token),
                                        ..Default::default()
                                    },
                                )
                                .map(|_| ());
                            killer.join().unwrap();
                            r
                        }
                    };
                    if r.is_err() {
                        // Backpressure and races with the kill below are
                        // expected; hangs and leaks are not.
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }

        // Kill and restart a node while the mix is running.
        thread::sleep(Duration::from_millis(30));
        db.kill_node(NodeId(2)).unwrap();
        thread::sleep(Duration::from_millis(30));
        db.restart_node(NodeId(2)).unwrap();

        for w in workers {
            w.join().unwrap();
        }
        // The cluster still answers, and nothing leaked.
        assert!(db.query(&count_plan()).unwrap()[0][0] >= Value::Int(2_000));
        assert_quiesced(&db);
    });
}

/// Serial sessions under admission control produce deterministic
/// admission counts in the metrics registry.
#[test]
fn serial_admission_counts_are_deterministic() {
    let db = EonDb::create(
        Arc::new(MemFs::new()),
        EonConfig::new(2, 2)
            .admission_max_concurrent(2)
            .admission_max_queue(4),
    )
    .unwrap();
    setup(&db, 200);
    for _ in 0..10 {
        db.query(&count_plan()).unwrap();
    }
    let snap = db.metrics().deterministic_snapshot();
    let admitted = snap
        .get("admission_admitted_total{pool=\"sc0\",subsystem=\"admission\"}")
        .and_then(|v| v.as_u64());
    assert_eq!(admitted, Some(10), "expected exactly 10 admissions");
    let rejected = snap
        .get("admission_rejected_total{pool=\"sc0\",subsystem=\"admission\"}")
        .and_then(|v| v.as_u64());
    assert_eq!(rejected, Some(0));
    assert_quiesced(&db);
}

/// Regression: nodes commissioned after database creation must land
/// their slot metrics in the database registry, not a throwaway one —
/// `ExecSlots::new` can't see the shared registry, so commissioning
/// re-homes the counters and carries any earlier totals over.
#[test]
fn fresh_node_slot_metrics_land_in_db_registry() {
    let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(2, 2)).unwrap();
    setup(&db, 200);
    let id = db.add_node().unwrap();
    let node = db.membership().get(id).unwrap();
    drop(node.slots.acquire(1).unwrap());
    let snap = db.metrics().deterministic_snapshot();
    for n in 0..=id.0 {
        let key = format!("exec_slot_acquisitions_total{{node=\"node{n}\",subsystem=\"exec\"}}");
        assert!(
            snap.get(&key).is_some(),
            "node{n}'s slot metrics missing from the db registry (key {key})"
        );
    }
    let newcomer = snap
        .get(&format!(
            "exec_slot_acquisitions_total{{node=\"node{}\",subsystem=\"exec\"}}",
            id.0
        ))
        .and_then(|v| v.as_u64())
        .unwrap();
    assert!(newcomer >= 1, "newcomer's acquisition never reached the registry");
}

/// Regression: with *zero* nodes up there is no attestation that old
/// file versions are unread (a restarting node may resume a query), so
/// a reap pass during a full outage must delete nothing and keep every
/// pending key — previously `min_query_version` defaulted to
/// `u64::MAX` and the pass reaped as if the cluster were quiescent.
#[test]
fn reap_skips_full_outage() {
    // Partial outage: the surviving node attests no query is in
    // flight, so files dropped before the outage still reap.
    let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(2, 2)).unwrap();
    setup(&db, 500);
    db.drop_table("t").unwrap();
    db.sync_metadata(1_000).unwrap();
    assert!(!db.reaper_pending_keys().is_empty());
    db.kill_node(NodeId(1)).unwrap();
    assert!(!db.reap_files().unwrap().is_empty(), "partial outage should still reap");

    // Full outage: zero up nodes means zero attestation — the pass
    // must delete nothing and keep every pending key.
    let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(2, 2)).unwrap();
    setup(&db, 500);
    db.drop_table("t").unwrap();
    db.sync_metadata(1_000).unwrap();
    let pending = db.reaper_pending_keys();
    assert!(!pending.is_empty(), "drop should leave files awaiting reap");
    db.kill_node(NodeId(0)).unwrap();
    db.kill_node(NodeId(1)).unwrap();
    assert_eq!(
        db.reap_files().unwrap(),
        Vec::<String>::new(),
        "a full outage must not reap"
    );
    assert_eq!(db.reaper_pending_keys(), pending, "outage pass must keep every key");
    // In-process restart needs a live peer to catch up from; a full
    // outage is revive territory — and crucially the keys are still
    // pending for whoever recovers, not deleted under a restarting
    // node's feet.
    assert!(db.restart_node(NodeId(0)).is_err());
    assert_eq!(db.reaper_pending_keys(), pending);
}

/// Regression: a panicking query worker is contained into a typed
/// error at the join and absorbed by failover — the session answers,
/// the process survives, and the node stays up (a panic is not a
/// crash).
#[test]
fn worker_panic_is_contained_and_fails_over() {
    use eon_storage::fault::{site, FaultPlan};
    let plan_inject = FaultPlan::at_node(site::QUERY_WORKER_PANIC, 0, 1);
    let db = EonDb::create(
        Arc::new(MemFs::new()),
        EonConfig::new(4, 3).faults(plan_inject.clone()),
    )
    .unwrap();
    setup(&db, 1_000);
    let expect: i64 = (0..1_000).map(|i| i % 101).sum();

    // Run sessions until the armed panic fires (node 1 may not
    // participate in the very first one).
    let mut fired = false;
    for _ in 0..20 {
        let out = db.query(&sum_plan()).expect("failover should absorb the panic");
        assert_eq!(out[0][0], Value::Int(expect));
        if !plan_inject.fired().is_empty() {
            fired = true;
            break;
        }
    }
    assert!(fired, "panic site never fired");
    // Unlike a participant death, a contained panic leaves the node up.
    assert!(db.membership().get(NodeId(1)).unwrap().is_up());
    assert_eq!(db.query(&sum_plan()).unwrap()[0][0], Value::Int(expect));
    assert_quiesced(&db);
}
