//! Equivalence and concurrency tests for the pipelined parallel scan
//! (DESIGN.md "Scan pipeline").
//!
//! The scan pool, coalesced ranged reads, selection-vector late
//! materialization, and single-flight depot fills are all performance
//! machinery: none of them may change a query answer, the order of a
//! scan's output, or the exactness of the depot's hit/miss accounting.
//! These tests pin that:
//!
//! * a property test runs the same seeded workload through a serial
//!   pipeline and a fully-enabled one (Normal, Bypass, and crunch
//!   sessions) and requires identical answers — the serial side forces
//!   the decode-first scan path and the workload sweeps forced block
//!   encodings, so the property also pins compression-aware execution
//!   (encoded-view blocks) against the row-at-a-time reference;
//! * a single-node test compares *unsorted* scan output, which pins the
//!   deterministic container-order merge of the parallel pool;
//! * an armed `QUERY_WORKER_LOCAL` crash mid-scan must be absorbed by
//!   failover without changing answers;
//! * concurrent misses on one depot key over simulated S3 must issue
//!   exactly one backing GET, with `CacheStats` and the registry in
//!   agreement.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use eon_cache::{mem_cache, CacheMode};
use eon_columnar::pruning::CmpOp;
use eon_columnar::{Encoding, Predicate, Projection};
use eon_core::{EonConfig, EonDb, SessionOpts};
use eon_db as _;
use eon_exec::{AggSpec, Expr, Plan, ScanSpec, SortKey};
use eon_obs::Registry;
use eon_storage::fault::{site, FaultPlan};
use eon_storage::{FileSystem, MemFs, S3Config, S3SimFs, SharedFs};
use eon_types::{schema, Value};
use proptest::prelude::*;
use rand::{Rng, SeedableRng, StdRng};

/// Deterministic three-column rows: a monotone sort key, a small group
/// key, and a value column with sprinkled NULLs (so selection vectors
/// see the same null semantics `eval_row` applies).
fn gen_rows(seed: u64, n: usize) -> Vec<Vec<Value>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let val = if rng.gen_range(0..8u32) == 0 {
                Value::Null
            } else {
                Value::Int(rng.gen_range(0..1000i64))
            };
            vec![
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..7i64)),
                val,
            ]
        })
        .collect()
}

fn load(db: &EonDb, rows: &[Vec<Value>], batches: usize) {
    let s = schema![("id", Int), ("grp", Int), ("val", Int)];
    db.create_table(
        "t",
        s.clone(),
        vec![Projection::super_projection("p", &s, &[0], &[0])],
    )
    .unwrap();
    let per = rows.len().div_ceil(batches.max(1));
    for chunk in rows.chunks(per.max(1)) {
        db.copy_into("t", chunk.to_vec()).unwrap();
    }
}

/// The scan pipeline with everything forced off: one worker, no
/// coalescing, early materialization, decode-first blocks, per-miss
/// depot fetches.
fn serial_cfg(nodes: usize, shards: usize) -> EonConfig {
    EonConfig::new(nodes, shards)
        .exec_slots(4)
        .scan_workers(1)
        .scan_coalesce_gap(None)
        .scan_late_materialization(false)
        .scan_decode_first(true)
        .depot_single_flight(false)
}

/// Everything on, with an aggressive worker count.
fn pipelined_cfg(nodes: usize, shards: usize, gap: Option<u64>) -> EonConfig {
    EonConfig::new(nodes, shards)
        .exec_slots(8)
        .scan_workers(5)
        .scan_coalesce_gap(gap)
        .scan_late_materialization(true)
        .depot_single_flight(true)
}

fn window_pred(n: usize) -> Predicate {
    let lo = (n / 5) as i64;
    let hi = (4 * n / 5) as i64;
    Predicate::and(vec![
        Predicate::cmp(0, CmpOp::Ge, lo),
        Predicate::cmp(0, CmpOp::Lt, hi),
        Predicate::Or(vec![Predicate::cmp(1, CmpOp::Le, 4i64), Predicate::IsNull(2)]),
    ])
}

fn plans(n: usize) -> Vec<Plan> {
    vec![
        // Full scan, fully sorted so multi-node answers compare as sets.
        Plan::scan(ScanSpec::new("t")).sort(vec![
            SortKey::asc(0),
            SortKey::asc(1),
            SortKey::asc(2),
        ]),
        // Predicate scan exercising stats pruning, selection vectors,
        // and null semantics.
        Plan::scan(ScanSpec::new("t").predicate(window_pred(n))).sort(vec![SortKey::asc(0)]),
        // Grouped aggregate over the predicate scan (partials merge at
        // the coordinator, so per-node scan output feeds a reduction).
        Plan::scan(ScanSpec::new("t").predicate(window_pred(n)))
            .aggregate(
                vec![1],
                vec![AggSpec::sum(Expr::col(2)), AggSpec::count_star()],
            )
            .sort(vec![SortKey::asc(0)]),
    ]
}

proptest! {
    /// Serial and fully-pipelined scans must agree on every answer, in
    /// Normal, Bypass, and crunch sessions, across seeds, row counts,
    /// coalescing gaps (off / adjacent-only / everything-bridges), and
    /// forced block encodings (heuristic / Plain / RLE / Dict / Delta).
    /// The serial side runs decode-first, so this is also the
    /// compression-aware-execution A/B.
    #[test]
    fn pipelined_scan_matches_serial(seed in 0u64..1_000_000, n in 100usize..400) {
        let gap = match seed % 3 {
            0 => None,
            1 => Some(0),
            _ => Some(1 << 20),
        };
        let force = match seed % 5 {
            0 => None,
            1 => Some(Encoding::Plain),
            2 => Some(Encoding::Rle),
            3 => Some(Encoding::Dict),
            _ => Some(Encoding::Delta),
        };
        let rows = gen_rows(seed, n);
        // 5 nodes over 2 shards so crunch sessions genuinely split
        // shards across extra participants.
        let serial =
            EonDb::create(Arc::new(MemFs::new()), serial_cfg(5, 2).force_encoding(force)).unwrap();
        let pipelined = EonDb::create(
            Arc::new(MemFs::new()),
            pipelined_cfg(5, 2, gap).force_encoding(force),
        )
        .unwrap();
        load(&serial, &rows, 2);
        load(&pipelined, &rows, 2);

        let sessions = [
            SessionOpts::default(),
            SessionOpts { bypass_cache: true, ..Default::default() },
            SessionOpts { crunch: true, ..Default::default() },
        ];
        for plan in &plans(n) {
            for opts in &sessions {
                let a = serial.query_with(plan, opts).unwrap();
                let b = pipelined.query_with(plan, opts).unwrap();
                prop_assert_eq!(&a, &b, "seed {} gap {:?} opts {:?}", seed, gap, opts);
            }
        }
    }
}

/// On one node the scan fans containers across pool workers but must
/// emit them back in container order: the *unsorted* output of a
/// parallel scan is byte-for-byte the serial output.
#[test]
fn parallel_merge_preserves_container_order() {
    let rows = gen_rows(0xbeef, 3_000);
    let serial = EonDb::create(Arc::new(MemFs::new()), serial_cfg(1, 1)).unwrap();
    // Force RLE on the parallel side: encoded-view blocks must not
    // perturb the pool's container-order merge either.
    let parallel = EonDb::create(
        Arc::new(MemFs::new()),
        pipelined_cfg(1, 1, Some(64 << 10)).force_encoding(Some(Encoding::Rle)),
    )
    .unwrap();
    // Several batches so one shard holds several containers — the
    // pool's fan-out/merge has real interleaving to get wrong.
    load(&serial, &rows, 4);
    load(&parallel, &rows, 4);

    let unsorted = [
        Plan::scan(ScanSpec::new("t")),
        Plan::scan(ScanSpec::new("t").predicate(window_pred(3_000))),
    ];
    let sessions = [
        SessionOpts::default(),
        SessionOpts { bypass_cache: true, ..Default::default() },
    ];
    for plan in &unsorted {
        for opts in &sessions {
            let a = serial.query_with(plan, opts).unwrap();
            let b = parallel.query_with(plan, opts).unwrap();
            assert_eq!(a, b, "unsorted scan output diverged (opts {opts:?})");
        }
    }
}

/// A participant dying mid-query under the parallel pipeline is
/// absorbed by coordinator failover, and answers still match a healthy
/// serial cluster — before and after the crash fires. The wounded
/// cluster stores force-RLE containers served as encoded views, so
/// failover equivalence holds with compression-aware execution on.
#[test]
fn armed_worker_crash_does_not_change_answers() {
    let rows = gen_rows(0xfa11, 2_000);
    let healthy = EonDb::create(Arc::new(MemFs::new()), serial_cfg(3, 3)).unwrap();
    let wounded = EonDb::create(
        Arc::new(MemFs::new()),
        pipelined_cfg(3, 3, Some(64 << 10))
            .force_encoding(Some(Encoding::Rle))
            .faults(FaultPlan::at(site::QUERY_WORKER_LOCAL, 0)),
    )
    .unwrap();
    load(&healthy, &rows, 2);
    load(&wounded, &rows, 2);

    for plan in &plans(2_000) {
        // First query may fire the crash (killing one participant);
        // the second runs on the survivors. Both must match.
        for _ in 0..2 {
            let a = healthy.query(plan).unwrap();
            let b = wounded.query(plan).unwrap();
            assert_eq!(a, b, "answers diverged around a mid-query crash");
        }
    }
}

/// N threads missing the same depot key at once must cost exactly one
/// S3 GET: one leader fills, every other thread is served from that
/// fill, and the registry's counters agree with `CacheStats` exactly.
#[test]
fn concurrent_same_key_misses_issue_one_s3_get() {
    const THREADS: usize = 8;
    let registry = Registry::new();
    let s3 = Arc::new(S3SimFs::with_metrics(
        S3Config {
            // A wide fill window so every thread is in flight together.
            request_latency: Duration::from_millis(20),
            bytes_per_micro: 0,
            ..S3Config::instant()
        },
        &registry,
    ));
    let shared: SharedFs = s3.clone();
    shared
        .write("data/obj", bytes::Bytes::from(vec![7u8; 64 << 10]))
        .unwrap();
    let cache = mem_cache(shared.clone(), 1 << 20);
    cache.attach_metrics(&registry, "n0");

    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                barrier.wait();
                let data = cache.read_with("data/obj", CacheMode::Normal).unwrap();
                assert_eq!(data.len(), 64 << 10);
            });
        }
    });

    assert_eq!(s3.stats().gets, 1, "single-flight must dedup to one GET");
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, (THREADS - 1) as u64);
    assert_eq!(stats.bypasses, 0);
    assert_eq!(
        stats.hits + stats.misses + stats.bypasses,
        THREADS as u64,
        "exact accounting: every read is a hit, miss, or bypass"
    );
    assert!(
        stats.singleflight_waits >= 1,
        "with a 20ms fill, at least one thread must have joined the in-flight fill"
    );
    assert!(stats.singleflight_waits <= (THREADS - 1) as u64);

    // Registry parity: the depot's counters are the same numbers.
    let snap = registry.snapshot();
    let metric = |name: &str| {
        snap.get(&format!("{name}{{node=\"n0\",subsystem=\"depot\"}}"))
            .and_then(|v| v.as_u64())
            .unwrap_or(u64::MAX)
    };
    assert_eq!(metric("depot_hits_total"), stats.hits);
    assert_eq!(metric("depot_misses_total"), stats.misses);
    assert_eq!(metric("depot_singleflight_waits_total"), stats.singleflight_waits);

    // Contrast: with single-flight disabled the same stampede fetches
    // once per thread.
    let s3b = Arc::new(S3SimFs::new(S3Config {
        request_latency: Duration::from_millis(20),
        bytes_per_micro: 0,
        ..S3Config::instant()
    }));
    let sharedb: SharedFs = s3b.clone();
    sharedb
        .write("data/obj", bytes::Bytes::from(vec![7u8; 64 << 10]))
        .unwrap();
    let cacheb = mem_cache(sharedb, 1 << 20);
    cacheb.set_single_flight(false);
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                barrier.wait();
                cacheb.read_with("data/obj", CacheMode::Normal).unwrap();
            });
        }
    });
    assert!(
        s3b.stats().gets > 1,
        "without single-flight, a barrier-started stampede over a 20ms fill must duplicate GETs"
    );
    assert_eq!(cacheb.stats().singleflight_waits, 0);
}
