//! Elastic throughput scaling and workload isolation (paper §4.2–§4.3,
//! §6.4): grow a cluster under a dashboard workload, watch participant
//! selection spread over the new nodes, and isolate an ad-hoc workload
//! into its own subcluster.
//!
//! ```sh
//! cargo run --release --example dashboard_scaling
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use eon_db::core::{EonConfig, EonDb, SessionOpts};
use eon_db::storage::MemFs;
use eon_db::types::NodeId;
use eon_db::workload::dashboard;

fn selection_histogram(db: &EonDb, opts: &SessionOpts, sessions: usize) -> HashMap<NodeId, usize> {
    let mut counts = HashMap::new();
    for _ in 0..sessions {
        for (node, _, _) in db.participation(opts).unwrap().workers {
            *counts.entry(node).or_insert(0) += 1;
        }
    }
    counts
}

fn print_histogram(label: &str, counts: &HashMap<NodeId, usize>) {
    let mut items: Vec<_> = counts.iter().collect();
    items.sort();
    print!("{label}: ");
    for (n, c) in items {
        print!("{n}={c} ");
    }
    println!();
}

fn main() -> eon_db::types::Result<()> {
    let data = dashboard::generate(20_000, 7);
    let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(3, 3))?;
    dashboard::load_eon(&db, &data)?;
    let plan = dashboard::short_query(10_000);

    println!("top categories:");
    for row in db.query(&plan)? {
        println!("  {} / {}: revenue={} events={}", row[0], row[1], row[2], row[3]);
    }

    // Sessions on 3 nodes: all three serve.
    print_histogram(
        "\nshard-serving selections on 3 nodes",
        &selection_histogram(&db, &SessionOpts::default(), 60),
    );

    // Scale out to 6 nodes — no data moves (§6.4), and the rebalance
    // gives the newcomers subscriptions so sessions spread onto them.
    for _ in 0..3 {
        let id = db.add_node()?;
        println!("added {id}");
    }
    print_histogram(
        "selections on 6 nodes (same data, wider spread)",
        &selection_histogram(&db, &SessionOpts::default(), 60),
    );

    // Subcluster isolation (§4.3): nodes 4 and 5 become subcluster 9
    // ("ad-hoc"); sessions tagged for it stay off the dashboard nodes
    // whenever the subcluster can cover all shards.
    for id in [4u64, 5u64] {
        db.membership()
            .get(NodeId(id))
            .unwrap()
            .subcluster
            .store(9, std::sync::atomic::Ordering::Relaxed);
    }
    let adhoc = SessionOpts::subcluster(9);
    print_histogram(
        "selections for subcluster-9 sessions",
        &selection_histogram(&db, &adhoc, 60),
    );
    let answer = db.query_with(&plan, &adhoc)?;
    println!("ad-hoc session answer matches: {}", answer == db.query(&plan)?);

    // Crunch scaling (§4.4): a single query spread across every
    // subscriber of each shard.
    let crunch = SessionOpts {
        crunch: true,
        ..Default::default()
    };
    let crunched = db.query_with(&plan, &crunch)?;
    let plain = db.query(&plan)?;
    // Float sums differ in rounding by summation order; compare the
    // grouping keys and row counts.
    let keys = |rows: &Vec<Vec<eon_db::types::Value>>| -> Vec<(String, String)> {
        let mut k: Vec<(String, String)> = rows
            .iter()
            .map(|r| (r[0].to_string(), r[1].to_string()))
            .collect();
        k.sort();
        k
    };
    println!("crunch-scaled answer matches: {}", keys(&crunched) == keys(&plain));
    Ok(())
}
