//! Durability and revive (paper §3.5): a cluster loses every instance,
//! and a new cluster revives from nothing but shared storage —
//! truncating to the consensus version, refusing while the lease is
//! live, and stamping a fresh incarnation id.
//!
//! ```sh
//! cargo run --release --example cloud_revive
//! ```

use std::sync::Arc;

use eon_db::catalog::ClusterInfo;
use eon_db::columnar::Projection;
use eon_db::core::{EonConfig, EonDb};
use eon_db::exec::{AggSpec, Plan, ScanSpec};
use eon_db::storage::{MemFs, SharedFs};
use eon_db::types::{schema, Value};

fn count(db: &EonDb) -> i64 {
    let plan = Plan::scan(ScanSpec::new("events")).aggregate(vec![], vec![AggSpec::count_star()]);
    db.query(&plan).unwrap()[0][0].as_int().unwrap()
}

fn main() -> eon_db::types::Result<()> {
    let shared: SharedFs = Arc::new(MemFs::new());

    // --- life of the first cluster -------------------------------
    let db = EonDb::create(shared.clone(), EonConfig::new(3, 3))?;
    let s = schema![("id", Int), ("kind", Str)];
    db.create_table(
        "events",
        s.clone(),
        vec![Projection::super_projection("events_super", &s, &[0], &[0])],
    )?;
    db.copy_into(
        "events",
        (0..5_000).map(|i| vec![Value::Int(i), Value::Str("synced".into())]).collect(),
    )?;

    // Periodic metadata sync: uploads logs + checkpoints, computes the
    // consensus truncation version, writes cluster_info.json.
    let info = db.sync_metadata(1_000)?;
    println!(
        "synced: truncation={} incarnation={} lease_until={}ms",
        info.truncation_version, info.incarnation, info.lease_until_ms
    );

    // More data *after* the last sync: durable only on node-local
    // disks. A full-cluster loss will rewind past it.
    db.copy_into(
        "events",
        (9_000..9_500).map(|i| vec![Value::Int(i), Value::Str("unsynced".into())]).collect(),
    )?;
    println!("rows before the disaster: {}", count(&db));

    // --- catastrophe ---------------------------------------------
    drop(db); // every instance gone; only shared storage remains

    // Too early: the lease is still live (another cluster might be
    // running against this storage).
    match EonDb::revive(shared.clone(), EonConfig::new(3, 3), 2_000) {
        Err(e) => println!("revive at t=2s correctly refused: {e}"),
        Ok(_) => unreachable!("lease should block this"),
    }

    // After the lease expires, revive succeeds.
    let revived = EonDb::revive(shared.clone(), EonConfig::new(3, 3), 60_000)?;
    println!(
        "revived as incarnation {} with {} rows (unsynced tail truncated)",
        revived.incarnation(),
        count(&revived)
    );

    // The revive committed by replacing cluster_info.json.
    let new_info = ClusterInfo::read(shared.as_ref())?.unwrap();
    assert_eq!(new_info.incarnation, revived.incarnation());

    // And the revived cluster is fully operational.
    revived.copy_into(
        "events",
        (20_000..20_100).map(|i| vec![Value::Int(i), Value::Str("after-revive".into())]).collect(),
    )?;
    println!("rows after new load: {}", count(&revived));
    Ok(())
}
