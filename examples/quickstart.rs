//! Quickstart: create an Eon-mode database on (simulated) S3, create a
//! table, load data, and run queries — including with a node down.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use eon_db::columnar::pruning::CmpOp;
use eon_db::columnar::{Predicate, Projection};
use eon_db::core::{EonConfig, EonDb};
use eon_db::exec::{AggSpec, Expr, Plan, ScanSpec, SortKey};
use eon_db::storage::{S3Config, S3SimFs};
use eon_db::types::{schema, NodeId, Value};

fn main() -> eon_db::types::Result<()> {
    // Shared storage: the simulated S3 (latency + request-cost model).
    // Swap in `MemFs` for instant tests or `PosixFs` for a local dir.
    let s3 = Arc::new(S3SimFs::new(S3Config::default()));

    // A 3-node cluster over 3 segment shards, tolerating 1 node failure.
    let db = EonDb::create(s3, EonConfig::new(3, 3).k_safety(1))?;

    // CREATE TABLE sales … with a superprojection segmented by sale_id
    // and sorted by date (good for date-range pruning).
    let s = schema![("sale_id", Int), ("customer", Str), ("date", Date), ("price", Int)];
    db.create_table(
        "sales",
        s.clone(),
        vec![Projection::super_projection("sales_super", &s, &[2], &[0])],
    )?;

    // COPY 10k rows.
    let rows: Vec<Vec<Value>> = (0..10_000)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Str(format!("customer{}", i % 50)),
                eon_db::types::value::date(2018, 1 + (i % 12) as u32, 1 + (i % 28) as u32),
                Value::Int(10 + i % 90),
            ]
        })
        .collect();
    let loaded = db.copy_into("sales", rows)?;
    println!("loaded {loaded} rows");

    // Revenue per customer for Q1 2018, top 5. The date predicate is
    // pushed into the scan and prunes blocks via min/max metadata.
    let q1_start = eon_db::types::value::ymd_to_days(2018, 1, 1);
    let q2_start = eon_db::types::value::ymd_to_days(2018, 4, 1);
    let plan = Plan::scan(ScanSpec::new("sales").predicate(Predicate::And(vec![
        Predicate::cmp(2, CmpOp::Ge, Value::Date(q1_start)),
        Predicate::cmp(2, CmpOp::Lt, Value::Date(q2_start)),
    ])))
    .aggregate(vec![1], vec![AggSpec::sum(Expr::col(3)), AggSpec::count_star()])
    .sort(vec![SortKey::desc(1)])
    .limit(5);

    println!("\ntop customers, Q1 2018:");
    for row in db.query(&plan)? {
        println!("  {} revenue={} sales={}", row[0], row[1], row[2]);
    }

    // Kill a node: shards stay available through their other
    // subscribers — same answer, no repair step.
    db.kill_node(NodeId(1))?;
    let after = db.query(&plan)?;
    println!("\nnode1 killed; same top customer: {} (answer unchanged)", after[0][0]);

    // Restart it: catalog catch-up + peer cache warming.
    let warmed = db.restart_node(NodeId(1))?;
    println!("node1 restarted; {warmed} files warmed from a peer's cache");

    // What did all this cost on the simulated S3?
    let stats = db.shared().stats();
    println!(
        "\nS3 bill: {} requests, {} KiB up, {} KiB down, ${:.6}",
        stats.requests(),
        stats.bytes_written / 1024,
        stats.bytes_read / 1024,
        stats.cost_nanodollars as f64 / 1e9,
    );
    Ok(())
}
