//! SQL analytics end to end: the `eon-sql` front end compiling SELECT
//! statements against the live catalog, running distributed over the
//! cluster — including a Live Aggregate Projection answering a grouped
//! aggregation from pre-computed partials.
//!
//! ```sh
//! cargo run --release --example sql_analytics
//! ```

use std::sync::Arc;

use eon_db::columnar::{LapFunc, Projection};
use eon_db::core::{EonConfig, EonDb};
use eon_db::storage::MemFs;
use eon_db::types::{schema, Value};

fn show(db: &EonDb, sql: &str) {
    println!("\nsql> {sql}");
    match db.sql(sql) {
        Ok(rows) => {
            for row in rows.iter().take(8) {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("  {}", cells.join(" | "));
            }
            if rows.len() > 8 {
                println!("  … {} rows total", rows.len());
            }
        }
        Err(e) => println!("  error: {e}"),
    }
}

fn main() -> eon_db::types::Result<()> {
    let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(3, 3))?;

    // Star schema: orders fact + customers dimension, plus a Live
    // Aggregate Projection maintaining revenue per status.
    let c = schema![("cust_id", Int), ("name", Str), ("segment", Str)];
    db.create_table(
        "customers",
        c.clone(),
        vec![Projection::replicated("customers_rep", &c, &[0])],
    )?;
    let o = schema![("order_id", Int), ("cust_id", Int), ("status", Str), ("amount", Int)];
    db.create_table(
        "orders",
        o.clone(),
        vec![
            Projection::super_projection("orders_super", &o, &[0], &[0]),
            Projection::live_aggregate(
                "orders_by_status",
                &[2],
                vec![(LapFunc::Sum, 3), (LapFunc::CountStar, 0)],
            ),
        ],
    )?;

    db.copy_into(
        "customers",
        (0..100)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Str(format!("Customer#{i:03}")),
                    Value::Str(["BUILDING", "MACHINERY", "AUTOMOBILE"][(i % 3) as usize].into()),
                ]
            })
            .collect(),
    )?;
    for batch in 0..5i64 {
        db.copy_into(
            "orders",
            (0..2000)
                .map(|i| {
                    let id = batch * 2000 + i;
                    vec![
                        Value::Int(id),
                        Value::Int(id % 100),
                        Value::Str(["open", "shipped", "returned"][(id % 3) as usize].into()),
                        Value::Int(10 + id % 90),
                    ]
                })
                .collect(),
        )?;
    }

    show(&db, "SELECT COUNT(*) FROM orders");
    // This one is answered from the LAP: same SQL, ~9 pre-aggregated
    // rows read instead of 10k base rows.
    show(
        &db,
        "SELECT status, SUM(amount) AS revenue, COUNT(*) FROM orders \
         GROUP BY status ORDER BY revenue DESC",
    );
    show(
        &db,
        "SELECT c.segment, COUNT(*) AS orders, SUM(o.amount) AS revenue \
         FROM orders o JOIN customers c ON o.cust_id = c.cust_id \
         WHERE o.amount BETWEEN 20 AND 80 \
         GROUP BY c.segment HAVING orders > 10 \
         ORDER BY revenue DESC",
    );
    show(
        &db,
        "SELECT name, SUM(amount) AS spend FROM orders o \
         JOIN customers c ON o.cust_id = c.cust_id \
         WHERE c.segment = 'BUILDING' AND status <> 'returned' \
         GROUP BY name ORDER BY spend DESC LIMIT 5",
    );
    show(&db, "SELECT COUNT(DISTINCT cust_id) FROM orders WHERE status = 'open'");
    // Errors are legible.
    show(&db, "SELECT nope FROM orders");
    Ok(())
}
