//! IoT ingest scenario (the paper's Fig 11b motivation): many small
//! concurrent COPY statements, then the maintenance cycle — mergeout
//! compaction (§6.2), TTL deletes via delete vectors, metadata sync +
//! consensus truncation (§3.5), and safe file deletion (§6.5).
//!
//! ```sh
//! cargo run --release --example iot_ingest
//! ```

use std::sync::Arc;

use eon_db::columnar::pruning::CmpOp;
use eon_db::columnar::Predicate;
use eon_db::core::{EonConfig, EonDb};
use eon_db::exec::{AggSpec, Expr, Plan, ScanSpec, SortKey};
use eon_db::storage::MemFs;
use eon_db::workload::copyload;

fn containers(db: &EonDb) -> usize {
    db.snapshot().unwrap().containers.len()
}

fn main() -> eon_db::types::Result<()> {
    let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(3, 3))?;
    copyload::create_telemetry_table(&db)?;

    // 24 concurrent small loads from 8 "gateways".
    std::thread::scope(|scope| {
        for gw in 0..8u64 {
            let db = &db;
            scope.spawn(move || {
                for batch in 0..3u64 {
                    db.copy_into("telemetry", copyload::batch(400, gw, batch)).unwrap();
                }
            });
        }
    });
    println!("after ingest: {} ROS containers", containers(&db));

    // Mergeout: the per-shard coordinators compact the small containers
    // with the tiered-strata policy.
    let jobs = db.run_mergeout()?;
    println!("mergeout ran {jobs} jobs → {} containers", containers(&db));

    // TTL: delete the oldest half of the data (tombstones, not
    // rewrites).
    let stats_plan = Plan::scan(ScanSpec::new("telemetry")).aggregate(
        vec![],
        vec![AggSpec::count_star(), AggSpec::max(Expr::col(1))],
    );
    let stats = db.query(&stats_plan)?;
    let total = stats[0][0].as_int().unwrap();
    let max_ts = stats[0][1].as_int().unwrap();
    let deleted = db.delete_where("telemetry", &Predicate::cmp(1, CmpOp::Lt, max_ts / 2))?;
    println!("TTL deleted {deleted} of {total} rows (delete vectors, no rewrite)");

    // Mergeout purges the tombstoned rows physically.
    db.run_mergeout()?;
    let live: u64 = db.snapshot().unwrap().containers.values().map(|c| c.rows).sum();
    println!("after purge mergeout: {live} physical rows");

    // Maintenance: sync metadata (advances the consensus truncation
    // version, §3.5) and reap files whose references are gone (§6.5).
    db.sync_metadata(1_000)?;
    let reaped = db.reap_files()?;
    println!("reaped {} obsolete files from shared storage", reaped.len());

    // Hottest devices, still correct after all of the churn.
    let top = Plan::scan(ScanSpec::new("telemetry"))
        .aggregate(vec![0], vec![AggSpec::avg(Expr::col(3)), AggSpec::count_star()])
        .sort(vec![SortKey::desc(2)])
        .limit(3);
    println!("\nbusiest devices:");
    for row in db.query(&top)? {
        println!("  device {}: avg={:.1} readings={}", row[0], row[1].as_float().unwrap(), row[2]);
    }
    Ok(())
}
