//! Umbrella crate for the Eon-mode reproduction workspace.
//!
//! Re-exports the public API of every subsystem crate so that examples
//! and downstream users can depend on a single crate.

pub use eon_cache as cache;
pub use eon_catalog as catalog;
pub use eon_cluster as cluster;
pub use eon_columnar as columnar;
pub use eon_core as core;
pub use eon_enterprise as enterprise;
pub use eon_exec as exec;
pub use eon_shard as shard;
pub use eon_sql as sql;
pub use eon_storage as storage;
pub use eon_tm as tm;
pub use eon_types as types;
pub use eon_workload as workload;
