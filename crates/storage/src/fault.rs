//! Deterministic crash-point fault injection.
//!
//! The paper's operational stance is that a node can die at *any*
//! instant: mid-upload, between a file upload and the catalog commit,
//! halfway through a metadata sync, or during revive (§3.5, §4.1,
//! §6.5). Clean request failures (see [`crate::S3SimFs`]) cannot
//! produce those states — a request either fails before it happens or
//! succeeds entirely. Crash *sites* can: named hooks threaded through
//! every commit path, driven by a seeded [`FaultPlan`] that decides,
//! reproducibly, at which site (and for node-scoped sites, on which
//! node) the process "dies".
//!
//! A firing site returns [`EonError::FaultInjected`], which is **not**
//! transient — retry loops must not swallow a crash — so the failure
//! propagates out of the operation exactly where a real process death
//! would cut it off, leaving whatever partial state (orphaned uploads,
//! stale `cluster_info.json`, un-dropped mergeout inputs) the paper's
//! recovery machinery has to clean up. The chaos harness then
//! restarts/revives and checks the §3.5/§6.5 invariants.
//!
//! Plans are one-shot: once fired, a plan disarms, so recovery code
//! running after the "crash" does not crash again (a restarted process
//! is a new process).

use std::collections::BTreeMap;
use std::sync::Arc;

use eon_types::{EonError, Result};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Named crash sites. Adding a site means instrumenting a commit path
/// and adding it here so seeded plans and the coverage suite see it.
pub mod site {
    /// COPY: before any container is written (nothing uploaded yet).
    pub const LOAD_PRE_UPLOAD: &str = "load.pre_upload";
    /// COPY: before each individual container upload (hit per
    /// container; the plan's occurrence index picks which one).
    pub const LOAD_UPLOAD: &str = "load.upload";
    /// COPY: all files on shared storage, catalog commit not yet run —
    /// the classic orphaned-upload crash (§3.5: committed transactions
    /// never lose files *because* data lands before commit).
    pub const LOAD_PRE_COMMIT: &str = "load.pre_commit";
    /// DELETE: before each delete-vector upload.
    pub const DML_UPLOAD: &str = "dml.upload";
    /// DELETE: delete vectors uploaded, commit not yet run.
    pub const DML_PRE_COMMIT: &str = "dml.pre_commit";
    /// Mergeout: before the merged container is written.
    pub const MERGEOUT_PRE_WRITE: &str = "mergeout.pre_write";
    /// Mergeout: merged container uploaded, the Add+Drop commit not yet
    /// run — old containers still live, new file orphaned (§6.5).
    pub const MERGEOUT_PRE_COMMIT: &str = "mergeout.pre_commit";
    /// Catalog: before a checkpoint is written locally.
    pub const CKPT_PRE_WRITE: &str = "catalog.ckpt.pre_write";
    /// Catalog sync: before any file is uploaded to shared storage.
    pub const SYNC_PRE_UPLOAD: &str = "catalog.sync.pre_upload";
    /// Catalog sync: before each individual checkpoint/log upload
    /// (hit per file; crashes leave a partially synced interval).
    pub const SYNC_MID_UPLOAD: &str = "catalog.sync.mid_upload";
    /// Metadata sync: catalogs uploaded, `cluster_info.json` not yet
    /// rewritten — the consensus truncation is stale (§3.5).
    pub const SYNC_PRE_INFO_WRITE: &str = "sync.pre_info_write";
    /// Revive: lease checked, nothing recovered yet.
    pub const REVIVE_POST_LEASE: &str = "revive.post_lease";
    /// Revive: cluster rebuilt in memory, the committing
    /// `cluster_info.json` write not yet done (§3.5's revive commit
    /// point).
    pub const REVIVE_PRE_INFO_WRITE: &str = "revive.pre_info_write";
    /// Query: a participant dies during its local phase (§4.1). Node-
    /// scoped: seeded plans pick the victim node id.
    pub const QUERY_WORKER_LOCAL: &str = "query.worker.local";
    /// Query: a participant's worker thread *panics* during its local
    /// phase (a bug, not a process death). The join must contain it as
    /// a typed error so the coordinator fails over instead of the
    /// whole process aborting.
    pub const QUERY_WORKER_PANIC: &str = "query.worker.panic";

    // Commit-protocol sites. Deliberately NOT in [`SITES`]: the serial
    // coverage sweep (`every_named_site_crashes_and_recovers`) never
    // reaches the group-commit path, and `COMMIT_PEER_APPEND` models a
    // peer disk failure (classified as metadata divergence), not a
    // process death the generic recovery loop can retry through. The
    // group-commit chaos schedule arms them from its own list.

    /// Serial commit: a peer's durable `append_local` fails after it
    /// applied the record in memory — §3.4 metadata divergence.
    /// Node-scoped: the plan picks the failing peer.
    pub const COMMIT_PEER_APPEND: &str = "commit.peer_append";
    /// Group commit: the batch leader dies after committing the batch
    /// in memory, before the coordinator's durable batch append —
    /// nothing in the batch is durable.
    pub const COMMIT_LEADER_APPEND: &str = "commit.leader_append";
    /// Group commit: the leader dies mid-distribution, after the
    /// coordinator's durable append but before this peer's — the batch
    /// is durable, the peer catches up on restart (§3.3). Node-scoped.
    pub const COMMIT_MID_DISTRIBUTION: &str = "commit.mid_distribution";
    /// Group commit: the leader dies after every durable append,
    /// before waking the parked members — the batch is fully durable
    /// but every member observes a crash.
    pub const COMMIT_POST_APPEND: &str = "commit.post_append";
}

/// Every named crash site, for seeded plans and coverage sweeps.
pub const SITES: &[&str] = &[
    site::LOAD_PRE_UPLOAD,
    site::LOAD_UPLOAD,
    site::LOAD_PRE_COMMIT,
    site::DML_UPLOAD,
    site::DML_PRE_COMMIT,
    site::MERGEOUT_PRE_WRITE,
    site::MERGEOUT_PRE_COMMIT,
    site::CKPT_PRE_WRITE,
    site::SYNC_PRE_UPLOAD,
    site::SYNC_MID_UPLOAD,
    site::SYNC_PRE_INFO_WRITE,
    site::REVIVE_POST_LEASE,
    site::REVIVE_PRE_INFO_WRITE,
    site::QUERY_WORKER_LOCAL,
    site::QUERY_WORKER_PANIC,
];

/// Shared handle to a fault plan. Cloned into every layer that hosts a
/// crash site; an inert plan costs one mutex lock per site hit.
pub type FaultInjector = Arc<FaultPlan>;

/// A crash that fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    pub site: String,
    /// Which occurrence of the site fired (0-based).
    pub occurrence: u64,
    /// Node id for node-scoped sites, if the hit carried one.
    pub node: Option<u64>,
}

#[derive(Debug, Clone)]
struct Armed {
    site: String,
    /// Fire on the nth (0-based) occurrence of the site.
    nth: u64,
    /// For node-scoped hits: only this node dies. `None` = any node.
    node: Option<u64>,
}

#[derive(Default)]
struct Inner {
    armed: Option<Armed>,
    /// Occurrence counters, keyed by site (node-scoped hits count per
    /// `site@node` so the victim's occurrence index is deterministic
    /// even when several workers hit the site concurrently).
    counts: BTreeMap<String, u64>,
    fired: Vec<FaultEvent>,
}

/// A deterministic, one-shot crash schedule.
pub struct FaultPlan {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock();
        f.debug_struct("FaultPlan")
            .field("armed", &g.armed)
            .field("fired", &g.fired)
            .finish()
    }
}

impl FaultPlan {
    /// A plan that never fires. The default everywhere.
    pub fn inert() -> FaultInjector {
        Arc::new(FaultPlan {
            inner: Mutex::new(Inner::default()),
        })
    }

    /// Crash on the `nth` (0-based) occurrence of `site`, any node.
    pub fn at(site: &str, nth: u64) -> FaultInjector {
        Self::armed(site, nth, None)
    }

    /// Crash on the `nth` occurrence of `site` on node `node` (only
    /// meaningful for node-scoped sites; others ignore the filter).
    pub fn at_node(site: &str, nth: u64, node: u64) -> FaultInjector {
        Self::armed(site, nth, Some(node))
    }

    fn armed(site: &str, nth: u64, node: Option<u64>) -> FaultInjector {
        Arc::new(FaultPlan {
            inner: Mutex::new(Inner {
                armed: Some(Armed {
                    site: site.to_owned(),
                    nth,
                    node,
                }),
                ..Inner::default()
            }),
        })
    }

    /// A seeded plan: deterministically pick one site from `sites`, an
    /// occurrence index, and (for node-scoped sites) a victim node in
    /// `0..nodes`. Same seed ⇒ same crash schedule, always.
    pub fn seeded(seed: u64, sites: &[&str], nodes: u64) -> FaultInjector {
        let mut rng = StdRng::seed_from_u64(seed);
        let site = sites[rng.gen_range(0..sites.len())];
        let nth = rng.gen_range(0..3u64);
        let node = rng.gen_range(0..nodes.max(1));
        Self::armed(site, nth, Some(node))
    }

    /// Re-arm a (shared) plan in place: lets a test bring a database up
    /// quietly and then schedule a crash for the operation under test.
    /// Occurrence counters reset, so `nth` counts from this arming.
    pub fn rearm(&self, site: &str, nth: u64, node: Option<u64>) {
        let mut g = self.inner.lock();
        g.armed = Some(Armed {
            site: site.to_owned(),
            nth,
            node,
        });
        g.counts.clear();
    }

    /// Whether this plan can still fire.
    pub fn is_armed(&self) -> bool {
        self.inner.lock().armed.is_some()
    }

    /// The site this plan targets, if still armed.
    pub fn armed_site(&self) -> Option<String> {
        self.inner.lock().armed.as_ref().map(|a| a.site.clone())
    }

    /// Crashes that fired so far, in order.
    pub fn fired(&self) -> Vec<FaultEvent> {
        self.inner.lock().fired.clone()
    }

    /// Occurrence counters per site (node-scoped hits count under
    /// `site@node`). Test/coverage introspection.
    pub fn site_counts(&self) -> BTreeMap<String, u64> {
        self.inner.lock().counts.clone()
    }

    /// Pass a crash site with no node context. Returns
    /// [`EonError::FaultInjected`] exactly when the plan says this
    /// occurrence is where the process dies.
    pub fn hit(&self, site: &str) -> Result<()> {
        self.hit_inner(site, None)
    }

    /// Pass a node-scoped crash site. A plan armed with a node filter
    /// only fires on the matching node, so the victim is deterministic
    /// even when many workers pass the site concurrently.
    pub fn hit_node(&self, site: &str, node: u64) -> Result<()> {
        self.hit_inner(site, Some(node))
    }

    fn hit_inner(&self, site: &str, node: Option<u64>) -> Result<()> {
        let mut g = self.inner.lock();
        let key = match node {
            Some(n) => format!("{site}@{n}"),
            None => site.to_owned(),
        };
        let count = g.counts.entry(key).or_insert(0);
        let occurrence = *count;
        *count += 1;
        let fires = match &g.armed {
            Some(a) => {
                a.site == site
                    && occurrence == a.nth
                    && match (a.node, node) {
                        // A node filter only constrains node-scoped hits.
                        (Some(want), Some(got)) => want == got,
                        _ => true,
                    }
            }
            None => false,
        };
        if fires {
            g.armed = None; // one-shot: the restarted process is new
            g.fired.push(FaultEvent {
                site: site.to_owned(),
                occurrence,
                node,
            });
            return Err(EonError::FaultInjected(site.to_owned()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires() {
        let p = FaultPlan::inert();
        for _ in 0..100 {
            p.hit(site::LOAD_PRE_COMMIT).unwrap();
        }
        assert!(p.fired().is_empty());
        assert!(!p.is_armed());
    }

    #[test]
    fn fires_on_nth_occurrence_then_disarms() {
        let p = FaultPlan::at(site::LOAD_UPLOAD, 2);
        p.hit(site::LOAD_UPLOAD).unwrap(); // 0
        p.hit(site::LOAD_PRE_COMMIT).unwrap(); // other site
        p.hit(site::LOAD_UPLOAD).unwrap(); // 1
        let err = p.hit(site::LOAD_UPLOAD).unwrap_err(); // 2 → fire
        assert!(matches!(err, EonError::FaultInjected(_)));
        assert!(!err.is_transient(), "crashes must not be retried away");
        // Disarmed: recovery re-runs the same path without crashing.
        p.hit(site::LOAD_UPLOAD).unwrap();
        assert_eq!(p.fired().len(), 1);
        assert_eq!(p.fired()[0].occurrence, 2);
    }

    #[test]
    fn node_filter_picks_the_victim() {
        let p = FaultPlan::at_node(site::QUERY_WORKER_LOCAL, 0, 2);
        p.hit_node(site::QUERY_WORKER_LOCAL, 0).unwrap();
        p.hit_node(site::QUERY_WORKER_LOCAL, 1).unwrap();
        assert!(p.hit_node(site::QUERY_WORKER_LOCAL, 2).is_err());
        assert_eq!(p.fired()[0].node, Some(2));
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        for seed in 0..50u64 {
            let a = FaultPlan::seeded(seed, SITES, 3);
            let b = FaultPlan::seeded(seed, SITES, 3);
            assert_eq!(a.armed_site(), b.armed_site(), "seed {seed}");
        }
        // Different seeds cover more than one site.
        let distinct: std::collections::HashSet<_> = (0..50u64)
            .filter_map(|s| FaultPlan::seeded(s, SITES, 3).armed_site())
            .collect();
        assert!(distinct.len() > 3, "seed sweep stuck on {distinct:?}");
    }

    #[test]
    fn node_scoped_counts_are_per_node() {
        let p = FaultPlan::at_node(site::QUERY_WORKER_LOCAL, 1, 0);
        // Node 1 hitting twice must not advance node 0's counter.
        p.hit_node(site::QUERY_WORKER_LOCAL, 1).unwrap();
        p.hit_node(site::QUERY_WORKER_LOCAL, 1).unwrap();
        p.hit_node(site::QUERY_WORKER_LOCAL, 0).unwrap(); // occurrence 0
        assert!(p.hit_node(site::QUERY_WORKER_LOCAL, 0).is_err()); // 1 → fire
    }
}
