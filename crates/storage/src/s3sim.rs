//! A simulated Amazon S3 (substitution for the paper's real S3 backend;
//! see DESIGN.md §1).
//!
//! Models the properties §5 says matter:
//!
//! * **Latency** — every request pays a time-to-first-byte, and
//!   transfers pay a bandwidth cost; both are injected as real (but
//!   scaled-down) sleeps so concurrency behaves like it would against a
//!   remote service.
//! * **Cost** — GET/PUT/LIST/DELETE requests accumulate nano-dollar
//!   charges using the S3 price card shape (PUT/LIST ≫ GET).
//! * **Fallibility** — "any filesystem access can (and will) fail":
//!   a seeded RNG injects transient `Storage` errors and `Throttled`
//!   responses at configurable rates; callers must use the §5.3 retry
//!   loop ([`crate::with_retry`]).
//! * **API shape** — whole-object writes, no rename/append, list by
//!   prefix, idempotent delete. Objects are immutable once written in
//!   the sense Vertica relies on: the engine never overwrites, and the
//!   simulator can be configured to reject overwrites to verify that.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use eon_obs::{Counter, Registry};
use eon_types::{EonError, Result};
use parking_lot::Mutex;

use crate::fs::{FileSystem, FsStats, SelectEngine};
use crate::mem::MemFs;

/// Tuning knobs for the simulator.
#[derive(Debug, Clone)]
pub struct S3Config {
    /// Time-to-first-byte charged to every request.
    pub request_latency: Duration,
    /// Modelled transfer bandwidth in bytes per microsecond
    /// (e.g. 100 = 100 MB/s). 0 disables the bandwidth charge.
    pub bytes_per_micro: u64,
    /// Probability a request fails with a transient `Storage` error.
    pub fail_rate: f64,
    /// Probability a request is throttled (`EonError::Throttled`).
    pub throttle_rate: f64,
    /// Probability a PUT or DELETE is **applied but reports an error**
    /// — the response is lost in flight, so the caller cannot tell a
    /// failed request from a successful one (the ambiguous outcome the
    /// §5.3 idempotent-retry assumption exists for). The error is
    /// transient, so retry loops re-issue the request; correctness then
    /// rests on PUT-same-bytes and DELETE being idempotent.
    pub ambiguous_rate: f64,
    /// Reject PUTs to keys that already exist. Vertica never overwrites
    /// data files (§5.2), so enabling this in tests catches bugs; it is
    /// off by default because `cluster_info.json` (§3.5) *is* replaced.
    pub reject_overwrite: bool,
    /// RNG seed for failure injection, making runs reproducible.
    pub seed: u64,
    /// Nano-dollar price per GET request.
    pub get_price: u64,
    /// Nano-dollar price per PUT request.
    pub put_price: u64,
    /// Nano-dollar price per LIST request.
    pub list_price: u64,
    /// Nano-dollar price per SELECT request (same order as GET).
    pub select_price: u64,
    /// Nano-dollar price per MiB *scanned* by a SELECT — the dominant
    /// charge; mirrors S3 Select's $0.002/GB-scanned axis.
    pub select_scan_price_per_mib: u64,
    /// Nano-dollar price per MiB *returned* by a SELECT — cheaper than
    /// scanning ($0.0007/GB returned), which is why selective pushdown
    /// wins on cost as well as latency.
    pub select_return_price_per_mib: u64,
}

impl Default for S3Config {
    fn default() -> Self {
        S3Config {
            // Scaled-down S3: real S3 TTFB is ~10-50ms; we charge 2ms so
            // figure-reproduction runs finish quickly while keeping the
            // local-vs-remote gap that drives Fig 10's "Eon on S3" bars.
            request_latency: Duration::from_micros(2000),
            bytes_per_micro: 100, // ~100 MB/s per stream
            fail_rate: 0.0,
            throttle_rate: 0.0,
            ambiguous_rate: 0.0,
            reject_overwrite: false,
            seed: 0x5e_ed,
            // S3 price card shape: GET $0.4/1M, PUT+LIST $5/1M.
            get_price: 400,
            put_price: 5_000,
            list_price: 5_000,
            // SELECT: per-request like GET, plus the scanned/returned
            // byte axes ($0.002/GB scanned, $0.0007/GB returned).
            select_price: 400,
            select_scan_price_per_mib: 2_000,
            select_return_price_per_mib: 700,
        }
    }
}

impl S3Config {
    /// A configuration with zero injected latency, for unit tests of
    /// higher layers that don't measure time.
    pub fn instant() -> Self {
        S3Config {
            request_latency: Duration::ZERO,
            bytes_per_micro: 0,
            ..Default::default()
        }
    }

    /// Instant but with the given failure/throttle rates.
    pub fn flaky(fail_rate: f64, throttle_rate: f64, seed: u64) -> Self {
        S3Config {
            fail_rate,
            throttle_rate,
            seed,
            ..Self::instant()
        }
    }

    /// Instant but with the given ambiguous-outcome rate: PUT/DELETE
    /// apply, then report a (transient) error.
    pub fn ambiguous(ambiguous_rate: f64, seed: u64) -> Self {
        S3Config {
            ambiguous_rate,
            seed,
            ..Self::instant()
        }
    }
}

/// splitmix64 finalizer — turns a hash into well-mixed dice bits.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Registry handles for the simulator (DESIGN.md "Observability").
/// Always present; [`S3SimFs::new`] wires a private registry,
/// [`S3SimFs::with_metrics`] the shared one.
#[derive(Clone)]
struct S3Metrics {
    get: Arc<Counter>,
    put: Arc<Counter>,
    list: Arc<Counter>,
    delete: Arc<Counter>,
    select: Arc<Counter>,
    /// Bytes a SELECT request scanned inside the store vs bytes it
    /// shipped back — the two pricing axes, tracked separately so the
    /// pushdown-vs-GET tradeoff is measurable from the registry.
    select_scanned: Arc<Counter>,
    select_returned: Arc<Counter>,
    cost: Arc<Counter>,
    fail: Arc<Counter>,
    throttle: Arc<Counter>,
    ambiguous: Arc<Counter>,
    brownout: Arc<Counter>,
}

impl S3Metrics {
    fn register(registry: &Registry) -> Self {
        let verb = |v| registry.counter("s3_requests_total", &[("subsystem", "s3"), ("verb", v)]);
        let kind =
            |k| registry.counter("s3_faults_injected_total", &[("subsystem", "s3"), ("kind", k)]);
        S3Metrics {
            get: verb("get"),
            put: verb("put"),
            list: verb("list"),
            delete: verb("delete"),
            select: verb("select"),
            select_scanned: registry
                .counter("s3_select_scanned_bytes_total", &[("subsystem", "s3")]),
            select_returned: registry
                .counter("s3_select_returned_bytes_total", &[("subsystem", "s3")]),
            cost: registry.counter("s3_cost_nanodollars_total", &[("subsystem", "s3")]),
            fail: kind("fail"),
            throttle: kind("throttle"),
            ambiguous: kind("ambiguous"),
            brownout: kind("brownout"),
        }
    }

    fn verb(&self, verb: &'static str) -> &Counter {
        match verb {
            "get" => &self.get,
            "put" => &self.put,
            "delete" => &self.delete,
            "select" => &self.select,
            _ => &self.list,
        }
    }
}

/// The simulated object store. Internally delegates storage to
/// [`MemFs`]; this type adds the latency/cost/failure model.
///
/// Fault injection is **keyed-hash dice**, not a shared sequential RNG:
/// each roll is a pure function of (seed, verb, path, per-key attempt
/// number), so the multiset of injected faults does not depend on how
/// parallel workers interleave their requests. That is what makes
/// same-seed metric totals byte-identical across runs (the chaos
/// determinism tests rely on it).
pub struct S3SimFs {
    store: MemFs,
    config: S3Config,
    /// Per-(verb, path) request sequence numbers feeding the dice.
    attempts: Mutex<HashMap<(&'static str, String), u64>>,
    cost: Mutex<u64>,
    metrics: S3Metrics,
    /// Brownout switch (DESIGN.md "Failure detection & degraded
    /// modes"): while set, **every** request fails with a transient
    /// `Storage` error after paying its latency — the store is
    /// reachable but serving nothing, the §5.3 scenario the circuit
    /// breaker and depot-only read mode exist for.
    brownout: AtomicBool,
    /// The compute engine behind the `select` verb. Injected from above
    /// (the engine understands the ROS container format, which this
    /// crate does not); `None` means SELECT is unsupported and callers
    /// fall back to plain GETs.
    select_engine: Mutex<Option<Arc<dyn SelectEngine>>>,
}

impl S3SimFs {
    pub fn new(config: S3Config) -> Self {
        Self::with_metrics(config, &Registry::new())
    }

    /// A simulator whose request/cost/fault counters land in `registry`.
    pub fn with_metrics(config: S3Config, registry: &Registry) -> Self {
        S3SimFs {
            store: MemFs::new(),
            config,
            attempts: Mutex::new(HashMap::new()),
            cost: Mutex::new(0),
            metrics: S3Metrics::register(registry),
            brownout: AtomicBool::new(false),
            select_engine: Mutex::new(None),
        }
    }

    pub fn with_defaults() -> Self {
        Self::new(S3Config::default())
    }

    pub fn config(&self) -> &S3Config {
        &self.config
    }

    /// Toggle a simulated brownout: while on, every request fails with
    /// a transient `Storage` error (after paying its latency charge).
    pub fn set_brownout(&self, on: bool) {
        self.brownout.store(on, Ordering::SeqCst);
    }

    pub fn brownout(&self) -> bool {
        self.brownout.load(Ordering::SeqCst)
    }

    /// Uniform [0, 1) roll keyed by (seed, salt, verb, path, attempt).
    fn unit_roll(&self, verb: &'static str, path: &str, attempt: u64, salt: u64) -> f64 {
        let mut h = DefaultHasher::new();
        (self.config.seed, salt, verb, path, attempt).hash(&mut h);
        let bits = mix64(h.finish());
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }

    fn next_attempt(&self, verb: &'static str, path: &str) -> u64 {
        let mut g = self.attempts.lock();
        let n = g.entry((verb, path.to_string())).or_insert(0);
        let attempt = *n;
        *n += 1;
        attempt
    }

    /// Charge the per-request latency plus a bandwidth charge for
    /// `transfer` bytes, then roll the failure dice. Returns this
    /// request's attempt number for the ambiguous-outcome roll.
    fn request(&self, verb: &'static str, path: &str, transfer: usize, price: u64) -> Result<u64> {
        if std::env::var_os("EON_S3_TRACE").is_some() {
            eprintln!("s3 {verb} {path} ({transfer}B)");
        }
        let mut delay = self.config.request_latency;
        if let Some(per_byte) = (transfer as u64).checked_div(self.config.bytes_per_micro) {
            delay += Duration::from_micros(per_byte);
        }
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        *self.cost.lock() += price;
        self.metrics.verb(verb).inc();
        self.metrics.cost.add(price);
        if self.brownout.load(Ordering::SeqCst) {
            self.metrics.brownout.inc();
            return Err(EonError::Storage(format!("simulated S3 brownout: {verb} {path}")));
        }
        let attempt = self.next_attempt(verb, path);
        let roll = self.unit_roll(verb, path, attempt, 0);
        if roll < self.config.throttle_rate {
            self.metrics.throttle.inc();
            return Err(EonError::Throttled);
        }
        if roll < self.config.throttle_rate + self.config.fail_rate {
            self.metrics.fail.inc();
            return Err(EonError::Storage("simulated S3 internal error".into()));
        }
        Ok(attempt)
    }

    /// Roll the ambiguous-outcome dice *after* a mutation has been
    /// applied: true means "eat the response" — the caller sees a
    /// transient error even though the store changed.
    fn ambiguous_roll(&self, verb: &'static str, path: &str, attempt: u64) -> bool {
        if self.config.ambiguous_rate <= 0.0 {
            return false;
        }
        let fired = self.unit_roll(verb, path, attempt, 1) < self.config.ambiguous_rate;
        if fired {
            self.metrics.ambiguous.inc();
        }
        fired
    }
}

impl FileSystem for S3SimFs {
    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        let attempt = self.request("put", path, data.len(), self.config.put_price)?;
        if self.config.reject_overwrite && self.store.exists(path)? {
            // An identical re-PUT is the idempotent retry of an
            // ambiguous outcome, not an overwrite — only *different*
            // bytes violate immutability (§5.2). Terminal
            // (`PreconditionFailed`): retrying an invariant violation
            // can never succeed, so it must not burn backoff budget or
            // trip the circuit breaker.
            if self.store.read(path)? != data {
                return Err(EonError::PreconditionFailed(format!(
                    "overwrite of immutable object {path}"
                )));
            }
        }
        self.store.write(path, data)?;
        if self.ambiguous_roll("put", path, attempt) {
            return Err(EonError::Storage(format!(
                "ambiguous outcome: PUT {path} applied but response lost"
            )));
        }
        Ok(())
    }

    fn read(&self, path: &str) -> Result<Bytes> {
        // Probe the size first (O(log n) on the backing MemFs, not a
        // keyspace scan) so the bandwidth charge reflects the transfer;
        // a miss still pays the request latency.
        let transfer = self.store.size(path).unwrap_or(0) as usize;
        self.request("get", path, transfer, self.config.get_price)?;
        self.store.read(path)
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        self.request("get", path, len as usize, self.config.get_price)?;
        // Delegate to the store's ranged read so `FsStats` bills the
        // range served, not the whole object.
        self.store.read_range(path, offset, len)
    }

    fn size(&self, path: &str) -> Result<u64> {
        self.request("list", path, 0, self.config.list_price)?;
        self.store.size(path)
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.request("list", prefix, 0, self.config.list_price)?;
        self.store.list(prefix)
    }

    fn delete(&self, path: &str) -> Result<()> {
        let attempt = self.request("delete", path, 0, self.config.put_price)?;
        self.store.delete(path)?;
        if self.ambiguous_roll("delete", path, attempt) {
            return Err(EonError::Storage(format!(
                "ambiguous outcome: DELETE {path} applied but response lost"
            )));
        }
        Ok(())
    }

    fn exists(&self, path: &str) -> Result<bool> {
        self.request("list", path, 0, self.config.list_price)?;
        self.store.exists(path)
    }

    fn select(&self, path: &str, request: &[u8]) -> Result<Option<Bytes>> {
        let engine = match self.select_engine.lock().clone() {
            Some(e) => e,
            None => return Ok(None),
        };
        // Compute *before* rolling the request dice: the engine is a
        // pure function of (object, request), so whether a fault fires
        // on attempt N never depends on engine internals, and the
        // fault schedule stays a keyed hash of (seed, verb, path,
        // attempt) exactly like every other verb.
        let object = match self.store.peek(path) {
            Ok(o) => o,
            Err(e) => {
                // A select on a missing key still costs a request.
                self.request("select", path, 0, self.config.select_price)?;
                return Err(e);
            }
        };
        let out = match engine.select(&object, request) {
            Ok(Some(out)) => out,
            // Engine declines (unsupported request shape): no charge,
            // caller falls back to plain GETs.
            Ok(None) => return Ok(None),
            Err(e) => {
                self.request("select", path, 0, self.config.select_price)?;
                return Err(e);
            }
        };
        let returned = out.response.len() as u64;
        // Latency: the response transfer at full bandwidth plus a
        // scan-compute surcharge (scanning inside the store is cheaper
        // than shipping, not free — 1/8th the byte-transfer charge).
        let transfer = (returned + out.scanned_bytes / 8) as usize;
        let price = self.config.select_price
            + out.scanned_bytes * self.config.select_scan_price_per_mib / (1 << 20)
            + returned * self.config.select_return_price_per_mib / (1 << 20);
        if std::env::var_os("EON_S3_TRACE").is_some() {
            eprintln!(
                "s3 SELECT {path} scanned={}B returned={returned}B",
                out.scanned_bytes
            );
        }
        self.request("select", path, transfer, price)?;
        self.metrics.select_scanned.add(out.scanned_bytes);
        self.metrics.select_returned.add(returned);
        Ok(Some(out.response))
    }

    fn install_select_engine(&self, engine: Arc<dyn SelectEngine>) {
        *self.select_engine.lock() = Some(engine);
    }

    fn stats(&self) -> FsStats {
        let mut s = self.store.stats();
        s.cost_nanodollars = *self.cost.lock();
        s
    }

    fn kind(&self) -> &'static str {
        "s3sim"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant() -> S3SimFs {
        S3SimFs::new(S3Config::instant())
    }

    #[test]
    fn behaves_like_object_store() {
        let fs = instant();
        fs.write("bucket/key", Bytes::from_static(b"v")).unwrap();
        assert_eq!(fs.read("bucket/key").unwrap().as_ref(), b"v");
        assert_eq!(fs.list("bucket/").unwrap(), vec!["bucket/key"]);
        fs.delete("bucket/key").unwrap();
        assert!(matches!(fs.read("bucket/key"), Err(EonError::NotFound(_))));
    }

    #[test]
    fn accumulates_cost() {
        let fs = instant();
        fs.write("k", Bytes::from_static(b"abc")).unwrap(); // 5000
        fs.read("k").unwrap(); // 400
        fs.list("").unwrap(); // 5000
        let s = fs.stats();
        assert_eq!(s.cost_nanodollars, 10_400);
    }

    #[test]
    fn injects_failures_at_configured_rate() {
        let fs = S3SimFs::new(S3Config::flaky(0.5, 0.0, 42));
        let mut failures = 0;
        for i in 0..200 {
            if fs.write(&format!("k{i}"), Bytes::new()).is_err() {
                failures += 1;
            }
        }
        // 50% ± generous tolerance
        assert!((60..=140).contains(&failures), "failures={failures}");
    }

    #[test]
    fn throttle_is_distinguishable() {
        let fs = S3SimFs::new(S3Config::flaky(0.0, 1.0, 7));
        assert!(matches!(fs.read("x"), Err(EonError::Throttled)));
    }

    #[test]
    fn failure_injection_is_reproducible() {
        let run = || {
            let fs = S3SimFs::new(S3Config::flaky(0.3, 0.1, 99));
            (0..100)
                .map(|i| fs.write(&format!("k{i}"), Bytes::new()).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reject_overwrite_mode() {
        let fs = S3SimFs::new(S3Config {
            reject_overwrite: true,
            ..S3Config::instant()
        });
        fs.write("immutable", Bytes::from_static(b"a")).unwrap();
        // Terminal, not transient: an invariant violation must surface
        // immediately instead of burning retry budget.
        let err = fs.write("immutable", Bytes::from_static(b"b")).unwrap_err();
        assert!(matches!(err, EonError::PreconditionFailed(_)), "{err}");
        assert!(!err.is_transient());
        // Original data untouched.
        assert_eq!(fs.read("immutable").unwrap().as_ref(), b"a");
    }

    #[test]
    fn brownout_fails_everything_transiently_until_cleared() {
        let fs = instant();
        fs.write("pre", Bytes::from_static(b"v")).unwrap();
        fs.set_brownout(true);
        for outcome in [
            fs.write("k", Bytes::from_static(b"x")).err(),
            fs.read("pre").err(),
            fs.list("").err(),
            fs.delete("pre").err(),
            fs.exists("pre").err(),
        ] {
            let e = outcome.expect("brownout must fail every request");
            assert!(e.is_transient(), "brownout errors are retryable: {e}");
        }
        fs.set_brownout(false);
        // Nothing was applied during the brownout; service resumes.
        assert_eq!(fs.read("pre").unwrap().as_ref(), b"v");
        assert!(!fs.exists("k").unwrap());
    }

    #[test]
    fn ambiguous_put_applies_and_retry_is_idempotent() {
        // Force every mutation to report an ambiguous error.
        let fs = S3SimFs::new(S3Config {
            reject_overwrite: true, // must coexist with immutability checks
            ..S3Config::ambiguous(1.0, 11)
        });
        let err = fs.write("obj", Bytes::from_static(b"payload")).unwrap_err();
        assert!(err.is_transient(), "ambiguous outcomes must be retryable");
        // Applied despite the error:
        assert_eq!(fs.read("obj").unwrap().as_ref(), b"payload");
        // The §5.3 retry: same bytes again. Not an overwrite violation,
        // no duplicate, no corruption — at worst another ambiguous error.
        for _ in 0..3 {
            let _ = fs.write("obj", Bytes::from_static(b"payload"));
        }
        assert_eq!(fs.read("obj").unwrap().as_ref(), b"payload");
        assert_eq!(fs.list("obj").unwrap(), vec!["obj"]);
        // Different bytes are still rejected as an overwrite.
        assert!(fs.write("obj", Bytes::from_static(b"other")).is_err());
        assert_eq!(fs.read("obj").unwrap().as_ref(), b"payload");
    }

    #[test]
    fn ambiguous_delete_applies_and_retry_is_idempotent() {
        let fs = S3SimFs::new(S3Config::ambiguous(1.0, 12));
        let _ = fs.write("victim", Bytes::from_static(b"x"));
        let err = fs.delete("victim").unwrap_err();
        assert!(err.is_transient());
        assert!(!fs.exists("victim").unwrap());
        // Retrying the delete of a now-missing object stays harmless
        // (S3 delete semantics, §6.5's idempotent delete protocol).
        let _ = fs.delete("victim");
        assert!(!fs.exists("victim").unwrap());
    }

    #[test]
    fn ambiguous_rate_zero_never_fires() {
        let fs = instant();
        for i in 0..100 {
            fs.write(&format!("k{i}"), Bytes::from_static(b"v")).unwrap();
            fs.delete(&format!("k{i}")).unwrap();
        }
    }

    #[test]
    fn latency_is_charged() {
        let fs = S3SimFs::new(S3Config {
            request_latency: Duration::from_millis(5),
            bytes_per_micro: 0,
            ..S3Config::instant()
        });
        let t0 = std::time::Instant::now();
        fs.write("k", Bytes::new()).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn read_after_write_for_new_objects() {
        // The consistency model Vertica relies on (§5.3): a freshly
        // written object is immediately visible to read and list.
        let fs = instant();
        fs.write("fresh", Bytes::from_static(b"now")).unwrap();
        assert!(fs.exists("fresh").unwrap());
        assert_eq!(fs.read("fresh").unwrap().as_ref(), b"now");
    }
}
