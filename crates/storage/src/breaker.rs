//! Circuit breaker for shared-storage access (DESIGN.md "Failure
//! detection & degraded modes").
//!
//! The §5.3 retry loop handles *transient* S3 failures; a **brownout**
//! — minutes of the store answering nothing — makes every operation
//! grind through its full backoff budget before failing, and every new
//! operation starts the grind over (a retry storm against a service
//! that is already down). The breaker sits under [`crate::RetryFs`]
//! and converts that into fast, typed failure:
//!
//! * **Closed** — normal service. Each operation whose retry budget is
//!   exhausted on a transient error counts one consecutive failure;
//!   `failure_threshold` of them in a row open the breaker. Terminal
//!   errors (NotFound/NoSuchKey, precondition violations) prove the
//!   store *answered* and reset the streak — they never trip it.
//! * **Open** — every admission fast-fails with
//!   [`EonError::StoreUnavailable`] without touching the store. The
//!   cooldown is counted in **fast-failed admissions**, not wall
//!   clock, so the half-open point is deterministic under the repo's
//!   determinism rules: after `cooldown` rejections the next admission
//!   goes through as a probe.
//! * **HalfOpen** — admissions are probes. `half_open_probes`
//!   successes close the breaker; any transient failure re-opens it
//!   (and restarts the cooldown).
//!
//! Depot reads never reach the breaker on a cache hit, which is what
//! keeps depot-only reads serving through a brownout while writes and
//! cache misses reject fast.

use std::sync::Arc;

use eon_obs::{Counter, Registry};
use eon_types::{EonError, Result};
use parking_lot::Mutex;

/// Breaker thresholds, all counted in operations (deterministic).
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive exhausted-retry failures that open the breaker.
    pub failure_threshold: u32,
    /// Fast-failed admissions while open before the breaker half-opens.
    pub cooldown: u32,
    /// Probe successes in half-open before the breaker closes.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: 8,
            half_open_probes: 1,
        }
    }
}

/// Where the breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    /// Consecutive exhausted-retry failures while closed.
    consecutive_failures: u32,
    /// Admissions fast-failed since the breaker opened.
    fast_fails: u32,
    /// Probe successes since the breaker half-opened.
    probe_successes: u32,
}

/// The breaker itself. Shared (`Arc`) between [`crate::RetryFs`] and
/// the admission front doors in `eon-core`.
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
    opened: Arc<Counter>,
    fast_failed: Arc<Counter>,
    closed: Arc<Counter>,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> Arc<Self> {
        Self::with_metrics(config, &Registry::new())
    }

    /// A breaker whose trip/fast-fail/close counters land in
    /// `registry`. Registered as `Seeded`: state transitions are a pure
    /// function of the operation outcome sequence, which is itself
    /// deterministic in seeded serial schedules.
    pub fn with_metrics(config: BreakerConfig, registry: &Registry) -> Arc<Self> {
        let labels: &[(&str, &str)] = &[("subsystem", "breaker")];
        Arc::new(CircuitBreaker {
            config: BreakerConfig {
                failure_threshold: config.failure_threshold.max(1),
                cooldown: config.cooldown.max(1),
                half_open_probes: config.half_open_probes.max(1),
                // (struct update spelled out so sanitation is visible)
            },
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                fast_fails: 0,
                probe_successes: 0,
            }),
            opened: registry.counter("breaker_opened_total", labels),
            fast_failed: registry.counter("breaker_fast_fails_total", labels),
            closed: registry.counter("breaker_closed_total", labels),
        })
    }

    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    pub fn is_open(&self) -> bool {
        self.state() == BreakerState::Open
    }

    /// Gate one operation. `Ok(())` admits it (closed, or as a
    /// half-open probe); `Err(StoreUnavailable)` fast-fails it and
    /// advances the cooldown. After exactly `cooldown` fast-fails the
    /// next admission half-opens the breaker and goes through.
    pub fn admit(&self) -> Result<()> {
        let mut g = self.inner.lock();
        match g.state {
            BreakerState::Closed | BreakerState::HalfOpen => Ok(()),
            BreakerState::Open => {
                if g.fast_fails >= self.config.cooldown {
                    g.state = BreakerState::HalfOpen;
                    g.probe_successes = 0;
                    Ok(())
                } else {
                    g.fast_fails += 1;
                    self.fast_failed.inc();
                    Err(EonError::StoreUnavailable(format!(
                        "circuit breaker open ({} consecutive storage failures)",
                        self.config.failure_threshold
                    )))
                }
            }
        }
    }

    /// Record an admitted operation's outcome. Transient failures (the
    /// retry budget was exhausted) count toward the trip threshold /
    /// re-open a half-open breaker; success and terminal errors are
    /// evidence the store answered.
    pub fn observe(&self, outcome: &Result<()>) {
        match outcome {
            Ok(()) => self.record_success(),
            Err(e) if e.is_transient() => self.record_failure(),
            // Terminal error: the store processed the request.
            Err(_) => self.record_success(),
        }
    }

    /// An admitted operation reached the store and got an answer.
    pub fn record_success(&self) {
        let mut g = self.inner.lock();
        g.consecutive_failures = 0;
        if g.state == BreakerState::HalfOpen {
            g.probe_successes += 1;
            if g.probe_successes >= self.config.half_open_probes {
                g.state = BreakerState::Closed;
                g.fast_fails = 0;
                g.probe_successes = 0;
                self.closed.inc();
            }
        }
    }

    /// An admitted operation exhausted its retry budget on a transient
    /// error.
    pub fn record_failure(&self) {
        let mut g = self.inner.lock();
        match g.state {
            BreakerState::Closed => {
                g.consecutive_failures += 1;
                if g.consecutive_failures >= self.config.failure_threshold {
                    g.state = BreakerState::Open;
                    g.fast_fails = 0;
                    g.consecutive_failures = 0;
                    self.opened.inc();
                }
            }
            BreakerState::HalfOpen => {
                // The probe failed: back to open, cooldown restarts.
                g.state = BreakerState::Open;
                g.fast_fails = 0;
                g.probe_successes = 0;
                self.opened.inc();
            }
            BreakerState::Open => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown: u32, probes: u32) -> Arc<CircuitBreaker> {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown,
            half_open_probes: probes,
        })
    }

    #[test]
    fn opens_after_consecutive_failures() {
        let b = breaker(3, 4, 1);
        for _ in 0..2 {
            b.admit().unwrap();
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        b.admit().unwrap();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn success_resets_the_streak() {
        let b = breaker(2, 4, 1);
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "non-consecutive failures must not trip");
    }

    #[test]
    fn terminal_errors_do_not_trip() {
        let b = breaker(1, 4, 1);
        b.observe(&Err(EonError::NotFound("k".into())));
        b.observe(&Err(EonError::PreconditionFailed("overwrite".into())));
        assert_eq!(b.state(), BreakerState::Closed);
        b.observe(&Err(EonError::Storage("503".into())));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_fast_fails_exactly_cooldown_times_then_half_opens() {
        let b = breaker(1, 3, 1);
        b.record_failure();
        for _ in 0..3 {
            assert!(matches!(b.admit(), Err(EonError::StoreUnavailable(_))));
        }
        // Fast-fail 4 would exceed the cooldown: this admission is the probe.
        b.admit().unwrap();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_and_restarts_cooldown() {
        let b = breaker(1, 2, 1);
        b.record_failure();
        let _ = b.admit();
        let _ = b.admit();
        b.admit().unwrap(); // probe
        b.record_failure(); // probe failed
        assert_eq!(b.state(), BreakerState::Open);
        // Full cooldown again before the next probe.
        assert!(b.admit().is_err());
        assert!(b.admit().is_err());
        b.admit().unwrap();
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn multiple_probes_required_when_configured() {
        let b = breaker(1, 1, 2);
        b.record_failure();
        let _ = b.admit();
        b.admit().unwrap();
        b.record_success();
        assert_eq!(b.state(), BreakerState::HalfOpen, "one probe of two is not enough");
        b.admit().unwrap();
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn thresholds_are_sanitized() {
        let b = breaker(0, 0, 0);
        assert_eq!(b.config().failure_threshold, 1);
        assert_eq!(b.config().cooldown, 1);
        assert_eq!(b.config().half_open_probes, 1);
    }
}
