//! POSIX filesystem backend, rooted at a directory.
//!
//! Used for node-local storage: the cache directory in Eon mode and the
//! data directories of the Enterprise baseline. Keys map to files below
//! the root; key separators become directories. Unlike the S3 simulator,
//! `read_range` is a positioned read — local disk supports it natively,
//! which is exactly why the cache exists (§5.2).

use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use eon_types::{EonError, Result};

use crate::fs::{FileSystem, FsStats};

/// Directory-rooted local filesystem.
pub struct PosixFs {
    root: PathBuf,
    gets: AtomicU64,
    puts: AtomicU64,
    lists: AtomicU64,
    deletes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl PosixFs {
    /// Open (creating if needed) a filesystem rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(PosixFs {
            root,
            gets: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            lists: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    fn resolve(&self, key: &str) -> Result<PathBuf> {
        // Reject path escapes; keys are storage identifiers, not user
        // input, but defense in depth costs little.
        if key.split('/').any(|c| c == "..") || key.starts_with('/') {
            return Err(EonError::Storage(format!("invalid key: {key}")));
        }
        Ok(self.root.join(key))
    }
}

impl FileSystem for PosixFs {
    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        let full = self.resolve(path)?;
        if let Some(parent) = full.parent() {
            fs::create_dir_all(parent)?;
        }
        // Write-then-rename gives atomic replace on POSIX. The UDFS API
        // itself has no rename — this is an implementation detail local
        // filesystems are allowed (§5.3).
        let tmp = full.with_extension("tmp-write");
        fs::write(&tmp, &data)?;
        fs::rename(&tmp, &full)?;
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    fn read(&self, path: &str) -> Result<Bytes> {
        let full = self.resolve(path)?;
        let data = fs::read(&full)?;
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(Bytes::from(data))
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        let full = self.resolve(path)?;
        let mut f = fs::File::open(&full)?;
        let size = f.metadata()?.len();
        let start = offset.min(size);
        let end = (offset + len).min(size);
        f.seek(SeekFrom::Start(start))?;
        let mut buf = vec![0u8; (end - start) as usize];
        f.read_exact(&mut buf)?;
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(buf.len() as u64, Ordering::Relaxed);
        Ok(Bytes::from(buf))
    }

    fn size(&self, path: &str) -> Result<u64> {
        let full = self.resolve(path)?;
        self.lists.fetch_add(1, Ordering::Relaxed);
        Ok(fs::metadata(&full)?.len())
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.lists.fetch_add(1, Ordering::Relaxed);
        let mut out = Vec::new();
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            let entries = match fs::read_dir(&dir) {
                Ok(e) => e,
                Err(_) => continue,
            };
            for entry in entries.flatten() {
                let p = entry.path();
                if p.is_dir() {
                    stack.push(p);
                } else if let Ok(rel) = p.strip_prefix(&self.root) {
                    let key = rel.to_string_lossy().replace('\\', "/");
                    if key.starts_with(prefix) && !key.ends_with(".tmp-write") {
                        out.push(key);
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }

    fn delete(&self, path: &str) -> Result<()> {
        let full = self.resolve(path)?;
        self.deletes.fetch_add(1, Ordering::Relaxed);
        match fs::remove_file(&full) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn stats(&self) -> FsStats {
        FsStats {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            lists: self.lists.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            cost_nanodollars: 0,
        }
    }

    fn kind(&self) -> &'static str {
        "posix"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("eon-posix-test-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_and_nesting() {
        let fs = PosixFs::new(tmpdir("rt")).unwrap();
        fs.write("a/b/c.bin", Bytes::from_static(b"payload")).unwrap();
        assert_eq!(fs.read("a/b/c.bin").unwrap().as_ref(), b"payload");
        assert_eq!(fs.size("a/b/c.bin").unwrap(), 7);
    }

    #[test]
    fn positioned_read() {
        let fs = PosixFs::new(tmpdir("range")).unwrap();
        fs.write("k", Bytes::from_static(b"0123456789")).unwrap();
        assert_eq!(fs.read_range("k", 3, 4).unwrap().as_ref(), b"3456");
        assert_eq!(fs.read_range("k", 8, 10).unwrap().as_ref(), b"89");
    }

    #[test]
    fn list_recurses_and_sorts() {
        let fs = PosixFs::new(tmpdir("list")).unwrap();
        for k in ["d/2", "d/1", "e/x/y", "top"] {
            fs.write(k, Bytes::new()).unwrap();
        }
        assert_eq!(fs.list("d/").unwrap(), vec!["d/1", "d/2"]);
        assert_eq!(fs.list("").unwrap().len(), 4);
    }

    #[test]
    fn delete_missing_ok() {
        let fs = PosixFs::new(tmpdir("del")).unwrap();
        fs.delete("never-existed").unwrap();
    }

    #[test]
    fn rejects_escaping_keys() {
        let fs = PosixFs::new(tmpdir("esc")).unwrap();
        assert!(fs.write("../evil", Bytes::new()).is_err());
        assert!(fs.read("/etc/passwd").is_err());
    }

    #[test]
    fn overwrite_is_atomic_replace() {
        let fs = PosixFs::new(tmpdir("ow")).unwrap();
        fs.write("k", Bytes::from_static(b"old")).unwrap();
        fs.write("k", Bytes::from_static(b"new!")).unwrap();
        assert_eq!(fs.read("k").unwrap().as_ref(), b"new!");
        // temp file must not linger or show up in listings
        assert_eq!(fs.list("").unwrap(), vec!["k"]);
    }
}
