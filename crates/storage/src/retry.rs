//! The "properly balanced retry loop" §5.3 requires around shared
//! storage access: transient failures and throttles retry with
//! exponential backoff; permanent errors (NotFound, schema violations)
//! surface immediately so queries stay cancelable.

use std::time::Duration;

use eon_types::{EonError, Result};

/// Backoff policy for shared-storage requests.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum number of attempts (including the first).
    pub max_attempts: u32,
    /// Sleep before the second attempt; doubles each retry.
    pub base_backoff: Duration,
    /// Cap on a single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(20),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries; used where the caller handles
    /// failures itself (e.g. the leak-scan of §6.5 tolerates misses).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base_backoff.saturating_mul(1u32 << attempt.min(16));
        exp.min(self.max_backoff)
    }
}

/// Run `op`, retrying transient errors per `policy`.
///
/// Throttles back off twice as hard as plain failures — the service is
/// telling us to slow down, and hammering it is how you stay throttled.
pub fn with_retry<T>(policy: &RetryPolicy, mut op: impl FnMut() -> Result<T>) -> Result<T> {
    let mut attempt = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt + 1 < policy.max_attempts => {
                let mut sleep = policy.backoff(attempt);
                if matches!(e, EonError::Throttled) {
                    sleep = sleep.saturating_mul(2).min(policy.max_backoff);
                }
                if !sleep.is_zero() {
                    std::thread::sleep(sleep);
                }
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn succeeds_after_transient_failures() {
        let calls = AtomicU32::new(0);
        let policy = RetryPolicy {
            base_backoff: Duration::ZERO,
            ..Default::default()
        };
        let out = with_retry(&policy, || {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(EonError::Throttled)
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let calls = AtomicU32::new(0);
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            ..Default::default()
        };
        let out: Result<()> = with_retry(&policy, || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(EonError::Storage("boom".into()))
        });
        assert!(out.is_err());
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn permanent_errors_do_not_retry() {
        let calls = AtomicU32::new(0);
        let out: Result<()> = with_retry(&RetryPolicy::default(), || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(EonError::NotFound("k".into()))
        });
        assert!(matches!(out, Err(EonError::NotFound(_))));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn none_policy_tries_once() {
        let calls = AtomicU32::new(0);
        let out: Result<()> = with_retry(&RetryPolicy::none(), || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(EonError::Throttled)
        });
        assert!(out.is_err());
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn backoff_is_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(1));
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(5), Duration::from_millis(4)); // capped
        assert_eq!(p.backoff(31), Duration::from_millis(4)); // no overflow
    }
}
