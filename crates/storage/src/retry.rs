//! The "properly balanced retry loop" §5.3 requires around shared
//! storage access: transient failures and throttles retry with
//! exponential backoff; permanent errors (NotFound, schema violations)
//! surface immediately so queries stay cancelable.
//!
//! Two optional refinements, both off by default so existing behaviour
//! stays byte-for-byte deterministic:
//!
//! * **Decorrelated jitter** (`jitter_seed`): with plain exponential
//!   backoff, every node that got throttled in the same instant retries
//!   in the same instant — a synchronized thundering herd against the
//!   very store that told them to slow down. A seeded decorrelated
//!   jitter (`sleep = min(cap, rand(base, prev * 3))`, the AWS
//!   architecture-blog formula) spreads the herd while staying
//!   reproducible under a fixed seed.
//! * **Overall deadline** (`max_elapsed`): bounds the *sum* of backoff
//!   sleeps rather than just the attempt count, so a caller holding a
//!   commit lock can't be parked for an unbounded time. Accounted by
//!   accumulated planned sleep, not wall clock, to keep the give-up
//!   point deterministic.

use std::time::Duration;

use eon_types::{EonError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Backoff policy for shared-storage requests.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum number of attempts (including the first).
    pub max_attempts: u32,
    /// Sleep before the second attempt; doubles each retry.
    pub base_backoff: Duration,
    /// Cap on a single backoff sleep.
    pub max_backoff: Duration,
    /// Give up once the accumulated backoff sleep would exceed this,
    /// even if attempts remain. `None` = attempt count alone governs.
    pub max_elapsed: Option<Duration>,
    /// Seed for decorrelated jitter. `None` = pure exponential backoff
    /// (the historical, fully deterministic schedule).
    pub jitter_seed: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(20),
            max_elapsed: None,
            jitter_seed: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries; used where the caller handles
    /// failures itself (e.g. the leak-scan of §6.5 tolerates misses).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            max_elapsed: None,
            jitter_seed: None,
        }
    }

    /// This policy with decorrelated jitter under `seed`.
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// This policy with an overall backoff-time deadline.
    pub fn with_max_elapsed(mut self, deadline: Duration) -> Self {
        self.max_elapsed = Some(deadline);
        self
    }

    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base_backoff.saturating_mul(1u32 << attempt.min(16));
        exp.min(self.max_backoff)
    }

    /// The full sleep schedule this policy would produce (one entry per
    /// retry, i.e. `max_attempts - 1` entries). Pure function of the
    /// policy — used by tests to assert reproducibility and by callers
    /// that want to budget worst-case stall time.
    pub fn sleep_schedule(&self) -> Vec<Duration> {
        let mut rng = self.jitter_seed.map(StdRng::seed_from_u64);
        let mut prev = self.base_backoff;
        (0..self.max_attempts.saturating_sub(1))
            .map(|attempt| {
                let sleep = match &mut rng {
                    Some(rng) => {
                        // Decorrelated jitter: rand(base, prev * 3),
                        // capped. Nanosecond-granularity draw keeps the
                        // schedule identical across platforms.
                        let lo = self.base_backoff.as_nanos() as u64;
                        let hi = (prev.saturating_mul(3).as_nanos() as u64).max(lo + 1);
                        Duration::from_nanos(rng.gen_range(lo..hi)).min(self.max_backoff)
                    }
                    None => self.backoff(attempt),
                };
                prev = sleep.max(self.base_backoff);
                sleep
            })
            .collect()
    }
}

/// Run `op`, retrying transient errors per `policy`.
///
/// Throttles back off twice as hard as plain failures — the service is
/// telling us to slow down, and hammering it is how you stay throttled.
pub fn with_retry<T>(policy: &RetryPolicy, op: impl FnMut() -> Result<T>) -> Result<T> {
    with_retry_observed(policy, |_| {}, op)
}

/// [`with_retry`] with an observation hook: `on_retry(&err)` runs once
/// per retry, before the backoff sleep. The depot and [`crate::RetryFs`]
/// use it to count retries in the metrics registry without the policy
/// layer knowing about metrics.
pub fn with_retry_observed<T>(
    policy: &RetryPolicy,
    mut on_retry: impl FnMut(&eon_types::EonError),
    mut op: impl FnMut() -> Result<T>,
) -> Result<T> {
    let mut rng = policy.jitter_seed.map(StdRng::seed_from_u64);
    let mut prev = policy.base_backoff;
    let mut slept = Duration::ZERO;
    let mut attempt = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt + 1 < policy.max_attempts => {
                let mut sleep = match &mut rng {
                    Some(rng) => {
                        let lo = policy.base_backoff.as_nanos() as u64;
                        let hi = (prev.saturating_mul(3).as_nanos() as u64).max(lo + 1);
                        Duration::from_nanos(rng.gen_range(lo..hi)).min(policy.max_backoff)
                    }
                    None => policy.backoff(attempt),
                };
                prev = sleep.max(policy.base_backoff);
                if matches!(e, EonError::Throttled) {
                    sleep = sleep.saturating_mul(2).min(policy.max_backoff);
                }
                // Deadline accounting uses the *planned* sleep total so
                // the give-up point is deterministic regardless of
                // scheduler noise.
                if let Some(deadline) = policy.max_elapsed {
                    if slept + sleep > deadline {
                        return Err(e);
                    }
                }
                on_retry(&e);
                slept += sleep;
                if !sleep.is_zero() {
                    std::thread::sleep(sleep);
                }
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn succeeds_after_transient_failures() {
        let calls = AtomicU32::new(0);
        let policy = RetryPolicy {
            base_backoff: Duration::ZERO,
            ..Default::default()
        };
        let out = with_retry(&policy, || {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                Err(EonError::Throttled)
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let calls = AtomicU32::new(0);
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            ..Default::default()
        };
        let out: Result<()> = with_retry(&policy, || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(EonError::Storage("boom".into()))
        });
        assert!(out.is_err());
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn permanent_errors_do_not_retry() {
        let calls = AtomicU32::new(0);
        let out: Result<()> = with_retry(&RetryPolicy::default(), || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(EonError::NotFound("k".into()))
        });
        assert!(matches!(out, Err(EonError::NotFound(_))));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn none_policy_tries_once() {
        let calls = AtomicU32::new(0);
        let out: Result<()> = with_retry(&RetryPolicy::none(), || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(EonError::Throttled)
        });
        assert!(out.is_err());
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn backoff_is_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            ..Default::default()
        };
        assert_eq!(p.backoff(0), Duration::from_millis(1));
        assert_eq!(p.backoff(1), Duration::from_millis(2));
        assert_eq!(p.backoff(5), Duration::from_millis(4)); // capped
        assert_eq!(p.backoff(31), Duration::from_millis(4)); // no overflow
    }

    #[test]
    fn jitter_schedule_is_reproducible_and_bounded() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
            ..Default::default()
        }
        .with_jitter(0xdecaf);
        let a = p.sleep_schedule();
        let b = p.sleep_schedule();
        assert_eq!(a, b, "same seed must give the same schedule");
        assert_eq!(a.len(), 7);
        for s in &a {
            assert!(*s >= Duration::from_micros(50) && *s <= Duration::from_millis(5));
        }
        // A different seed decorrelates the herd.
        let c = p.clone().with_jitter(0xdecaf + 1).sleep_schedule();
        assert_ne!(a, c, "different seeds should not retry in lockstep");
        // No seed: the historical pure-exponential schedule.
        let plain = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(16),
            ..Default::default()
        };
        assert_eq!(
            plain.sleep_schedule(),
            vec![
                Duration::from_millis(1),
                Duration::from_millis(2),
                Duration::from_millis(4)
            ]
        );
    }

    #[test]
    fn max_elapsed_gives_up_before_max_attempts() {
        let calls = AtomicU32::new(0);
        let policy = RetryPolicy {
            max_attempts: 100,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(1),
            ..Default::default()
        }
        .with_max_elapsed(Duration::from_millis(3));
        let out: Result<()> = with_retry(&policy, || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(EonError::Storage("boom".into()))
        });
        assert!(out.is_err());
        // 1ms planned sleep per retry, 3ms budget: initial attempt plus
        // exactly 3 retries before the 4th sleep would breach it.
        assert_eq!(calls.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn max_elapsed_zero_still_tries_once() {
        let calls = AtomicU32::new(0);
        let policy = RetryPolicy::default().with_max_elapsed(Duration::ZERO);
        let out: Result<()> = with_retry(&policy, || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(EonError::Throttled)
        });
        assert!(out.is_err());
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }
}
