//! Shared-storage substrate: the user-defined filesystem (UDFS) API of
//! paper §5.3, with three implementations —
//!
//! * [`MemFs`] — an in-memory object store (fast tests),
//! * [`PosixFs`] — a directory-rooted local filesystem,
//! * [`S3SimFs`] — a simulated S3: injected request latency, bandwidth
//!   modelling, throttling and request failures, request-cost
//!   accounting, and S3's API shape (no rename/append, list-by-prefix).
//!
//! Plus the globally-unique storage identifier (SID) scheme of §5.1 /
//! Fig 7 and the retry loop §5.3 demands around fallible shared-storage
//! access.

pub mod breaker;
pub mod fault;
pub mod fs;
pub mod mem;
pub mod posix;
pub mod retry;
pub mod retryfs;
pub mod s3sim;
pub mod sid;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use fault::{FaultEvent, FaultInjector, FaultPlan};
pub use fs::{FileSystem, FsStats, SelectEngine, SelectOutput, SharedFs};
pub use mem::MemFs;
pub use posix::PosixFs;
pub use retry::{with_retry, with_retry_observed, RetryPolicy};
pub use retryfs::RetryFs;
pub use s3sim::{S3Config, S3SimFs};
pub use sid::{InstanceId, SidFactory, StorageId};
