//! A [`FileSystem`] decorator applying the §5.3 retry loop to every
//! operation. `EonDb` wraps its shared storage in this once, so all
//! downstream access — caches' backing reads, catalog uploads,
//! `cluster_info.json`, the leak scan — survives transient failures
//! and throttles uniformly.
//!
//! Whole-object writes and deletes are idempotent on an object store,
//! so retrying them blindly is safe; that is precisely why the UDFS
//! API has no append or rename (§5.3).
//!
//! An optional [`CircuitBreaker`] gates every operation: while it is
//! open, requests fail fast with `StoreUnavailable` instead of burning
//! a full backoff budget against a browned-out store, and each
//! operation's final outcome (exhausted-retry transient failure vs.
//! answered) feeds the breaker's state machine.

use std::sync::Arc;

use bytes::Bytes;
use eon_obs::{Counter, Registry};
use eon_types::Result;

use crate::breaker::CircuitBreaker;
use crate::fs::{FileSystem, FsStats, SharedFs};
use crate::retry::{with_retry_observed, RetryPolicy};

/// Retrying wrapper over any filesystem.
pub struct RetryFs {
    inner: SharedFs,
    policy: RetryPolicy,
    /// `s3_retries_total` — one tick per re-issued request. Wired to a
    /// private registry until [`RetryFs::with_metrics`].
    retries: Arc<Counter>,
    /// Optional brownout protection (DESIGN.md "Failure detection &
    /// degraded modes"). `None` = the historical always-retry shape.
    breaker: Option<Arc<CircuitBreaker>>,
}

impl RetryFs {
    pub fn new(inner: SharedFs) -> Self {
        Self::with_metrics(inner, RetryPolicy::default(), &Registry::new())
    }

    pub fn with_policy(inner: SharedFs, policy: RetryPolicy) -> Self {
        Self::with_metrics(inner, policy, &Registry::new())
    }

    /// A wrapper whose retry count lands in `registry`.
    pub fn with_metrics(inner: SharedFs, policy: RetryPolicy, registry: &Registry) -> Self {
        RetryFs {
            inner,
            policy,
            retries: registry.counter("s3_retries_total", &[("subsystem", "s3")]),
            breaker: None,
        }
    }

    /// This wrapper with a circuit breaker gating every operation.
    pub fn breaker(mut self, breaker: Arc<CircuitBreaker>) -> Self {
        self.breaker = Some(breaker);
        self
    }

    pub fn inner(&self) -> &SharedFs {
        &self.inner
    }

    /// Wrap unless already wrapped (idempotent at the type level via
    /// the kind marker).
    pub fn wrap(fs: SharedFs) -> SharedFs {
        Self::wrap_with(fs, &Registry::new())
    }

    /// [`RetryFs::wrap`] with the retry counter in `registry`.
    pub fn wrap_with(fs: SharedFs, registry: &Registry) -> SharedFs {
        Self::wrap_with_breaker(fs, registry, None)
    }

    /// [`RetryFs::wrap_with`], additionally gating every operation
    /// behind `breaker` when one is given. An already-wrapped fs passes
    /// through untouched (same idempotence as [`RetryFs::wrap`]).
    pub fn wrap_with_breaker(
        fs: SharedFs,
        registry: &Registry,
        breaker: Option<Arc<CircuitBreaker>>,
    ) -> SharedFs {
        if fs.kind() == "retry" {
            fs
        } else {
            let mut wrapped = Self::with_metrics(fs, RetryPolicy::default(), registry);
            wrapped.breaker = breaker;
            Arc::new(wrapped)
        }
    }

    fn retrying<T>(&self, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        // Fast-fail while the breaker is open (it half-opens itself
        // after its cooldown; that admission proceeds as the probe).
        if let Some(b) = &self.breaker {
            b.admit()?;
        }
        let result = with_retry_observed(&self.policy, |_| self.retries.inc(), &mut op);
        if let Some(b) = &self.breaker {
            match &result {
                Ok(_) => b.record_success(),
                Err(e) if e.is_transient() => b.record_failure(),
                // Terminal (NotFound, precondition): the store answered
                // — never trips the breaker (DESIGN.md classification).
                Err(_) => b.record_success(),
            }
        }
        result
    }
}

impl FileSystem for RetryFs {
    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        self.retrying(|| self.inner.write(path, data.clone()))
    }

    fn read(&self, path: &str) -> Result<Bytes> {
        self.retrying(|| self.inner.read(path))
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        self.retrying(|| self.inner.read_range(path, offset, len))
    }

    fn size(&self, path: &str) -> Result<u64> {
        self.retrying(|| self.inner.size(path))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.retrying(|| self.inner.list(prefix))
    }

    fn exists(&self, path: &str) -> Result<bool> {
        self.retrying(|| self.inner.exists(path))
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.retrying(|| self.inner.delete(path))
    }

    fn select(&self, path: &str, request: &[u8]) -> Result<Option<Bytes>> {
        // Selects are read-only and therefore idempotent: retry, trip,
        // and fast-fail exactly like any other verb.
        self.retrying(|| self.inner.select(path, request))
    }

    fn install_select_engine(&self, engine: Arc<dyn crate::fs::SelectEngine>) {
        self.inner.install_select_engine(engine);
    }

    fn stats(&self) -> FsStats {
        self.inner.stats()
    }

    fn kind(&self) -> &'static str {
        "retry"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::s3sim::{S3Config, S3SimFs};
    use std::sync::Arc;

    #[test]
    fn operations_succeed_despite_failures() {
        let flaky = Arc::new(S3SimFs::new(S3Config::flaky(0.4, 0.2, 99)));
        // 60% of requests fail: give the loop enough attempts that the
        // whole test fails with probability < 1e-4.
        let fs = RetryFs::with_policy(
            flaky,
            RetryPolicy {
                max_attempts: 25,
                base_backoff: std::time::Duration::ZERO,
                max_backoff: std::time::Duration::ZERO,
                ..Default::default()
            },
        );
        for i in 0..50 {
            let key = format!("k{i}");
            fs.write(&key, Bytes::from(vec![i as u8])).unwrap();
            assert_eq!(fs.read(&key).unwrap()[0], i as u8);
        }
        assert_eq!(fs.list("k").unwrap().len(), 50);
    }

    #[test]
    fn wrap_is_idempotent() {
        let base: SharedFs = Arc::new(crate::mem::MemFs::new());
        let once = RetryFs::wrap(base);
        assert_eq!(once.kind(), "retry");
        let twice = RetryFs::wrap(once.clone());
        assert!(Arc::ptr_eq(&once, &twice));
    }

    #[test]
    fn permanent_errors_still_surface() {
        let fs = RetryFs::new(Arc::new(crate::mem::MemFs::new()));
        assert!(matches!(
            fs.read("missing"),
            Err(eon_types::EonError::NotFound(_))
        ));
    }

    #[test]
    fn breaker_opens_on_exhausted_retries_and_fast_fails() {
        use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
        let sim = Arc::new(S3SimFs::new(S3Config::instant()));
        sim.set_brownout(true);
        let breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: 3,
            half_open_probes: 1,
        });
        let fs = RetryFs::with_policy(
            sim.clone(),
            RetryPolicy {
                max_attempts: 3,
                base_backoff: std::time::Duration::ZERO,
                max_backoff: std::time::Duration::ZERO,
                ..Default::default()
            },
        )
        .breaker(breaker.clone());
        // Two operations exhaust their retries → breaker opens.
        assert!(matches!(fs.read("k"), Err(eon_types::EonError::Storage(_))));
        assert!(matches!(fs.read("k"), Err(eon_types::EonError::Storage(_))));
        assert_eq!(breaker.state(), BreakerState::Open);
        // Open: fast-fail without touching the store (request count
        // frozen through the cooldown window).
        let before = sim.stats().cost_nanodollars;
        for _ in 0..3 {
            assert!(matches!(
                fs.write("k", Bytes::from_static(b"v")),
                Err(eon_types::EonError::StoreUnavailable(_))
            ));
        }
        assert_eq!(sim.stats().cost_nanodollars, before, "open breaker must not hit the store");
        // Brownout over: the post-cooldown probe closes the breaker.
        sim.set_brownout(false);
        fs.write("k", Bytes::from_static(b"v")).unwrap();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(fs.read("k").unwrap().as_ref(), b"v");
    }

    #[test]
    fn terminal_errors_do_not_feed_the_breaker() {
        use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
        let breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            ..Default::default()
        });
        let fs = RetryFs::new(Arc::new(crate::mem::MemFs::new())).breaker(breaker.clone());
        for _ in 0..5 {
            assert!(matches!(
                fs.read("missing"),
                Err(eon_types::EonError::NotFound(_))
            ));
        }
        assert_eq!(breaker.state(), BreakerState::Closed);
    }
}
