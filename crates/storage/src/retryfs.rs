//! A [`FileSystem`] decorator applying the §5.3 retry loop to every
//! operation. `EonDb` wraps its shared storage in this once, so all
//! downstream access — caches' backing reads, catalog uploads,
//! `cluster_info.json`, the leak scan — survives transient failures
//! and throttles uniformly.
//!
//! Whole-object writes and deletes are idempotent on an object store,
//! so retrying them blindly is safe; that is precisely why the UDFS
//! API has no append or rename (§5.3).

use std::sync::Arc;

use bytes::Bytes;
use eon_obs::{Counter, Registry};
use eon_types::Result;

use crate::fs::{FileSystem, FsStats, SharedFs};
use crate::retry::{with_retry_observed, RetryPolicy};

/// Retrying wrapper over any filesystem.
pub struct RetryFs {
    inner: SharedFs,
    policy: RetryPolicy,
    /// `s3_retries_total` — one tick per re-issued request. Wired to a
    /// private registry until [`RetryFs::with_metrics`].
    retries: Arc<Counter>,
}

impl RetryFs {
    pub fn new(inner: SharedFs) -> Self {
        Self::with_metrics(inner, RetryPolicy::default(), &Registry::new())
    }

    pub fn with_policy(inner: SharedFs, policy: RetryPolicy) -> Self {
        Self::with_metrics(inner, policy, &Registry::new())
    }

    /// A wrapper whose retry count lands in `registry`.
    pub fn with_metrics(inner: SharedFs, policy: RetryPolicy, registry: &Registry) -> Self {
        RetryFs {
            inner,
            policy,
            retries: registry.counter("s3_retries_total", &[("subsystem", "s3")]),
        }
    }

    pub fn inner(&self) -> &SharedFs {
        &self.inner
    }

    /// Wrap unless already wrapped (idempotent at the type level via
    /// the kind marker).
    pub fn wrap(fs: SharedFs) -> SharedFs {
        Self::wrap_with(fs, &Registry::new())
    }

    /// [`RetryFs::wrap`] with the retry counter in `registry`.
    pub fn wrap_with(fs: SharedFs, registry: &Registry) -> SharedFs {
        if fs.kind() == "retry" {
            fs
        } else {
            Arc::new(Self::with_metrics(fs, RetryPolicy::default(), registry))
        }
    }

    fn retrying<T>(&self, op: impl FnMut() -> Result<T>) -> Result<T> {
        with_retry_observed(&self.policy, |_| self.retries.inc(), op)
    }
}

impl FileSystem for RetryFs {
    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        self.retrying(|| self.inner.write(path, data.clone()))
    }

    fn read(&self, path: &str) -> Result<Bytes> {
        self.retrying(|| self.inner.read(path))
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        self.retrying(|| self.inner.read_range(path, offset, len))
    }

    fn size(&self, path: &str) -> Result<u64> {
        self.retrying(|| self.inner.size(path))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.retrying(|| self.inner.list(prefix))
    }

    fn exists(&self, path: &str) -> Result<bool> {
        self.retrying(|| self.inner.exists(path))
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.retrying(|| self.inner.delete(path))
    }

    fn stats(&self) -> FsStats {
        self.inner.stats()
    }

    fn kind(&self) -> &'static str {
        "retry"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::s3sim::{S3Config, S3SimFs};
    use std::sync::Arc;

    #[test]
    fn operations_succeed_despite_failures() {
        let flaky = Arc::new(S3SimFs::new(S3Config::flaky(0.4, 0.2, 99)));
        // 60% of requests fail: give the loop enough attempts that the
        // whole test fails with probability < 1e-4.
        let fs = RetryFs::with_policy(
            flaky,
            RetryPolicy {
                max_attempts: 25,
                base_backoff: std::time::Duration::ZERO,
                max_backoff: std::time::Duration::ZERO,
                ..Default::default()
            },
        );
        for i in 0..50 {
            let key = format!("k{i}");
            fs.write(&key, Bytes::from(vec![i as u8])).unwrap();
            assert_eq!(fs.read(&key).unwrap()[0], i as u8);
        }
        assert_eq!(fs.list("k").unwrap().len(), 50);
    }

    #[test]
    fn wrap_is_idempotent() {
        let base: SharedFs = Arc::new(crate::mem::MemFs::new());
        let once = RetryFs::wrap(base);
        assert_eq!(once.kind(), "retry");
        let twice = RetryFs::wrap(once.clone());
        assert!(Arc::ptr_eq(&once, &twice));
    }

    #[test]
    fn permanent_errors_still_surface() {
        let fs = RetryFs::new(Arc::new(crate::mem::MemFs::new()));
        assert!(matches!(
            fs.read("missing"),
            Err(eon_types::EonError::NotFound(_))
        ));
    }
}
