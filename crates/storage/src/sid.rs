//! Globally unique storage identifiers (paper §5.1, Fig 7).
//!
//! A SID combines a 120-bit random *node instance id* (regenerated every
//! time a node process starts) with a 64-bit *local id* (the catalog OID
//! counter). Any node can mint SIDs with no coordination, all nodes
//! write into one flat shared-storage namespace without collisions, and
//! cloned clusters keep generating mutually-unique names because the
//! instance id is tied to the process lifetime.
//!
//! File keys use a *hash-based prefix scheme* (§5.3): real S3 shards its
//! keyspace by prefix, so leading with an incrementing counter would
//! hotspot one partition. We lead with two hash-derived hex characters.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::RngCore;
use serde::{Deserialize, Serialize};

/// The 120-bit node instance identifier. Stored in a u128 with the top
/// byte forced to zero so exactly 120 bits carry entropy, as in Fig 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceId(pub u128);

const INSTANCE_MASK: u128 = (1u128 << 120) - 1;

impl InstanceId {
    /// Generate a fresh strongly-random instance id (the paper draws
    /// from /dev/random; `OsRng`-seeded `rand` is the Rust equivalent).
    pub fn generate() -> Self {
        let mut bytes = [0u8; 16];
        rand::thread_rng().fill_bytes(&mut bytes);
        InstanceId(u128::from_le_bytes(bytes) & INSTANCE_MASK)
    }

    /// Deterministic instance id for tests and reproducible simulations.
    pub fn from_seed(seed: u64) -> Self {
        // Spread the seed over the 120 bits with a couple of odd
        // multipliers; uniqueness across distinct seeds is what matters.
        let a = (seed as u128).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let b = (seed as u128).wrapping_mul(0xc2b2_ae3d_27d4_eb4f) << 64;
        InstanceId((a ^ b) & INSTANCE_MASK)
    }

    /// The 30-hex-char string form used as a file-name component.
    pub fn to_hex(self) -> String {
        format!("{:030x}", self.0)
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// A globally unique storage identifier: instance id + local OID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StorageId {
    pub instance: InstanceId,
    pub local: u64,
}

impl StorageId {
    pub fn new(instance: InstanceId, local: u64) -> Self {
        StorageId { instance, local }
    }

    /// The flat-namespace object key for this SID:
    /// `data/<2-hex hash prefix>/<instance-hex>_<local-hex>`.
    ///
    /// The two leading characters are derived by hashing the SID, so
    /// consecutive local ids scatter across 256 prefixes instead of
    /// hotspotting one S3 partition (§5.3).
    pub fn object_key(&self) -> String {
        let name = format!("{}_{:016x}", self.instance.to_hex(), self.local);
        format!("data/{:02x}/{}", Self::prefix_byte(&name), name)
    }

    /// Key with an extra suffix, for multi-file storage objects
    /// (per-column files within one ROS container).
    pub fn object_key_with(&self, suffix: &str) -> String {
        let name = format!("{}_{:016x}.{suffix}", self.instance.to_hex(), self.local);
        format!("data/{:02x}/{}", Self::prefix_byte(&name), name)
    }

    fn prefix_byte(name: &str) -> u8 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Final avalanche so differences in the *last* bytes of the name
        // (the incrementing local id) reach every output bit.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h >> 32) as u8
    }

    /// Whether `key` was minted by the node instance `instance`. Used by
    /// the §6.5 leak scan to skip files belonging to live nodes.
    pub fn key_has_instance(key: &str, instance: InstanceId) -> bool {
        key.rsplit('/')
            .next()
            .map(|base| base.starts_with(&instance.to_hex()))
            .unwrap_or(false)
    }
}

impl fmt::Display for StorageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_{:016x}", self.instance.to_hex(), self.local)
    }
}

/// Mints SIDs for one node process: a fixed instance id plus an
/// incrementing local counter, exactly the Fig 7 scheme.
pub struct SidFactory {
    instance: InstanceId,
    counter: AtomicU64,
}

impl SidFactory {
    pub fn new(instance: InstanceId) -> Self {
        SidFactory {
            instance,
            counter: AtomicU64::new(1),
        }
    }

    pub fn instance(&self) -> InstanceId {
        self.instance
    }

    pub fn next(&self) -> StorageId {
        StorageId::new(self.instance, self.counter.fetch_add(1, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn instance_id_is_120_bits() {
        for seed in 0..32 {
            assert_eq!(InstanceId::from_seed(seed).0 >> 120, 0);
        }
        assert_eq!(InstanceId::generate().0 >> 120, 0);
        assert_eq!(InstanceId::from_seed(1).to_hex().len(), 30);
    }

    #[test]
    fn factory_mints_unique_sids() {
        let f = SidFactory::new(InstanceId::from_seed(1));
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(f.next()));
        }
    }

    #[test]
    fn different_instances_never_collide() {
        let f1 = SidFactory::new(InstanceId::from_seed(1));
        let f2 = SidFactory::new(InstanceId::from_seed(2));
        // Same local counters, different instances: distinct keys — the
        // property that makes cluster cloning safe (§5.1).
        for _ in 0..100 {
            assert_ne!(f1.next().object_key(), f2.next().object_key());
        }
    }

    #[test]
    fn keys_scatter_over_prefixes() {
        let f = SidFactory::new(InstanceId::from_seed(3));
        let mut prefixes = HashSet::new();
        for _ in 0..512 {
            let key = f.next().object_key();
            // key = data/<xx>/<name>
            prefixes.insert(key.split('/').nth(1).unwrap().to_owned());
        }
        // With 512 sequential ids over 256 buckets we expect wide
        // coverage; a counter-prefix scheme would produce exactly 1-2.
        assert!(prefixes.len() > 100, "only {} prefixes", prefixes.len());
    }

    #[test]
    fn instance_prefix_detection() {
        let inst = InstanceId::from_seed(9);
        let other = InstanceId::from_seed(10);
        let f = SidFactory::new(inst);
        let key = f.next().object_key();
        assert!(StorageId::key_has_instance(&key, inst));
        assert!(!StorageId::key_has_instance(&key, other));
    }

    #[test]
    fn suffixed_keys_differ_from_plain() {
        let sid = StorageId::new(InstanceId::from_seed(4), 7);
        assert_ne!(sid.object_key(), sid.object_key_with("col0"));
        assert!(sid.object_key_with("col0").ends_with(".col0"));
    }
}
