//! In-memory object store. The reference implementation of the UDFS
//! trait: unit tests and the S3 simulator both build on it.

use std::collections::BTreeMap;

use bytes::Bytes;
use eon_types::{EonError, Result};
use parking_lot::Mutex;

use crate::fs::{FileSystem, FsStats};

/// A `BTreeMap`-backed object store. Keys are kept sorted so `list`
/// returns prefix ranges cheaply, like S3's paginated LIST.
pub struct MemFs {
    inner: Mutex<Inner>,
}

struct Inner {
    objects: BTreeMap<String, Bytes>,
    stats: FsStats,
}

impl MemFs {
    pub fn new() -> Self {
        MemFs {
            inner: Mutex::new(Inner {
                objects: BTreeMap::new(),
                stats: FsStats::default(),
            }),
        }
    }

    /// Number of stored objects (test helper).
    pub fn object_count(&self) -> usize {
        self.inner.lock().objects.len()
    }

    /// Total stored bytes (test helper).
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().objects.values().map(|b| b.len() as u64).sum()
    }

    /// Object lookup that bypasses the request/byte counters. The S3
    /// simulator's SELECT verb feeds the object to its compute engine
    /// in-store; that read never crosses the simulated wire, so it must
    /// not show up in [`FsStats`] as a GET.
    pub(crate) fn peek(&self, path: &str) -> Result<Bytes> {
        self.inner
            .lock()
            .objects
            .get(path)
            .cloned()
            .ok_or_else(|| EonError::NotFound(path.to_owned()))
    }
}

impl Default for MemFs {
    fn default() -> Self {
        Self::new()
    }
}

impl FileSystem for MemFs {
    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        let mut g = self.inner.lock();
        g.stats.puts += 1;
        g.stats.bytes_written += data.len() as u64;
        g.objects.insert(path.to_owned(), data);
        Ok(())
    }

    fn read(&self, path: &str) -> Result<Bytes> {
        let mut g = self.inner.lock();
        g.stats.gets += 1;
        match g.objects.get(path).cloned() {
            Some(b) => {
                g.stats.bytes_read += b.len() as u64;
                Ok(b)
            }
            None => Err(EonError::NotFound(path.to_owned())),
        }
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        // Bill only the bytes actually served: the trait default reads
        // the whole object, which would make every ranged GET count as
        // a full-object transfer in [`FsStats`] and swamp the byte
        // accounting the pushdown crossover measurements rely on.
        let mut g = self.inner.lock();
        g.stats.gets += 1;
        match g.objects.get(path) {
            Some(b) => {
                let start = (offset as usize).min(b.len());
                let end = ((offset + len) as usize).min(b.len());
                let s = b.slice(start..end);
                g.stats.bytes_read += s.len() as u64;
                Ok(s)
            }
            None => Err(EonError::NotFound(path.to_owned())),
        }
    }

    fn size(&self, path: &str) -> Result<u64> {
        let mut g = self.inner.lock();
        g.stats.lists += 1;
        g.objects
            .get(path)
            .map(|b| b.len() as u64)
            .ok_or_else(|| EonError::NotFound(path.to_owned()))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let mut g = self.inner.lock();
        g.stats.lists += 1;
        Ok(g.objects
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect())
    }

    fn exists(&self, path: &str) -> Result<bool> {
        // Direct key probe; the trait default would list the whole
        // prefix range. Still billed as a list, like S3's LIST-based
        // existence check (§5.3).
        let mut g = self.inner.lock();
        g.stats.lists += 1;
        Ok(g.objects.contains_key(path))
    }

    fn delete(&self, path: &str) -> Result<()> {
        let mut g = self.inner.lock();
        g.stats.deletes += 1;
        g.objects.remove(path);
        Ok(())
    }

    fn stats(&self) -> FsStats {
        self.inner.lock().stats
    }

    fn kind(&self) -> &'static str {
        "mem"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let fs = MemFs::new();
        fs.write("x/y/z", Bytes::from_static(b"data")).unwrap();
        assert_eq!(fs.read("x/y/z").unwrap().as_ref(), b"data");
        assert_eq!(fs.size("x/y/z").unwrap(), 4);
    }

    #[test]
    fn read_missing_is_not_found() {
        let fs = MemFs::new();
        assert!(matches!(fs.read("nope"), Err(EonError::NotFound(_))));
        assert!(matches!(fs.size("nope"), Err(EonError::NotFound(_))));
    }

    #[test]
    fn overwrite_replaces() {
        let fs = MemFs::new();
        fs.write("k", Bytes::from_static(b"one")).unwrap();
        fs.write("k", Bytes::from_static(b"twotwo")).unwrap();
        assert_eq!(fs.read("k").unwrap().as_ref(), b"twotwo");
        assert_eq!(fs.object_count(), 1);
    }

    #[test]
    fn list_prefix_sorted() {
        let fs = MemFs::new();
        for k in ["b/2", "a/1", "a/3", "a/2", "c"] {
            fs.write(k, Bytes::new()).unwrap();
        }
        assert_eq!(fs.list("a/").unwrap(), vec!["a/1", "a/2", "a/3"]);
        assert_eq!(fs.list("").unwrap().len(), 5);
        assert!(fs.list("zz").unwrap().is_empty());
    }

    #[test]
    fn delete_is_idempotent() {
        let fs = MemFs::new();
        fs.write("k", Bytes::from_static(b"v")).unwrap();
        fs.delete("k").unwrap();
        fs.delete("k").unwrap(); // second delete: no error
        assert!(!fs.exists("k").unwrap());
    }

    #[test]
    fn stats_track_requests() {
        let fs = MemFs::new();
        fs.write("k", Bytes::from_static(b"abc")).unwrap();
        fs.read("k").unwrap();
        fs.list("").unwrap();
        fs.delete("k").unwrap();
        let s = fs.stats();
        assert_eq!((s.puts, s.gets, s.lists, s.deletes), (1, 1, 1, 1));
        assert_eq!(s.bytes_written, 3);
        assert_eq!(s.bytes_read, 3);
    }
}
