//! The UDFS API (paper §5.3, Fig 9): one trait through which the
//! execution engine, catalog, and cache reach any filesystem.
//!
//! The API is deliberately shaped like an object store, not POSIX:
//! whole-object `write`, no rename, no append — because "S3 objects are
//! immutable" and Vertica's load path was reworked to not need those
//! operations (§5.3). `exists` is implemented via the list API rather
//! than a HEAD request, mirroring the paper's read-after-write
//! consistency workaround.

use std::sync::Arc;

use bytes::Bytes;
use eon_types::Result;

/// Counters every filesystem keeps. For [`crate::S3SimFs`] these also
/// drive the dollar-cost accounting (§5: "requests cost money").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FsStats {
    pub gets: u64,
    pub puts: u64,
    pub lists: u64,
    pub deletes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Accumulated request cost in nano-dollars (0 for local
    /// filesystems).
    pub cost_nanodollars: u64,
}

impl FsStats {
    pub fn requests(&self) -> u64 {
        self.gets + self.puts + self.lists + self.deletes
    }
}

/// Result of a server-side `select` computation: the serialized
/// response plus how many object bytes the engine had to scan to
/// produce it. The split drives the two-axis pricing model (bytes
/// scanned vs bytes returned) that makes pushdown a cost decision.
#[derive(Debug, Clone)]
pub struct SelectOutput {
    pub response: Bytes,
    pub scanned_bytes: u64,
}

/// The compute half of an S3-Select-style `select` verb. The store
/// hands the engine the raw object plus an opaque serialized request;
/// the engine parses both and either answers (`Ok(Some(_))`), declines
/// because the request shape is unsupported (`Ok(None)` — the caller
/// falls back to plain GETs), or fails (corrupt object, malformed
/// request).
///
/// The engine lives above the storage crate (it understands the ROS
/// container format), so stores hold it as a trait object injected via
/// [`FileSystem::install_select_engine`].
pub trait SelectEngine: Send + Sync {
    fn select(&self, object: &Bytes, request: &[u8]) -> Result<Option<SelectOutput>>;
}

/// The user-defined filesystem abstraction.
///
/// All paths are `/`-separated keys relative to the filesystem root; the
/// empty prefix lists everything. Implementations must be `Send + Sync`:
/// every node of the cluster shares one instance of the shared storage.
pub trait FileSystem: Send + Sync {
    /// Create or replace the object at `path` with `data`. Whole-object
    /// semantics: there is no append, matching S3 (§5.3).
    fn write(&self, path: &str, data: Bytes) -> Result<()>;

    /// Read the entire object.
    fn read(&self, path: &str) -> Result<Bytes>;

    /// Read `len` bytes starting at `offset`. Default implementation
    /// reads the whole object and slices; the POSIX backend overrides
    /// this with a positioned read.
    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        let all = self.read(path)?;
        let start = (offset as usize).min(all.len());
        let end = ((offset + len) as usize).min(all.len());
        Ok(all.slice(start..end))
    }

    /// Object size in bytes.
    fn size(&self, path: &str) -> Result<u64>;

    /// All keys starting with `prefix`, sorted.
    fn list(&self, prefix: &str) -> Result<Vec<String>>;

    /// Existence check. Per §5.3 Vertica avoids HEAD (it poisons
    /// read-after-write consistency) and uses the list API instead; the
    /// default implementation does exactly that.
    fn exists(&self, path: &str) -> Result<bool> {
        Ok(self.list(path)?.iter().any(|k| k == path))
    }

    /// Delete the object. Deleting a missing object is not an error
    /// (S3 semantics), so the delete-file protocol of §6.5 is idempotent.
    fn delete(&self, path: &str) -> Result<()>;

    /// S3-Select-style pushdown: run `request` (an opaque serialized
    /// `SelectRequest`) against the object at `path` inside the store
    /// and return only the surviving/partial data. `Ok(None)` means the
    /// store (or its installed engine) does not support this request —
    /// the caller must fall back to plain reads. Default: unsupported.
    fn select(&self, _path: &str, _request: &[u8]) -> Result<Option<Bytes>> {
        Ok(None)
    }

    /// Install the compute engine backing [`select`](Self::select).
    /// Wrappers (retry, cache) forward to their inner store; plain
    /// filesystems ignore it (their `select` stays unsupported).
    fn install_select_engine(&self, _engine: Arc<dyn SelectEngine>) {}

    /// Snapshot of the request counters.
    fn stats(&self) -> FsStats;

    /// A short name for diagnostics ("mem", "posix", "s3sim").
    fn kind(&self) -> &'static str;
}

/// Shared handle to a filesystem. Nodes, caches, and services all hold
/// clones of this.
pub type SharedFs = Arc<dyn FileSystem>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemFs;

    #[test]
    fn exists_matches_exact_keys_only() {
        let fs = MemFs::new();
        fs.write("a/b", Bytes::from_static(b"x")).unwrap();
        assert!(fs.exists("a/b").unwrap());
        assert!(!fs.exists("a").unwrap()); // prefix but not a key
        assert!(!fs.exists("a/b/c").unwrap());
    }

    #[test]
    fn default_read_range_slices() {
        let fs = MemFs::new();
        fs.write("k", Bytes::from_static(b"hello world")).unwrap();
        assert_eq!(fs.read_range("k", 6, 5).unwrap().as_ref(), b"world");
        // Out-of-bounds clamps rather than erroring, like a short read.
        assert_eq!(fs.read_range("k", 6, 100).unwrap().as_ref(), b"world");
        assert_eq!(fs.read_range("k", 100, 5).unwrap().len(), 0);
    }

    #[test]
    fn stats_requests_sum() {
        let s = FsStats {
            gets: 1,
            puts: 2,
            lists: 3,
            deletes: 4,
            ..Default::default()
        };
        assert_eq!(s.requests(), 10);
    }
}
