//! Sharding machinery (paper §3, §4.1):
//!
//! * [`maxflow`] — a Dinic max-flow solver with incrementally adjustable
//!   capacities, the engine behind participating-subscription selection.
//! * [`assignment`] — the Fig 6 graph construction: source → shard →
//!   node → sink, successive capacity rounds, priority tiers, and
//!   edge-order variation for load spreading.
//! * [`subscription`] — the Fig 4 subscription state machine and its
//!   legality rules (e.g. a subscription cannot drop until the shard
//!   stays fault tolerant).
//! * [`rebalance`] — computing the target node↔shard subscription map
//!   for a cluster (K-safety, subcluster coverage).
//! * [`truncation`] — the Fig 5 consensus truncation version: per-shard
//!   max over subscribers' sync intervals, min across shards.

pub mod assignment;
pub mod maxflow;
pub mod rebalance;
pub mod subscription;
pub mod truncation;

pub use assignment::{select_participants, AssignmentProblem};
pub use maxflow::MaxFlow;
pub use rebalance::rebalance_plan;
pub use subscription::{can_drop_subscription, can_transition};
pub use truncation::consensus_truncation;
