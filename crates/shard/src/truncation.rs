//! Consensus truncation version (paper §3.5, Fig 5).
//!
//! Each node maintains a *sync interval* — the version range it could
//! revive to from its uploads. The elected leader computes, per shard,
//! the best version any subscriber has durably uploaded (max over
//! subscribers), then takes the minimum across shards: the highest
//! version consistent with respect to *every* shard. Fig 5's example:
//! shards see 5, 7, 5, 7 → consensus 5.

use std::collections::HashMap;

use eon_catalog::SyncInterval;
use eon_types::{NodeId, ShardId, TxnVersion};

/// Compute the consensus truncation version.
///
/// `subscribers` maps each shard to the nodes whose catalogs carry it
/// (ACTIVE subscribers); `intervals` maps each node to its sync
/// interval. Returns `None` when some shard has no subscriber with any
/// uploaded metadata — no consistent revive point exists.
pub fn consensus_truncation(
    subscribers: &HashMap<ShardId, Vec<NodeId>>,
    intervals: &HashMap<NodeId, SyncInterval>,
) -> Option<TxnVersion> {
    let mut consensus: Option<TxnVersion> = None;
    for (shard, nodes) in subscribers {
        // Upper bound of the shard: the best any subscriber can offer.
        let best = nodes
            .iter()
            .filter_map(|n| intervals.get(n))
            .map(|si| si.hi)
            .max()?;
        let _ = shard;
        consensus = Some(match consensus {
            None => best,
            Some(c) => c.min(best),
        });
    }
    consensus
}

#[cfg(test)]
mod tests {
    use super::*;

    fn si(hi: u64) -> SyncInterval {
        SyncInterval {
            lo: TxnVersion(0),
            hi: TxnVersion(hi),
        }
    }

    fn subs(pairs: &[(u64, &[u64])]) -> HashMap<ShardId, Vec<NodeId>> {
        pairs
            .iter()
            .map(|(s, ns)| (ShardId(*s), ns.iter().map(|&n| NodeId(n)).collect()))
            .collect()
    }

    #[test]
    fn fig5_example() {
        // 4 nodes, 4 shards. Node upload versions: n1=5, n2=7, n3=5,
        // n4=7 with Fig 5's ring subscriptions; shard maxima 7,7,5,7 →
        // consensus 5.
        let subscribers = subs(&[
            (0, &[1, 2]),
            (1, &[2, 3]),
            (2, &[3, 4]),
            (3, &[4, 1]),
        ]);
        let intervals: HashMap<NodeId, SyncInterval> = [
            (NodeId(1), si(5)),
            (NodeId(2), si(7)),
            (NodeId(3), si(4)),
            (NodeId(4), si(5)),
        ]
        .into();
        // shard0: max(5,7)=7; shard1: max(7,4)=7; shard2: max(4,5)=5;
        // shard3: max(5,5)=5 → min = 5.
        assert_eq!(
            consensus_truncation(&subscribers, &intervals),
            Some(TxnVersion(5))
        );
    }

    #[test]
    fn uniform_uploads_give_that_version() {
        let subscribers = subs(&[(0, &[1]), (1, &[2])]);
        let intervals = [(NodeId(1), si(9)), (NodeId(2), si(9))].into();
        assert_eq!(
            consensus_truncation(&subscribers, &intervals),
            Some(TxnVersion(9))
        );
    }

    #[test]
    fn missing_node_interval_fails_shard() {
        let subscribers = subs(&[(0, &[1]), (1, &[2])]);
        let intervals = [(NodeId(1), si(9))].into();
        assert_eq!(consensus_truncation(&subscribers, &intervals), None);
    }

    #[test]
    fn lagging_node_does_not_hold_back_covered_shard() {
        // Shard 0 has a fast and a slow subscriber: the fast one's
        // upload defines the shard's bound (uploads increase the upper
        // bound, per §3.5).
        let subscribers = subs(&[(0, &[1, 2])]);
        let intervals = [(NodeId(1), si(2)), (NodeId(2), si(10))].into();
        assert_eq!(
            consensus_truncation(&subscribers, &intervals),
            Some(TxnVersion(10))
        );
    }

    #[test]
    fn empty_subscribers_map_is_none() {
        let subscribers = HashMap::new();
        let intervals = HashMap::new();
        assert_eq!(consensus_truncation(&subscribers, &intervals), None);
    }
}
