//! Dinic max-flow over small graphs, with capacities that can be raised
//! between runs.
//!
//! The participating-subscription algorithm (§4.1) "runs successive
//! rounds of max flow, leaving the existing flow intact while
//! incrementally increasing the capacity of the node-to-SINK edges", so
//! the solver must support (a) querying flow on specific edges and
//! (b) adding capacity to an edge and resuming augmentation without
//! recomputing from scratch. Graphs here are tiny (nodes + shards +
//! 2 vertices), so Dinic is far more than fast enough.

use std::collections::VecDeque;

/// An edge handle returned by [`MaxFlow::add_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeId(usize);

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: i64,
    flow: i64,
}

/// Incremental Dinic max-flow.
pub struct MaxFlow {
    /// Forward/backward edges interleaved: edge `2k` is forward,
    /// `2k + 1` is its residual twin.
    edges: Vec<Edge>,
    adj: Vec<Vec<usize>>,
    level: Vec<i32>,
    it: Vec<usize>,
}

impl MaxFlow {
    pub fn new(num_vertices: usize) -> Self {
        MaxFlow {
            edges: Vec::new(),
            adj: vec![Vec::new(); num_vertices],
            level: vec![-1; num_vertices],
            it: vec![0; num_vertices],
        }
    }

    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Add a directed edge with the given capacity.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64) -> EdgeId {
        let id = self.edges.len();
        self.edges.push(Edge { to, cap, flow: 0 });
        self.edges.push(Edge {
            to: from,
            cap: 0,
            flow: 0,
        });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        EdgeId(id)
    }

    /// Raise the capacity of an existing edge (never lowers).
    pub fn add_capacity(&mut self, e: EdgeId, extra: i64) {
        assert!(extra >= 0);
        self.edges[e.0].cap += extra;
    }

    /// Current flow across an edge.
    pub fn flow_on(&self, e: EdgeId) -> i64 {
        self.edges[e.0].flow
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut q = VecDeque::new();
        self.level[s] = 0;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &eid in &self.adj[u] {
                let e = &self.edges[eid];
                if e.cap - e.flow > 0 && self.level[e.to] < 0 {
                    self.level[e.to] = self.level[u] + 1;
                    q.push_back(e.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, pushed: i64) -> i64 {
        if u == t {
            return pushed;
        }
        while self.it[u] < self.adj[u].len() {
            let eid = self.adj[u][self.it[u]];
            let (to, residual) = {
                let e = &self.edges[eid];
                (e.to, e.cap - e.flow)
            };
            if residual > 0 && self.level[to] == self.level[u] + 1 {
                let d = self.dfs(to, t, pushed.min(residual));
                if d > 0 {
                    self.edges[eid].flow += d;
                    self.edges[eid ^ 1].flow -= d;
                    return d;
                }
            }
            self.it[u] += 1;
        }
        0
    }

    /// Push as much additional flow from `s` to `t` as the residual
    /// graph allows; returns the *increment*. Existing flow is kept, so
    /// calling again after `add_capacity` implements the paper's
    /// successive-rounds scheme.
    pub fn run(&mut self, s: usize, t: usize) -> i64 {
        let mut total = 0;
        while self.bfs(s, t) {
            self.it.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, i64::MAX);
                if f == 0 {
                    break;
                }
                total += f;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path() {
        let mut g = MaxFlow::new(3);
        g.add_edge(0, 1, 5);
        g.add_edge(1, 2, 3);
        assert_eq!(g.run(0, 2), 3);
    }

    #[test]
    fn classic_diamond() {
        // s -> a, b -> t with a cross edge.
        let mut g = MaxFlow::new(4);
        g.add_edge(0, 1, 3);
        g.add_edge(0, 2, 2);
        g.add_edge(1, 3, 2);
        g.add_edge(2, 3, 3);
        g.add_edge(1, 2, 2);
        assert_eq!(g.run(0, 3), 5);
    }

    #[test]
    fn flow_on_edges_is_consistent() {
        let mut g = MaxFlow::new(4);
        let e1 = g.add_edge(0, 1, 10);
        let e2 = g.add_edge(1, 2, 4);
        let e3 = g.add_edge(2, 3, 10);
        assert_eq!(g.run(0, 3), 4);
        assert_eq!(g.flow_on(e1), 4);
        assert_eq!(g.flow_on(e2), 4);
        assert_eq!(g.flow_on(e3), 4);
    }

    #[test]
    fn incremental_capacity_rounds() {
        // Bottleneck at the sink edge; raising it admits more flow
        // while keeping prior flow intact — the §4.1 pattern.
        let mut g = MaxFlow::new(4);
        g.add_edge(0, 1, 2);
        g.add_edge(0, 2, 2);
        let s1 = g.add_edge(1, 3, 1);
        let s2 = g.add_edge(2, 3, 1);
        assert_eq!(g.run(0, 3), 2);
        g.add_capacity(s1, 1);
        g.add_capacity(s2, 1);
        assert_eq!(g.run(0, 3), 2); // increment only
        assert_eq!(g.flow_on(s1), 2);
        assert_eq!(g.flow_on(s2), 2);
    }

    #[test]
    fn disconnected_has_zero_flow() {
        let mut g = MaxFlow::new(4);
        g.add_edge(0, 1, 5);
        g.add_edge(2, 3, 5);
        assert_eq!(g.run(0, 3), 0);
    }

    #[test]
    fn bipartite_matching_shape() {
        // 3 shards, 3 nodes, complete bipartite: perfect matching.
        let s = 0usize;
        let t = 7usize;
        let mut g = MaxFlow::new(8);
        for shard in 1..=3 {
            g.add_edge(s, shard, 1);
        }
        for node in 4..=6 {
            g.add_edge(node, t, 1);
        }
        for shard in 1..=3 {
            for node in 4..=6 {
                g.add_edge(shard, node, 1);
            }
        }
        assert_eq!(g.run(s, t), 3);
    }
}
