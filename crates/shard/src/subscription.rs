//! Subscription state-machine rules (paper §3.3, Fig 4).
//!
//! Transitions: `(none) → PENDING → PASSIVE → ACTIVE → REMOVING →
//! (dropped)`, plus the recovery path `ACTIVE → PENDING` when a downed
//! node rejoins. Dropping is gated on the shard remaining fault
//! tolerant without the leaving subscriber.

use eon_catalog::{CatalogState, SubState};
use eon_types::{NodeId, ShardId};

/// Is `from → to` a legal state transition?
pub fn can_transition(from: Option<SubState>, to: SubState) -> bool {
    use SubState::*;
    match (from, to) {
        // Creation.
        (None, Pending) => true,
        // Metadata transfer finished under the commit lock.
        (Some(Pending), Passive) => true,
        // Cache warm finished, or subscriber skipped warming.
        (Some(Passive), Active) => true,
        // Declare intent to drop.
        (Some(Active), Removing) => true,
        // Node recovery forces a re-subscription (§3.3: "transitions all
        // of the ACTIVE subscriptions for the recovering node to
        // PENDING").
        (Some(Active), Pending) => true,
        // A draining subscription can be reinstated.
        (Some(Removing), Active) => true,
        _ => false,
    }
}

/// May `node` drop its subscription to `shard` right now? Only when
/// enough *other* ACTIVE subscribers exist to keep the shard fault
/// tolerant (§3.3), i.e. at least `k_safety` of them.
pub fn can_drop_subscription(
    state: &CatalogState,
    node: NodeId,
    shard: ShardId,
    k_safety: usize,
) -> bool {
    let others = state
        .subscribers_in(shard, SubState::Active)
        .into_iter()
        .filter(|&n| n != node)
        .count();
    others >= k_safety.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eon_catalog::{CatalogOp, Subscription};
    use eon_types::TxnVersion;

    #[test]
    fn legal_lifecycle() {
        use SubState::*;
        assert!(can_transition(None, Pending));
        assert!(can_transition(Some(Pending), Passive));
        assert!(can_transition(Some(Passive), Active));
        assert!(can_transition(Some(Active), Removing));
        assert!(can_transition(Some(Active), Pending)); // recovery
        assert!(can_transition(Some(Removing), Active)); // reinstate
    }

    #[test]
    fn illegal_shortcuts_rejected() {
        use SubState::*;
        assert!(!can_transition(None, Active));
        assert!(!can_transition(None, Passive));
        assert!(!can_transition(Some(Pending), Active));
        assert!(!can_transition(Some(Passive), Removing));
        assert!(!can_transition(Some(Removing), Pending));
    }

    fn state_with_subs(subs: &[(u64, u64, SubState)]) -> CatalogState {
        let mut st = CatalogState::default();
        for &(n, s, sub) in subs {
            st.apply(
                &CatalogOp::UpsertSubscription(Subscription {
                    node: NodeId(n),
                    shard: ShardId(s),
                    state: sub,
                }),
                TxnVersion(1),
            )
            .unwrap();
        }
        st
    }

    #[test]
    fn drop_blocked_when_last_subscriber() {
        let st = state_with_subs(&[(1, 0, SubState::Active)]);
        assert!(!can_drop_subscription(&st, NodeId(1), ShardId(0), 1));
    }

    #[test]
    fn drop_allowed_with_enough_peers() {
        let st = state_with_subs(&[
            (1, 0, SubState::Active),
            (2, 0, SubState::Active),
            (3, 0, SubState::Active),
        ]);
        assert!(can_drop_subscription(&st, NodeId(1), ShardId(0), 2));
        // k_safety 3 needs three *other* active subscribers
        assert!(!can_drop_subscription(&st, NodeId(1), ShardId(0), 3));
    }

    #[test]
    fn passive_peers_do_not_count() {
        let st = state_with_subs(&[
            (1, 0, SubState::Active),
            (2, 0, SubState::Passive),
        ]);
        assert!(!can_drop_subscription(&st, NodeId(1), ShardId(0), 1));
    }
}
