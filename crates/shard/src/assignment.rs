//! Participating-subscription selection (paper §4.1, Fig 6).
//!
//! For each query session the engine picks, per shard, exactly one
//! serving node, modelled as a max-flow problem:
//!
//! * SOURCE → each shard vertex, capacity 1 (every shard must be
//!   served);
//! * shard → node, capacity 1, for each node that can serve the shard
//!   (its subscription is ACTIVE or REMOVING);
//! * node → SINK, starting capacity `max(S/N, 1)` — even outflow forces
//!   a balanced assignment.
//!
//! If the max flow is less than the shard count (asymmetric
//! subscriptions), successive rounds raise node→SINK capacities and
//! resume, keeping prior flow. Priority tiers (subcluster/rack
//! affinity, §4.3) add SINK edges tier by tier, so lower-priority nodes
//! only participate when the preferred set cannot cover all shards.
//! Edge insertion order is varied by a session seed so repeated queries
//! spread over the eligible nodes (§4.1's throughput trick).

use std::collections::HashMap;

use eon_types::{EonError, NodeId, Result, ShardId};

use crate::maxflow::MaxFlow;

/// Inputs to participant selection.
#[derive(Debug, Clone, Default)]
pub struct AssignmentProblem {
    pub shards: Vec<ShardId>,
    /// Nodes grouped into priority tiers, highest priority first. Tier
    /// 0 might be "nodes in the client's subcluster" (§4.3) or "same
    /// rack"; later tiers join only if earlier ones cannot cover.
    pub tiers: Vec<Vec<NodeId>>,
    /// (node, shard) pairs where the node can serve the shard.
    pub can_serve: Vec<(NodeId, ShardId)>,
}

impl AssignmentProblem {
    /// Single-tier convenience constructor.
    pub fn flat(
        shards: Vec<ShardId>,
        nodes: Vec<NodeId>,
        can_serve: Vec<(NodeId, ShardId)>,
    ) -> Self {
        AssignmentProblem {
            shards,
            tiers: vec![nodes],
            can_serve,
        }
    }
}

/// Deterministic seeded shuffle (Fisher–Yates with a splitmix64 PRNG) —
/// the "vary the order the graph edges are created" device. Using our
/// own tiny PRNG keeps the crate dependency-free and runs reproducible.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    let mut next = move || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Select one serving node per shard. Returns
/// `Err(ClusterDown)` when no assignment covers every shard (some shard
/// has no eligible subscriber — the cluster-invariant violation of
/// §3.4).
pub fn select_participants(
    problem: &AssignmentProblem,
    seed: u64,
) -> Result<HashMap<ShardId, NodeId>> {
    let s_count = problem.shards.len();
    if s_count == 0 {
        return Ok(HashMap::new());
    }
    let all_nodes: Vec<NodeId> = problem.tiers.iter().flatten().copied().collect();
    let n_count = all_nodes.len();
    if n_count == 0 {
        return Err(EonError::ClusterDown("no nodes available".into()));
    }

    // Vertex numbering: 0 = source, 1..=S shards, S+1..=S+N nodes,
    // S+N+1 = sink.
    let source = 0usize;
    let sink = s_count + n_count + 1;
    let shard_vertex: HashMap<ShardId, usize> = problem
        .shards
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, 1 + i))
        .collect();
    let node_vertex: HashMap<NodeId, usize> = all_nodes
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, 1 + s_count + i))
        .collect();

    let mut g = MaxFlow::new(sink + 1);
    for &sh in &problem.shards {
        g.add_edge(source, shard_vertex[&sh], 1);
    }
    // Shard→node edges in seed-varied order, so ties in the max flow
    // break differently per session.
    let mut serve_edges: Vec<(NodeId, ShardId)> = problem
        .can_serve
        .iter()
        .filter(|(n, s)| node_vertex.contains_key(n) && shard_vertex.contains_key(s))
        .copied()
        .collect();
    shuffle(&mut serve_edges, seed);
    let mut edge_ids = Vec::with_capacity(serve_edges.len());
    for &(n, s) in &serve_edges {
        let e = g.add_edge(shard_vertex[&s], node_vertex[&n], 1);
        edge_ids.push((e, s, n));
    }

    // Balanced starting outflow: each node may take max(S/N, 1).
    let base_cap = ((s_count / n_count).max(1)) as i64;
    let mut sink_edges: HashMap<NodeId, crate::maxflow::EdgeId> = HashMap::new();
    let mut total_flow = 0i64;

    for (tier_idx, tier) in problem.tiers.iter().enumerate() {
        // Add this tier's SINK edges (in seed-varied order).
        let mut tier_nodes = tier.clone();
        shuffle(&mut tier_nodes, seed ^ (tier_idx as u64).wrapping_mul(0xabcd));
        for &n in &tier_nodes {
            sink_edges
                .entry(n)
                .or_insert_with(|| g.add_edge(node_vertex[&n], sink, base_cap));
        }
        total_flow += g.run(source, sink);
        // Successive capacity rounds within the tier set before falling
        // through to the next (lower-priority) tier.
        let mut round = 0;
        while total_flow < s_count as i64 && round < s_count {
            for e in sink_edges.values() {
                g.add_capacity(*e, 1);
            }
            let inc = g.run(source, sink);
            if inc == 0 && round > 0 {
                break; // capacity is not the constraint; need more tiers
            }
            total_flow += inc;
            round += 1;
        }
        if total_flow == s_count as i64 {
            break;
        }
    }

    if total_flow < s_count as i64 {
        return Err(EonError::ClusterDown(format!(
            "only {total_flow} of {s_count} shards coverable"
        )));
    }

    let mut out = HashMap::with_capacity(s_count);
    for (e, s, n) in edge_ids {
        if g.flow_on(e) > 0 {
            out.insert(s, n);
        }
    }
    debug_assert_eq!(out.len(), s_count);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn ids(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn shards(n: u64) -> Vec<ShardId> {
        (0..n).map(ShardId).collect()
    }

    fn full_mesh(nodes: &[NodeId], shs: &[ShardId]) -> Vec<(NodeId, ShardId)> {
        nodes
            .iter()
            .flat_map(|&n| shs.iter().map(move |&s| (n, s)))
            .collect()
    }

    #[test]
    fn complete_graph_assigns_every_shard() {
        let p = AssignmentProblem::flat(shards(4), ids(4), full_mesh(&ids(4), &shards(4)));
        let a = select_participants(&p, 1).unwrap();
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn balanced_when_nodes_equal_shards() {
        // base capacity 1 forces a perfect matching: 4 distinct nodes.
        let p = AssignmentProblem::flat(shards(4), ids(4), full_mesh(&ids(4), &shards(4)));
        let a = select_participants(&p, 7).unwrap();
        let distinct: HashSet<NodeId> = a.values().copied().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn more_nodes_than_shards_uses_subset() {
        let p = AssignmentProblem::flat(shards(3), ids(9), full_mesh(&ids(9), &shards(3)));
        let a = select_participants(&p, 3).unwrap();
        assert_eq!(a.len(), 3);
        let distinct: HashSet<NodeId> = a.values().copied().collect();
        assert_eq!(distinct.len(), 3, "each shard on its own node");
    }

    #[test]
    fn single_node_serving_everything_needs_capacity_rounds() {
        // The paper's pathological example: only one node serves every
        // shard — successive rounds must still produce a complete
        // assignment.
        let nodes = ids(1);
        let shs = shards(5);
        let p = AssignmentProblem::flat(shs.clone(), nodes, full_mesh(&ids(1), &shs));
        let a = select_participants(&p, 0).unwrap();
        assert_eq!(a.len(), 5);
        assert!(a.values().all(|&n| n == NodeId(0)));
    }

    #[test]
    fn uncovered_shard_is_cluster_down() {
        // Shard 2 has no subscriber.
        let can = vec![
            (NodeId(0), ShardId(0)),
            (NodeId(1), ShardId(1)),
        ];
        let p = AssignmentProblem::flat(shards(3), ids(2), can);
        assert!(matches!(
            select_participants(&p, 0),
            Err(EonError::ClusterDown(_))
        ));
    }

    #[test]
    fn no_nodes_is_cluster_down() {
        let p = AssignmentProblem::flat(shards(2), vec![], vec![]);
        assert!(select_participants(&p, 0).is_err());
    }

    #[test]
    fn seed_varies_selection() {
        // 6 nodes / 3 shards: many valid assignments; different seeds
        // should not always pick the same nodes (the load-spreading
        // property). Check that across seeds we see >3 distinct nodes.
        let p = AssignmentProblem::flat(shards(3), ids(6), full_mesh(&ids(6), &shards(3)));
        let mut seen: HashSet<NodeId> = HashSet::new();
        for seed in 0..24 {
            let a = select_participants(&p, seed).unwrap();
            seen.extend(a.values().copied());
        }
        assert!(seen.len() > 3, "only {} nodes ever selected", seen.len());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = AssignmentProblem::flat(shards(4), ids(6), full_mesh(&ids(6), &shards(4)));
        let a = select_participants(&p, 99).unwrap();
        let b = select_participants(&p, 99).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn priority_tier_preferred_when_sufficient() {
        // Tier 0 = subcluster {0,1}; both can serve everything, so tier
        // 1 nodes must not appear (§4.3 workload isolation).
        let shs = shards(2);
        let all = ids(4);
        let p = AssignmentProblem {
            shards: shs.clone(),
            tiers: vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]],
            can_serve: full_mesh(&all, &shs),
        };
        for seed in 0..8 {
            let a = select_participants(&p, seed).unwrap();
            assert!(a.values().all(|n| n.0 < 2), "escaped subcluster: {a:?}");
        }
    }

    #[test]
    fn lower_tier_joins_when_needed() {
        // Tier-0 node only serves shard 0; shard 1 needs tier 1.
        let p = AssignmentProblem {
            shards: shards(2),
            tiers: vec![vec![NodeId(0)], vec![NodeId(1)]],
            can_serve: vec![
                (NodeId(0), ShardId(0)),
                (NodeId(1), ShardId(0)),
                (NodeId(1), ShardId(1)),
            ],
        };
        let a = select_participants(&p, 0).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a[&ShardId(1)], NodeId(1));
    }

    #[test]
    fn empty_shards_trivially_ok() {
        let p = AssignmentProblem::flat(vec![], ids(2), vec![]);
        assert!(select_participants(&p, 0).unwrap().is_empty());
    }
}
