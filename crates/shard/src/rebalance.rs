//! Subscription rebalance (paper §3.1, §6.4): compute the target
//! node↔shard subscription map for the current node set and emit the
//! catalog ops that move the cluster toward it.
//!
//! Layout policy: nodes are arranged in a logical ring; node `i`
//! subscribes to shards `i, i+1, …, i+k-1 (mod S)` scaled to the node
//! count. This is the Eon analog of Enterprise's rotated buddy
//! projections — adjacent nodes back each other up — and guarantees
//! every shard has `min(k_safety+1, N)` subscribers with balanced
//! per-node load.

use eon_catalog::{CatalogOp, CatalogState, SubState, Subscription};
use eon_types::{NodeId, ShardId};

/// Desired subscriber multiplicity per shard given `k_safety` (number
/// of tolerated node failures).
pub fn replication_factor(k_safety: usize, node_count: usize) -> usize {
    (k_safety + 1).min(node_count.max(1))
}

/// The target map: for each shard, which nodes should subscribe.
///
/// Two properties must hold simultaneously:
///
/// 1. every shard has at least `k_safety + 1` subscribers (fault
///    tolerance, §3.1);
/// 2. **every node subscribes to at least one shard** — Elastic
///    Throughput Scaling (§4.2) only works if added nodes can serve
///    queries, so when nodes outnumber shards the subscriber
///    multiplicity per shard grows with the cluster.
///
/// Layout: node `j` takes shards `j, j+1, … (mod S)` — a rotated ring,
/// walked from the node side so big clusters spread instead of leaving
/// high-numbered nodes idle; shards short of `k_safety + 1` top up from
/// the ring.
pub fn target_subscribers(
    shards: &[ShardId],
    nodes: &[NodeId],
    k_safety: usize,
) -> Vec<(ShardId, Vec<NodeId>)> {
    let n = nodes.len();
    let s_count = shards.len();
    if n == 0 || s_count == 0 {
        return shards.iter().map(|&s| (s, Vec::new())).collect();
    }
    let rf = replication_factor(k_safety, n);
    let per_node = (s_count * rf).div_ceil(n).clamp(1, s_count);
    let mut sorted_nodes = nodes.to_vec();
    sorted_nodes.sort();

    let mut subs: Vec<Vec<NodeId>> = vec![Vec::new(); s_count];
    for (j, &node) in sorted_nodes.iter().enumerate() {
        for r in 0..per_node {
            let sh = (j + r) % s_count;
            if !subs[sh].contains(&node) {
                subs[sh].push(node);
            }
        }
    }
    // Top up shards still short of the replication factor.
    for (i, shard_subs) in subs.iter_mut().enumerate() {
        let mut j = i;
        while shard_subs.len() < rf {
            let cand = sorted_nodes[j % n];
            if !shard_subs.contains(&cand) {
                shard_subs.push(cand);
            }
            j += 1;
        }
    }
    shards.iter().copied().zip(subs).collect()
}

/// Compute the ops that move the current subscription state toward the
/// target: create missing subscriptions as PENDING, mark extra ACTIVE
/// subscriptions REMOVING (only when the shard stays fault tolerant),
/// and drop REMOVING subscriptions that are now safe to drop.
pub fn rebalance_plan(
    state: &CatalogState,
    nodes: &[NodeId],
    k_safety: usize,
) -> Vec<CatalogOp> {
    let shards: Vec<ShardId> = state.shards.iter().map(|s| s.id).collect();
    if nodes.is_empty() || shards.is_empty() {
        return Vec::new();
    }
    let mut ops = Vec::new();
    for (shard, want) in target_subscribers(&shards, nodes, k_safety) {
        let have_active = state.subscribers_in(shard, SubState::Active);
        for &n in &want {
            if !state.subscriptions.contains_key(&(n, shard)) {
                ops.push(CatalogOp::UpsertSubscription(Subscription {
                    node: n,
                    shard,
                    state: SubState::Pending,
                }));
            }
        }
        // Surplus ACTIVE subscribers move to REMOVING, provided enough
        // wanted subscribers are already ACTIVE to keep fault tolerance.
        let wanted_active = have_active.iter().filter(|n| want.contains(n)).count();
        if wanted_active >= replication_factor(k_safety, nodes.len()) {
            for &n in &have_active {
                if !want.contains(&n) {
                    ops.push(CatalogOp::UpsertSubscription(Subscription {
                        node: n,
                        shard,
                        state: SubState::Removing,
                    }));
                }
            }
        }
        // REMOVING subscriptions whose shard is now safe can drop
        // (§3.3's final step: drop metadata, purge cache, drop sub).
        for s in state.subscriptions.values() {
            if s.shard == shard
                && s.state == SubState::Removing
                && crate::subscription::can_drop_subscription(state, s.node, shard, k_safety)
            {
                ops.push(CatalogOp::RemoveSubscription {
                    node: s.node,
                    shard,
                });
            }
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use eon_catalog::{ShardDef, ShardKind};
    use eon_types::{HashRange, TxnVersion};

    fn nodes(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn shard_ids(n: u64) -> Vec<ShardId> {
        (0..n).map(ShardId).collect()
    }

    fn state_with_shards(n: usize) -> CatalogState {
        let mut st = CatalogState::default();
        let defs: Vec<ShardDef> = HashRange::split_even(n)
            .into_iter()
            .enumerate()
            .map(|(i, range)| ShardDef {
                id: ShardId(i as u64),
                kind: ShardKind::Segment,
                range,
            })
            .collect();
        st.apply(&CatalogOp::DefineShards(defs), TxnVersion(1)).unwrap();
        st
    }

    #[test]
    fn every_shard_gets_k_plus_one_subscribers() {
        let t = target_subscribers(&shard_ids(4), &nodes(4), 1);
        for (_, subs) in &t {
            assert_eq!(subs.len(), 2);
        }
        // Balanced: each node appears exactly twice (4 shards * 2 / 4).
        let mut counts = std::collections::HashMap::new();
        for (_, subs) in &t {
            for n in subs {
                *counts.entry(*n).or_insert(0) += 1;
            }
        }
        assert!(counts.values().all(|&c| c == 2), "{counts:?}");
    }

    #[test]
    fn ring_rotation_makes_neighbors_buddies() {
        // Node j covers shards {j, j+1}; shard i is covered by nodes
        // {i, i-1} — adjacent ring positions back each other up.
        let t = target_subscribers(&shard_ids(4), &nodes(4), 1);
        for (i, (_, subs)) in t.iter().enumerate() {
            let expect_a = NodeId(i as u64);
            let expect_b = NodeId(((i + 4 - 1) % 4) as u64);
            assert!(subs.contains(&expect_a) && subs.contains(&expect_b), "{i}: {subs:?}");
        }
    }

    #[test]
    fn every_node_subscribes_when_nodes_outnumber_shards() {
        // The ETS prerequisite (§4.2): 9 nodes, 3 shards — all 9 must
        // hold a subscription or added nodes can never serve queries.
        let t = target_subscribers(&shard_ids(3), &nodes(9), 1);
        let mut subscribed: Vec<NodeId> = t.iter().flat_map(|(_, s)| s.clone()).collect();
        subscribed.sort();
        subscribed.dedup();
        assert_eq!(subscribed.len(), 9, "{t:?}");
        // And shards stay fault tolerant.
        for (_, subs) in &t {
            assert!(subs.len() >= 2);
        }
    }

    #[test]
    fn replication_caps_at_node_count() {
        let t = target_subscribers(&shard_ids(3), &nodes(2), 4);
        for (_, subs) in &t {
            assert_eq!(subs.len(), 2);
        }
        assert_eq!(replication_factor(0, 5), 1);
        assert_eq!(replication_factor(1, 1), 1);
    }

    #[test]
    fn plan_creates_pending_subscriptions_for_fresh_cluster() {
        let st = state_with_shards(3);
        let ops = rebalance_plan(&st, &nodes(3), 1);
        let pendings = ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    CatalogOp::UpsertSubscription(Subscription {
                        state: SubState::Pending,
                        ..
                    })
                )
            })
            .count();
        assert_eq!(pendings, 6); // 3 shards * rf 2
    }

    #[test]
    fn plan_is_idempotent_once_converged() {
        let mut st = state_with_shards(3);
        // Apply the fresh plan, promote everything to ACTIVE.
        for op in rebalance_plan(&st, &nodes(3), 1) {
            st.apply(&op, TxnVersion(2)).unwrap();
        }
        let subs: Vec<Subscription> = st.subscriptions.values().cloned().collect();
        for mut s in subs {
            s.state = SubState::Active;
            st.apply(&CatalogOp::UpsertSubscription(s), TxnVersion(3)).unwrap();
        }
        assert!(rebalance_plan(&st, &nodes(3), 1).is_empty());
    }

    #[test]
    fn node_removal_marks_removing_only_when_safe() {
        let mut st = state_with_shards(2);
        // 3 nodes fully active on the ring layout for 3 nodes.
        for op in rebalance_plan(&st, &nodes(3), 1) {
            st.apply(&op, TxnVersion(2)).unwrap();
        }
        let subs: Vec<Subscription> = st.subscriptions.values().cloned().collect();
        for mut s in subs {
            s.state = SubState::Active;
            st.apply(&CatalogOp::UpsertSubscription(s), TxnVersion(3)).unwrap();
        }
        // Shrink to 2 nodes: plan may add pendings for the new layout
        // and REMOVING for node 2's surplus subs where safe.
        let ops = rebalance_plan(&st, &nodes(2), 1);
        for op in &ops {
            if let CatalogOp::UpsertSubscription(s) = op {
                if s.state == SubState::Removing {
                    assert_eq!(s.node, NodeId(2));
                }
            }
        }
    }
}
