//! The Eon-mode depot: a node-local disk cache of whole shared-storage
//! files (paper §5.2).
//!
//! Key properties from the paper, all implemented here:
//!
//! * caches **entire data files**; files are immutable once written, so
//!   the cache handles only add and drop — never invalidate;
//! * **LRU** eviction;
//! * **write-through**: loads put new files in the cache *and* upload
//!   them, since fresh data is likely to be queried;
//! * **shaping policies**: bypass the cache for a query, pin hot
//!   objects, never-cache configured prefixes;
//! * **peer warm-up**: a new subscriber asks a peer for its
//!   most-recently-used file list within a capacity budget and
//!   prefetches those files.
//!
//! [`FileCache`] implements [`FileSystem`], so the scan path simply
//! reads "through" the cache: a hit is a local read, a miss faults the
//! whole object in from shared storage first.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use eon_obs::{Counter, Determinism, Gauge, Registry};
use eon_storage::{with_retry_observed, FileSystem, FsStats, RetryPolicy, SharedFs};
use eon_types::{EonError, Result};
use parking_lot::{Condvar, Mutex};

/// Cache behaviour for a single request (§5.2's "don't use the cache
/// for this query" and write-through-off for archive loads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Normal: read through the cache, write through the cache.
    #[default]
    Normal,
    /// Skip the cache entirely (large batch historical queries).
    Bypass,
}

/// Counters for cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub bypasses: u64,
    /// Misses that joined another thread's in-flight backing fetch
    /// instead of issuing their own GET (single-flight dedup).
    pub singleflight_waits: u64,
    /// Write-through puts (Fig 8 loads and DV uploads): cached locally
    /// *and* uploaded to shared storage.
    pub writes: u64,
}

/// One in-flight backing fetch that concurrent misses on the same key
/// can join instead of issuing their own GET.
struct FillSlot {
    result: Mutex<Option<Result<Bytes>>>,
    ready: Condvar,
}

#[derive(Debug)]
struct Entry {
    size: u64,
    stamp: u64,
    pinned: bool,
}

/// Registry handles mirroring [`CacheStats`], plus warm-up and retry
/// counters that only exist in the registry. Always present — the
/// constructor wires a private registry until
/// [`FileCache::attach_metrics`] swaps in the shared one.
#[derive(Clone)]
struct CacheMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    bypasses: Arc<Counter>,
    warmup_files: Arc<Counter>,
    warmup_bytes: Arc<Counter>,
    retries: Arc<Counter>,
    singleflight_waits: Arc<Counter>,
    writes: Arc<Counter>,
    used_bytes: Arc<Gauge>,
}

impl CacheMetrics {
    fn register(registry: &Registry, node: &str) -> Self {
        let labels: &[(&str, &str)] = &[("node", node), ("subsystem", "depot")];
        CacheMetrics {
            hits: registry.counter("depot_hits_total", labels),
            misses: registry.counter("depot_misses_total", labels),
            evictions: registry.counter("depot_evictions_total", labels),
            bypasses: registry.counter("depot_bypasses_total", labels),
            warmup_files: registry.counter("depot_warmup_files_total", labels),
            warmup_bytes: registry.counter("depot_warmup_bytes_total", labels),
            retries: registry.counter("depot_retries_total", labels),
            // Which thread wins a concurrent fill race is scheduling,
            // not workload: keep this out of deterministic snapshots.
            singleflight_waits: registry.counter_with(
                "depot_singleflight_waits_total",
                labels,
                Determinism::WallClock,
            ),
            writes: registry.counter("depot_writes_total", labels),
            used_bytes: registry.gauge("depot_used_bytes", labels),
        }
    }
}

struct Inner {
    entries: HashMap<String, Entry>,
    /// LRU index: (stamp, key) ascending — oldest first.
    lru: BTreeSet<(u64, String)>,
    clock: u64,
    used: u64,
    stats: CacheStats,
    never_prefixes: Vec<String>,
    metrics: CacheMetrics,
}

impl Inner {
    fn touch(&mut self, key: &str) {
        if let Some(e) = self.entries.get_mut(key) {
            self.lru.remove(&(e.stamp, key.to_owned()));
            self.clock += 1;
            e.stamp = self.clock;
            self.lru.insert((e.stamp, key.to_owned()));
        }
    }
}

/// The disk file cache. `local` is the node's cache directory (instance
/// storage in the paper's deployments — loss is harmless, §8);
/// `backing` is the shared storage.
/// Raw totals for the registry-only counters (no [`CacheStats`]
/// field). Source of truth the registry mirrors, so counts made before
/// [`FileCache::attach_metrics`] survive the re-homing.
#[derive(Default)]
struct AuxRawStats {
    warmup_files: AtomicU64,
    warmup_bytes: AtomicU64,
    retries: AtomicU64,
}

pub struct FileCache {
    local: SharedFs,
    backing: SharedFs,
    capacity: u64,
    aux: AuxRawStats,
    /// Backoff policy for shared-storage access — §5.3's "properly
    /// balanced retry loop". Every backing read/write below goes
    /// through it, so transient S3 failures and throttles never reach
    /// the engine.
    retry: RetryPolicy,
    inner: Mutex<Inner>,
    /// In-flight backing fetches keyed by object path (single-flight).
    inflight: Mutex<HashMap<String, Arc<FillSlot>>>,
    /// Whether concurrent misses dedup onto one backing GET.
    single_flight: AtomicBool,
}

impl FileCache {
    pub fn new(local: SharedFs, backing: SharedFs, capacity_bytes: u64) -> Self {
        FileCache {
            local,
            backing,
            capacity: capacity_bytes,
            aux: AuxRawStats::default(),
            retry: RetryPolicy::default(),
            inflight: Mutex::new(HashMap::new()),
            single_flight: AtomicBool::new(true),
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                lru: BTreeSet::new(),
                clock: 0,
                used: 0,
                stats: CacheStats::default(),
                never_prefixes: Vec::new(),
                metrics: CacheMetrics::register(&Registry::new(), "detached"),
            }),
        }
    }

    /// Re-home this cache's counters onto a shared registry, labeled by
    /// node. Anything already counted is carried over, so registry
    /// totals always agree with [`CacheStats`].
    pub fn attach_metrics(&self, registry: &Registry, node: &str) {
        let mut g = self.inner.lock();
        let m = CacheMetrics::register(registry, node);
        m.hits.add(g.stats.hits);
        m.misses.add(g.stats.misses);
        m.evictions.add(g.stats.evictions);
        m.bypasses.add(g.stats.bypasses);
        m.singleflight_waits.add(g.stats.singleflight_waits);
        m.writes.add(g.stats.writes);
        m.used_bytes.set(g.used as i64);
        // Registry-only counters carry over from their raw totals, so
        // warm-ups and retries from before attachment aren't dropped.
        m.warmup_files.add(self.aux.warmup_files.load(Ordering::Relaxed));
        m.warmup_bytes.add(self.aux.warmup_bytes.load(Ordering::Relaxed));
        m.retries.add(self.aux.retries.load(Ordering::Relaxed));
        g.metrics = m;
    }

    /// Enable or disable single-flight fill dedup (on by default).
    pub fn set_single_flight(&self, enabled: bool) {
        self.single_flight.store(enabled, Ordering::Relaxed);
    }

    /// Clone of the retry counter handle, for use outside the lock.
    fn retry_counter(&self) -> Arc<Counter> {
        self.inner.lock().metrics.retries.clone()
    }

    /// Count one shared-storage retry in both the raw total and the
    /// currently-attached registry handle.
    fn count_retry(&self, handle: &Counter) {
        self.aux.retries.fetch_add(1, Ordering::Relaxed);
        handle.inc();
    }

    fn backing_read(&self, key: &str) -> Result<Bytes> {
        let retries = self.retry_counter();
        with_retry_observed(&self.retry, |_| self.count_retry(&retries), || {
            self.backing.read(key)
        })
    }

    /// Fault `key` in from shared storage with single-flight dedup:
    /// concurrent misses on the same key join one backing GET instead
    /// of each fetching. The winner counts the miss and populates the
    /// cache; a loser waits on the winner's result and — on the
    /// whole-object read path (`count_loser_hit`) — counts a hit,
    /// since it was served without touching shared storage, keeping
    /// `hits + misses + bypasses == reads` exact. Never-cache keys
    /// skip dedup so their every-read-fetches accounting stays
    /// schedule-independent.
    fn fault_in(&self, key: &str, count_loser_hit: bool) -> Result<Bytes> {
        if !self.single_flight.load(Ordering::Relaxed) || self.never_cached(key) {
            let data = self.backing_read(key)?;
            {
                let mut g = self.inner.lock();
                g.stats.misses += 1;
                g.metrics.misses.inc();
            }
            self.insert_local(key, data.clone())?;
            return Ok(data);
        }
        enum Role {
            Leader(Arc<FillSlot>),
            Waiter(Arc<FillSlot>),
            Cached,
        }
        let role = {
            let mut m = self.inflight.lock();
            // A fill may have completed between the caller's miss
            // check and here; the entries map is authoritative, and
            // checking it under the inflight lock closes the race
            // where a leader finished and unregistered its slot.
            if self.contains(key) {
                Role::Cached
            } else if let Some(slot) = m.get(key) {
                Role::Waiter(slot.clone())
            } else {
                let slot = Arc::new(FillSlot {
                    result: Mutex::new(None),
                    ready: Condvar::new(),
                });
                m.insert(key.to_owned(), slot.clone());
                Role::Leader(slot)
            }
        };
        match role {
            Role::Cached => {
                let data = self.local.read(key)?;
                let mut g = self.inner.lock();
                g.stats.hits += 1;
                g.metrics.hits.inc();
                g.touch(key);
                Ok(data)
            }
            Role::Leader(slot) => {
                let res = self.backing_read(key);
                let mut inserted = Ok(());
                if let Ok(data) = &res {
                    {
                        let mut g = self.inner.lock();
                        g.stats.misses += 1;
                        g.metrics.misses.inc();
                    }
                    inserted = self.insert_local(key, data.clone());
                }
                // Publish before unregistering so anyone who joined
                // this slot always finds a result.
                *slot.result.lock() = Some(res.clone());
                slot.ready.notify_all();
                self.inflight.lock().remove(key);
                inserted?;
                res
            }
            Role::Waiter(slot) => {
                {
                    let mut g = self.inner.lock();
                    g.stats.singleflight_waits += 1;
                    g.metrics.singleflight_waits.inc();
                }
                let mut r = slot.result.lock();
                while r.is_none() {
                    slot.ready.wait(&mut r);
                }
                let res = r.clone().unwrap();
                drop(r);
                if count_loser_hit && res.is_ok() {
                    let mut g = self.inner.lock();
                    g.stats.hits += 1;
                    g.metrics.hits.inc();
                    g.touch(key);
                }
                res
            }
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn backing(&self) -> &SharedFs {
        &self.backing
    }

    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    pub fn used_bytes(&self) -> u64 {
        self.inner.lock().used
    }

    pub fn contains(&self, key: &str) -> bool {
        self.inner.lock().entries.contains_key(key)
    }

    /// Configure a never-cache prefix ("never cache table T2", §5.2).
    pub fn never_cache_prefix(&self, prefix: impl Into<String>) {
        self.inner.lock().never_prefixes.push(prefix.into());
    }

    /// Pin or unpin a cached object (pinned objects skip eviction:
    /// "cache recent partitions of table T").
    pub fn set_pinned(&self, key: &str, pinned: bool) {
        let mut g = self.inner.lock();
        if let Some(e) = g.entries.get_mut(key) {
            e.pinned = pinned;
        }
    }

    /// Drop everything ("the cache can be cleared completely").
    pub fn clear(&self) -> Result<()> {
        let mut g = self.inner.lock();
        let keys: Vec<String> = g.entries.keys().cloned().collect();
        for k in keys {
            self.local.delete(&k)?;
        }
        g.entries.clear();
        g.lru.clear();
        g.used = 0;
        g.metrics.used_bytes.set(0);
        Ok(())
    }

    fn never_cached(&self, key: &str) -> bool {
        self.inner
            .lock()
            .never_prefixes
            .iter()
            .any(|p| key.starts_with(p))
    }

    /// Insert a file into the local cache (no backing write), evicting
    /// LRU entries as needed. Used by the fault-in path, by load
    /// write-through, and by peer-shipped files (Fig 8 step 3).
    pub fn insert_local(&self, key: &str, data: Bytes) -> Result<()> {
        if self.never_cached(key) {
            return Ok(());
        }
        let size = data.len() as u64;
        if size > self.capacity {
            return Ok(()); // larger than the whole cache: don't thrash
        }
        self.local.write(key, data)?;
        let mut g = self.inner.lock();
        if let Some(old) = g.entries.remove(key) {
            g.lru.remove(&(old.stamp, key.to_owned()));
            g.used -= old.size;
        }
        // Evict oldest unpinned entries until the new file fits.
        while g.used + size > self.capacity {
            let victim = g
                .lru
                .iter()
                .find(|(_, k)| !g.entries[k].pinned)
                .cloned();
            match victim {
                Some((stamp, k)) => {
                    g.lru.remove(&(stamp, k.clone()));
                    if let Some(e) = g.entries.remove(&k) {
                        g.used -= e.size;
                    }
                    g.stats.evictions += 1;
                    g.metrics.evictions.inc();
                    self.local.delete(&k)?;
                }
                None => break, // everything pinned; overshoot rather than fail
            }
        }
        g.clock += 1;
        let stamp = g.clock;
        g.lru.insert((stamp, key.to_owned()));
        g.entries.insert(
            key.to_owned(),
            Entry {
                size,
                stamp,
                pinned: false,
            },
        );
        g.used += size;
        g.metrics.used_bytes.set(g.used as i64);
        Ok(())
    }

    /// Remove one object from the cache (e.g. when its reference count
    /// hits zero locally, §6.5 — the cached copy can go immediately).
    pub fn evict(&self, key: &str) -> Result<()> {
        let mut g = self.inner.lock();
        if let Some(e) = g.entries.remove(key) {
            g.lru.remove(&(e.stamp, key.to_owned()));
            g.used -= e.size;
            g.metrics.used_bytes.set(g.used as i64);
            self.local.delete(key)?;
        }
        Ok(())
    }

    /// Read a whole object with an explicit cache mode.
    pub fn read_with(&self, key: &str, mode: CacheMode) -> Result<Bytes> {
        if mode == CacheMode::Bypass {
            {
                let mut g = self.inner.lock();
                g.stats.bypasses += 1;
                g.metrics.bypasses.inc();
            }
            return self.backing_read(key);
        }
        if self.contains(key) {
            let data = self.local.read(key)?;
            let mut g = self.inner.lock();
            g.stats.hits += 1;
            g.metrics.hits.inc();
            g.touch(key);
            return Ok(data);
        }
        self.fault_in(key, true)
    }

    /// Write-through put: cache locally, upload to shared storage. The
    /// data-load path (Fig 8 steps 2–3) calls this.
    pub fn put_through(&self, key: &str, data: Bytes) -> Result<()> {
        {
            let mut g = self.inner.lock();
            g.stats.writes += 1;
            g.metrics.writes.inc();
        }
        self.insert_local(key, data.clone())?;
        let retries = self.retry_counter();
        with_retry_observed(&self.retry, |_| self.count_retry(&retries), || {
            self.backing.write(key, data.clone())
        })
    }

    /// Most-recently-used keys fitting in `budget` bytes — what a peer
    /// sends a warming subscriber (§5.2). Newest first.
    pub fn mru_list(&self, budget: u64) -> Vec<String> {
        let g = self.inner.lock();
        let mut out = Vec::new();
        let mut total = 0u64;
        for (_, key) in g.lru.iter().rev() {
            let size = g.entries[key].size;
            if total + size > budget {
                continue;
            }
            total += size;
            out.push(key.clone());
        }
        out
    }

    /// Warm this cache from a peer's MRU list: fetch each file (from
    /// shared storage here; a real deployment may fetch from the peer
    /// itself, §5.2 allows either). Missing files are skipped, not
    /// fatal. Returns how many files landed.
    pub fn warm_from(&self, peer_mru: &[String]) -> Result<usize> {
        let mut n = 0;
        // Oldest first so the *newest* files end up most recent in LRU.
        for key in peer_mru.iter().rev() {
            // A peer may cache what this node is configured never to
            // (per-node never-cache policy): don't even fetch those.
            if self.never_cached(key) {
                continue;
            }
            match self.backing_read(key) {
                Ok(data) => {
                    {
                        let g = self.inner.lock();
                        self.aux.warmup_files.fetch_add(1, Ordering::Relaxed);
                        self.aux.warmup_bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
                        g.metrics.warmup_files.inc();
                        g.metrics.warmup_bytes.add(data.len() as u64);
                    }
                    self.insert_local(key, data)?;
                    n += 1;
                }
                Err(EonError::NotFound(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(n)
    }
}

impl FileSystem for FileCache {
    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        self.put_through(path, data)
    }

    fn read(&self, path: &str) -> Result<Bytes> {
        self.read_with(path, CacheMode::Normal)
    }

    fn read_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes> {
        // Whole-file caching: fault the object in, then slice locally.
        // A loser of a concurrent fill race counts nothing here — the
        // `contains` re-check below books its hit, so hit/miss totals
        // don't depend on thread timing.
        if !self.contains(path) && !self.never_cached(path) {
            self.fault_in(path, false)?;
        }
        if self.contains(path) {
            let mut g = self.inner.lock();
            g.stats.hits += 1;
            g.metrics.hits.inc();
            g.touch(path);
            drop(g);
            self.local.read_range(path, offset, len)
        } else {
            let retries = self.retry_counter();
            with_retry_observed(&self.retry, |_| self.count_retry(&retries), || {
                self.backing.read_range(path, offset, len)
            })
        }
    }

    fn size(&self, path: &str) -> Result<u64> {
        if self.contains(path) {
            self.local.size(path)
        } else {
            let retries = self.retry_counter();
            with_retry_observed(&self.retry, |_| self.count_retry(&retries), || {
                self.backing.size(path)
            })
        }
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let retries = self.retry_counter();
        with_retry_observed(&self.retry, |_| self.count_retry(&retries), || {
            self.backing.list(prefix)
        })
    }

    fn delete(&self, path: &str) -> Result<()> {
        self.evict(path)?;
        let retries = self.retry_counter();
        with_retry_observed(&self.retry, |_| self.count_retry(&retries), || {
            self.backing.delete(path)
        })
    }

    fn select(&self, path: &str, request: &[u8]) -> Result<Option<Bytes>> {
        // A depot-cached file filters locally for free — a select
        // round-trip could only add latency and request cost, so
        // decline and let the caller read the local copy. Misses
        // forward to shared storage *without* faulting the file in:
        // pushdown exists precisely to avoid moving the whole object.
        if self.contains(path) {
            return Ok(None);
        }
        let retries = self.retry_counter();
        with_retry_observed(&self.retry, |_| self.count_retry(&retries), || {
            self.backing.select(path, request)
        })
    }

    fn install_select_engine(&self, engine: Arc<dyn eon_storage::SelectEngine>) {
        self.backing.install_select_engine(engine);
    }

    fn stats(&self) -> FsStats {
        self.backing.stats()
    }

    fn kind(&self) -> &'static str {
        "cache"
    }
}

/// Convenience constructor for an in-memory cache over any backing
/// store (tests, simulations).
pub fn mem_cache(backing: SharedFs, capacity_bytes: u64) -> Arc<FileCache> {
    Arc::new(FileCache::new(
        Arc::new(eon_storage::MemFs::new()),
        backing,
        capacity_bytes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eon_storage::MemFs;

    fn setup(capacity: u64) -> (Arc<MemFs>, FileCache) {
        let backing = Arc::new(MemFs::new());
        let cache = FileCache::new(Arc::new(MemFs::new()), backing.clone(), capacity);
        (backing, cache)
    }

    fn payload(n: usize) -> Bytes {
        Bytes::from(vec![7u8; n])
    }

    #[test]
    fn read_through_faults_in_once() {
        let (backing, cache) = setup(1000);
        backing.write("k", payload(10)).unwrap();
        assert_eq!(cache.read("k").unwrap().len(), 10);
        assert_eq!(cache.read("k").unwrap().len(), 10);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        // backing GETs: 1 (the fault-in)
        assert_eq!(backing.stats().gets, 1);
    }

    #[test]
    fn put_through_writes_both() {
        let (backing, cache) = setup(1000);
        cache.put_through("k", payload(5)).unwrap();
        assert!(cache.contains("k"));
        assert_eq!(backing.read("k").unwrap().len(), 5);
        // Subsequent read is a pure hit: no backing GET.
        let gets = backing.stats().gets;
        cache.read("k").unwrap();
        assert_eq!(backing.stats().gets, gets);
    }

    #[test]
    fn lru_evicts_oldest() {
        let (_, cache) = setup(30);
        cache.insert_local("a", payload(10)).unwrap();
        cache.insert_local("b", payload(10)).unwrap();
        cache.insert_local("c", payload(10)).unwrap();
        // Touch "a" so "b" is oldest, then overflow.
        cache.read_with("a", CacheMode::Normal).unwrap_or_default();
        cache.insert_local("d", payload(10)).unwrap();
        assert!(!cache.contains("b"), "b should be evicted");
        assert!(cache.contains("a") && cache.contains("c") && cache.contains("d"));
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.used_bytes() <= 30);
    }

    #[test]
    fn pinned_entries_survive_eviction() {
        let (_, cache) = setup(25);
        cache.insert_local("pin", payload(10)).unwrap();
        cache.set_pinned("pin", true);
        cache.insert_local("x", payload(10)).unwrap();
        cache.insert_local("y", payload(10)).unwrap(); // evicts x, not pin
        assert!(cache.contains("pin"));
        assert!(!cache.contains("x"));
    }

    #[test]
    fn bypass_mode_skips_cache() {
        let (backing, cache) = setup(1000);
        backing.write("big", payload(100)).unwrap();
        cache.read_with("big", CacheMode::Bypass).unwrap();
        assert!(!cache.contains("big"));
        assert_eq!(cache.stats().bypasses, 1);
    }

    #[test]
    fn never_cache_prefix_respected() {
        let (backing, cache) = setup(1000);
        cache.never_cache_prefix("archive/");
        backing.write("archive/old", payload(10)).unwrap();
        cache.read("archive/old").unwrap();
        assert!(!cache.contains("archive/old"));
    }

    #[test]
    fn oversized_object_not_cached() {
        let (backing, cache) = setup(10);
        backing.write("huge", payload(100)).unwrap();
        assert_eq!(cache.read("huge").unwrap().len(), 100);
        assert!(!cache.contains("huge"));
    }

    #[test]
    fn mru_list_respects_budget_and_order() {
        let (_, cache) = setup(1000);
        for (k, n) in [("a", 10), ("b", 20), ("c", 30)] {
            cache.insert_local(k, payload(n)).unwrap();
        }
        // MRU order: c, b, a. Budget 55 fits c(30)+b(20) but skips a.
        let mru = cache.mru_list(55);
        assert_eq!(mru, vec!["c", "b"]);
        let all = cache.mru_list(1000);
        assert_eq!(all, vec!["c", "b", "a"]);
    }

    #[test]
    fn peer_warming_fills_cache() {
        let (backing, peer) = setup(1000);
        for k in ["f1", "f2", "f3"] {
            peer.put_through(k, payload(10)).unwrap();
        }
        let (_, newcomer) = {
            let cache = FileCache::new(Arc::new(MemFs::new()), backing.clone(), 1000);
            (backing.clone(), cache)
        };
        let warmed = newcomer.warm_from(&peer.mru_list(25)).unwrap();
        assert_eq!(warmed, 2);
        assert!(newcomer.contains("f3") && newcomer.contains("f2"));
        // Missing files are skipped silently.
        assert_eq!(newcomer.warm_from(&["ghost".into()]).unwrap(), 0);
    }

    #[test]
    fn warm_from_respects_capacity_budget() {
        let (backing, peer) = setup(1000);
        for (k, n) in [("old", 40), ("mid", 40), ("new", 40)] {
            peer.put_through(k, payload(n)).unwrap();
        }
        // Newcomer can only hold two of the three files: warming must
        // stay within capacity and keep the *newest* ones.
        let newcomer = FileCache::new(Arc::new(MemFs::new()), backing, 80);
        newcomer.warm_from(&peer.mru_list(1000)).unwrap();
        assert!(newcomer.used_bytes() <= 80);
        assert!(newcomer.contains("new") && newcomer.contains("mid"));
        assert!(!newcomer.contains("old"));
    }

    #[test]
    fn warm_from_skips_never_cache_prefixes() {
        let (backing, peer) = setup(1000);
        peer.put_through("archive/cold", payload(10)).unwrap();
        peer.put_through("hot", payload(10)).unwrap();
        let newcomer = FileCache::new(Arc::new(MemFs::new()), backing.clone(), 1000);
        newcomer.never_cache_prefix("archive/");
        let gets = backing.stats().gets;
        let warmed = newcomer.warm_from(&peer.mru_list(1000)).unwrap();
        assert_eq!(warmed, 1);
        assert!(newcomer.contains("hot"));
        assert!(!newcomer.contains("archive/cold"));
        // The excluded file was not even fetched from shared storage.
        assert_eq!(backing.stats().gets, gets + 1);
    }

    #[test]
    fn warm_from_increments_warmup_metrics() {
        let (backing, peer) = setup(1000);
        peer.put_through("f1", payload(10)).unwrap();
        peer.put_through("f2", payload(30)).unwrap();
        let newcomer = FileCache::new(Arc::new(MemFs::new()), backing, 1000);
        let registry = Registry::new();
        newcomer.attach_metrics(&registry, "n1");
        newcomer.warm_from(&peer.mru_list(1000)).unwrap();
        let snap = registry.deterministic_snapshot();
        let metric = |name: &str| {
            snap.get(&format!("{name}{{node=\"n1\",subsystem=\"depot\"}}"))
                .and_then(|v| v.as_u64())
                .unwrap()
        };
        assert_eq!(metric("depot_warmup_files_total"), 2);
        assert_eq!(metric("depot_warmup_bytes_total"), 40);
    }

    #[test]
    fn clear_empties_everything() {
        let (_, cache) = setup(1000);
        cache.insert_local("a", payload(10)).unwrap();
        cache.insert_local("b", payload(10)).unwrap();
        cache.clear().unwrap();
        assert_eq!(cache.used_bytes(), 0);
        assert!(!cache.contains("a"));
    }

    #[test]
    fn ranged_reads_fault_in_whole_file() {
        let (backing, cache) = setup(1000);
        backing
            .write("obj", Bytes::from_static(b"0123456789"))
            .unwrap();
        let got = cache.read_range("obj", 2, 3).unwrap();
        assert_eq!(got.as_ref(), b"234");
        assert!(cache.contains("obj"), "whole file cached");
        // Second ranged read hits the cache only.
        let gets = backing.stats().gets;
        cache.read_range("obj", 5, 2).unwrap();
        assert_eq!(backing.stats().gets, gets);
    }

    #[test]
    fn delete_removes_both_copies() {
        let (backing, cache) = setup(1000);
        cache.put_through("k", payload(10)).unwrap();
        FileSystem::delete(&cache, "k").unwrap();
        assert!(!cache.contains("k"));
        assert!(!backing.exists("k").unwrap());
    }

    #[test]
    fn reinsert_same_key_updates_size_accounting() {
        let (_, cache) = setup(100);
        cache.insert_local("k", payload(10)).unwrap();
        cache.insert_local("k", payload(30)).unwrap();
        assert_eq!(cache.used_bytes(), 30);
    }

    /// MemFs with a read delay, so concurrent misses reliably overlap.
    struct SlowFs(MemFs, std::time::Duration);

    impl FileSystem for SlowFs {
        fn write(&self, path: &str, data: Bytes) -> Result<()> {
            self.0.write(path, data)
        }
        fn read(&self, path: &str) -> Result<Bytes> {
            std::thread::sleep(self.1);
            self.0.read(path)
        }
        fn size(&self, path: &str) -> Result<u64> {
            self.0.size(path)
        }
        fn list(&self, prefix: &str) -> Result<Vec<String>> {
            self.0.list(prefix)
        }
        fn delete(&self, path: &str) -> Result<()> {
            self.0.delete(path)
        }
        fn stats(&self) -> FsStats {
            self.0.stats()
        }
        fn kind(&self) -> &'static str {
            "slow"
        }
    }

    #[test]
    fn singleflight_dedups_concurrent_misses() {
        let backing = Arc::new(SlowFs(MemFs::new(), std::time::Duration::from_millis(40)));
        backing.0.write("k", payload(10)).unwrap();
        let cache = Arc::new(FileCache::new(
            Arc::new(MemFs::new()),
            backing.clone(),
            1000,
        ));
        const N: usize = 6;
        let barrier = Arc::new(std::sync::Barrier::new(N));
        let mut handles = Vec::new();
        for _ in 0..N {
            let cache = cache.clone();
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                cache.read_with("k", CacheMode::Normal).unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap().len(), 10);
        }
        let s = cache.stats();
        assert_eq!(backing.stats().gets, 1, "one backing GET for N misses");
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits as usize, N - 1);
        assert_eq!(s.singleflight_waits as usize, N - 1);
    }

    #[test]
    fn singleflight_disabled_fetches_per_miss() {
        let backing = Arc::new(SlowFs(MemFs::new(), std::time::Duration::from_millis(20)));
        backing.0.write("k", payload(10)).unwrap();
        let cache = Arc::new(FileCache::new(
            Arc::new(MemFs::new()),
            backing.clone(),
            1000,
        ));
        cache.set_single_flight(false);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let cache = cache.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.read_with("k", CacheMode::Normal).unwrap()
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(backing.stats().gets, 2, "no dedup when disabled");
        assert_eq!(cache.stats().singleflight_waits, 0);
    }

    #[test]
    fn singleflight_waiters_share_ranged_fault_in() {
        let backing = Arc::new(SlowFs(MemFs::new(), std::time::Duration::from_millis(40)));
        backing.0.write("obj", Bytes::from_static(b"0123456789")).unwrap();
        let cache = Arc::new(FileCache::new(
            Arc::new(MemFs::new()),
            backing.clone(),
            1000,
        ));
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let threads: Vec<_> = (0..4u64)
            .map(|i| {
                let cache = cache.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.read_range("obj", i * 2, 2).unwrap()
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap().len(), 2);
        }
        let s = cache.stats();
        assert_eq!(backing.stats().gets, 1, "one fault-in for all ranges");
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 4, "every ranged read books one hit");
    }
}
