//! Observability substrate (DESIGN.md "Observability"): a lock-cheap
//! metrics registry plus per-query trace spans.
//!
//! The paper's evaluation hinges on quantities the engine must measure
//! itself — depot hit ratios (§5.2), per-verb shared-storage request
//! counts and simulated cost (§4), and per-node query timing under
//! elasticity (§7). Every hot-path component (depot, S3 simulator,
//! retry layer, execution slots, coordinator, tuple mover) registers
//! its counters here; benches and the chaos harness snapshot the
//! registry as JSON or a Prometheus-style text dump.
//!
//! ## Determinism
//!
//! Snapshots come in two flavors. [`Registry::snapshot`] includes
//! everything. [`Registry::deterministic_snapshot`] excludes metrics
//! registered as [`Determinism::WallClock`] (latency histograms,
//! queue-wait times): under a fixed seed the remaining values are pure
//! functions of the workload, so two same-seed runs render
//! byte-identical JSON — the chaos determinism tests assert exactly
//! that. Object keys are `BTreeMap`-ordered everywhere.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

mod profile;

pub use profile::{QueryProfile, Span, SpanGuard};

/// Whether a metric's value is a pure function of the seeded workload
/// or depends on wall-clock scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Determinism {
    /// Same seed ⇒ same value. Included in deterministic snapshots.
    Seeded,
    /// Timing-dependent; excluded from deterministic snapshots.
    WallClock,
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (e.g. bytes currently cached).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Histogram with fixed bucket upper bounds (cumulative, Prometheus
/// style). Records `count`, `sum`, and per-bucket counts.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: Vec<u64>) -> Self {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Default micros-scale bounds: 100µs … ~100s, then +Inf.
    pub fn default_micro_bounds() -> Vec<u64> {
        vec![
            100,
            1_000,
            10_000,
            50_000,
            100_000,
            500_000,
            1_000_000,
            10_000_000,
            100_000_000,
        ]
    }

    pub fn observe(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// (upper bound, non-cumulative count) per bucket; the final entry
    /// is the overflow (+Inf) bucket.
    pub fn buckets(&self) -> Vec<(Option<u64>, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, b) in self.buckets.iter().enumerate() {
            out.push((self.bounds.get(i).copied(), b.load(Ordering::Relaxed)));
        }
        out
    }
}

/// Sorted, deduplicated label set. Kept small (node / subsystem /
/// verb-style labels), compared as a whole for registry identity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Labels(Vec<(String, String)>);

impl Labels {
    pub fn new(pairs: &[(&str, &str)]) -> Self {
        let mut v: Vec<(String, String)> = pairs
            .iter()
            .map(|&(k, val)| (k.to_string(), val.to_string()))
            .collect();
        v.sort();
        v.dedup();
        Labels(v)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    fn render_suffix(&self) -> String {
        if self.0.is_empty() {
            return String::new();
        }
        let inner: Vec<String> = self
            .0
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\"", v = v.replace('"', "\\\"")))
            .collect();
        format!("{{{}}}", inner.join(","))
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    metric: Metric,
    determinism: Determinism,
}

#[derive(Default)]
struct Inner {
    // BTreeMap so iteration (snapshots, prometheus dumps) is ordered.
    metrics: BTreeMap<(String, Labels), Entry>,
}

/// The shared metrics registry. Cheap to clone (an `Arc` inside);
/// handle lookups take a registration lock, but the returned
/// `Arc<Counter>`/`Arc<Gauge>`/`Arc<Histogram>` handles update via
/// relaxed atomics with no lock at all — register once at construction
/// time, update on the hot path for the cost of an `fetch_add`.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

// Manual impl: `EonConfig` derives Debug and carries a Registry, but
// dumping every registered series there would drown the output.
impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.inner.lock().metrics.len();
        write!(f, "Registry({n} metrics)")
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Counter handle, registering on first use. Re-registration with
    /// the same name+labels returns the same underlying counter.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.counter_with(name, labels, Determinism::Seeded)
    }

    pub fn counter_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        determinism: Determinism,
    ) -> Arc<Counter> {
        let key = (name.to_string(), Labels::new(labels));
        let mut inner = self.inner.lock();
        let entry = inner.metrics.entry(key).or_insert_with(|| Entry {
            metric: Metric::Counter(Arc::new(Counter::default())),
            determinism,
        });
        match &entry.metric {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.gauge_with(name, labels, Determinism::Seeded)
    }

    pub fn gauge_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        determinism: Determinism,
    ) -> Arc<Gauge> {
        let key = (name.to_string(), Labels::new(labels));
        let mut inner = self.inner.lock();
        let entry = inner.metrics.entry(key).or_insert_with(|| Entry {
            metric: Metric::Gauge(Arc::new(Gauge::default())),
            determinism,
        });
        match &entry.metric {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Histogram with fixed bucket upper bounds. Histograms of
    /// wall-clock durations should pass [`Determinism::WallClock`].
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: Vec<u64>,
        determinism: Determinism,
    ) -> Arc<Histogram> {
        let key = (name.to_string(), Labels::new(labels));
        let mut inner = self.inner.lock();
        let entry = inner.metrics.entry(key).or_insert_with(|| Entry {
            metric: Metric::Histogram(Arc::new(Histogram::new(bounds))),
            determinism,
        });
        match &entry.metric {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Convenience: a wall-clock latency histogram in microseconds.
    pub fn timing_histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram(
            name,
            labels,
            Histogram::default_micro_bounds(),
            Determinism::WallClock,
        )
    }

    /// Full JSON snapshot: every metric, including wall-clock ones.
    pub fn snapshot(&self) -> serde_json::Value {
        self.render_json(true)
    }

    /// JSON snapshot of seeded metrics only — byte-identical across
    /// same-seed runs (see module docs).
    pub fn deterministic_snapshot(&self) -> serde_json::Value {
        self.render_json(false)
    }

    fn render_json(&self, include_wall_clock: bool) -> serde_json::Value {
        let inner = self.inner.lock();
        let mut out: BTreeMap<String, serde_json::Value> = BTreeMap::new();
        for ((name, labels), entry) in &inner.metrics {
            if !include_wall_clock && entry.determinism == Determinism::WallClock {
                continue;
            }
            let key = format!("{name}{}", labels.render_suffix());
            let val = match &entry.metric {
                Metric::Counter(c) => serde_json::Value::from(c.get()),
                Metric::Gauge(g) => serde_json::Value::from(g.get()),
                Metric::Histogram(h) => {
                    let mut m = BTreeMap::new();
                    m.insert("count".to_string(), serde_json::Value::from(h.count()));
                    m.insert("sum".to_string(), serde_json::Value::from(h.sum()));
                    let buckets: Vec<serde_json::Value> = h
                        .buckets()
                        .into_iter()
                        .map(|(bound, n)| {
                            let le = match bound {
                                Some(b) => b.to_string(),
                                None => "+Inf".to_string(),
                            };
                            let mut bm = BTreeMap::new();
                            bm.insert("le".to_string(), serde_json::Value::from(le));
                            bm.insert("n".to_string(), serde_json::Value::from(n));
                            serde_json::Value::Object(bm)
                        })
                        .collect();
                    m.insert("buckets".to_string(), serde_json::Value::Array(buckets));
                    serde_json::Value::Object(m)
                }
            };
            out.insert(key, val);
        }
        serde_json::Value::Object(out)
    }

    /// Prometheus-style text exposition (counters/gauges as bare
    /// samples, histograms as cumulative `_bucket`/`_sum`/`_count`).
    pub fn prometheus_text(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        for ((name, labels), entry) in &inner.metrics {
            match &entry.metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{name}{} {}\n", labels.render_suffix(), c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{name}{} {}\n", labels.render_suffix(), g.get()));
                }
                Metric::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (bound, n) in h.buckets() {
                        cumulative += n;
                        let le = match bound {
                            Some(b) => b.to_string(),
                            None => "+Inf".to_string(),
                        };
                        let mut pairs: Vec<(String, String)> = labels
                            .iter()
                            .map(|(k, v)| (k.to_string(), v.to_string()))
                            .collect();
                        pairs.push(("le".to_string(), le));
                        let rendered: Vec<String> = pairs
                            .iter()
                            .map(|(k, v)| format!("{k}=\"{v}\""))
                            .collect();
                        out.push_str(&format!(
                            "{name}_bucket{{{}}} {cumulative}\n",
                            rendered.join(",")
                        ));
                    }
                    out.push_str(&format!(
                        "{name}_sum{} {}\n",
                        labels.render_suffix(),
                        h.sum()
                    ));
                    out.push_str(&format!(
                        "{name}_count{} {}\n",
                        labels.render_suffix(),
                        h.count()
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_identity_and_snapshot() {
        let r = Registry::new();
        let a = r.counter("depot_hits", &[("node", "n1")]);
        let b = r.counter("depot_hits", &[("node", "n1")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same name+labels must share a counter");
        let snap = r.snapshot();
        assert_eq!(snap["depot_hits{node=\"n1\"}"].as_u64(), Some(3));
    }

    #[test]
    fn deterministic_snapshot_excludes_wall_clock() {
        let r = Registry::new();
        r.counter("seeded_ops", &[]).inc();
        r.timing_histogram("latency_us", &[]).observe(42);
        let det = r.deterministic_snapshot();
        assert!(det.get("seeded_ops").is_some());
        assert!(det.get("latency_us").is_none());
        let full = r.snapshot();
        assert!(full.get("latency_us").is_some());
    }

    #[test]
    fn histogram_buckets_cumulative_in_prometheus() {
        let r = Registry::new();
        let h = r.histogram(
            "sizes",
            &[],
            vec![10, 100],
            Determinism::Seeded,
        );
        h.observe(5);
        h.observe(50);
        h.observe(5000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 5055);
        assert_eq!(
            h.buckets(),
            vec![(Some(10), 1), (Some(100), 1), (None, 1)]
        );
        let text = r.prometheus_text();
        assert!(text.contains("sizes_bucket{le=\"10\"} 1\n"), "{text}");
        assert!(text.contains("sizes_bucket{le=\"100\"} 2\n"), "{text}");
        assert!(text.contains("sizes_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("sizes_count 3\n"), "{text}");
    }

    #[test]
    fn snapshots_render_identically_for_identical_updates() {
        let run = || {
            let r = Registry::new();
            for node in ["n2", "n1"] {
                let c = r.counter("s3_requests", &[("node", node), ("verb", "get")]);
                c.add(7);
            }
            r.gauge("depot_used_bytes", &[("node", "n1")]).set(1 << 20);
            r.deterministic_snapshot().to_string()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn labels_sorted_regardless_of_input_order() {
        let a = Labels::new(&[("b", "2"), ("a", "1")]);
        let b = Labels::new(&[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        assert_eq!(a.render_suffix(), "{a=\"1\",b=\"2\"}");
    }
}
