//! Per-query trace spans: the substrate for the SQL layer's
//! `EXPLAIN ANALYZE`-style profile. A [`QueryProfile`] collects named,
//! possibly labeled [`Span`]s (wall-clock durations — profiles are
//! inherently non-deterministic and never part of deterministic
//! snapshots) plus integer annotations (rows, bytes, retries).

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

#[derive(Debug, Clone)]
pub struct Span {
    pub name: String,
    /// e.g. the participant node for a local-phase span.
    pub label: String,
    pub micros: u64,
}

#[derive(Default)]
struct ProfileInner {
    spans: Vec<Span>,
    annotations: Vec<(String, i64)>,
}

/// Shared, thread-safe span collector for one query execution.
#[derive(Clone, Default)]
pub struct QueryProfile {
    inner: Arc<Mutex<ProfileInner>>,
}

impl QueryProfile {
    pub fn new() -> Self {
        QueryProfile::default()
    }

    /// Start a span; the returned guard records it on drop.
    pub fn span(&self, name: &str, label: &str) -> SpanGuard {
        SpanGuard {
            profile: self.clone(),
            name: name.to_string(),
            label: label.to_string(),
            start: Instant::now(),
        }
    }

    pub fn record_span(&self, name: &str, label: &str, micros: u64) {
        self.inner.lock().spans.push(Span {
            name: name.to_string(),
            label: label.to_string(),
            micros,
        });
    }

    /// Attach a scalar fact to the profile (rows returned, failover
    /// retries, slots waited on, …).
    pub fn annotate(&self, key: &str, value: i64) {
        self.inner.lock().annotations.push((key.to_string(), value));
    }

    pub fn spans(&self) -> Vec<Span> {
        self.inner.lock().spans.clone()
    }

    pub fn annotations(&self) -> Vec<(String, i64)> {
        self.inner.lock().annotations.clone()
    }

    /// `EXPLAIN ANALYZE`-style rendering: one line per span in
    /// recording order, indents by phase, annotations at the end.
    pub fn render(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::from("Query Profile\n");
        for s in &inner.spans {
            if s.label.is_empty() {
                out.push_str(&format!("  {:<28} {:>10} us\n", s.name, s.micros));
            } else {
                out.push_str(&format!(
                    "  {:<28} {:>10} us  [{}]\n",
                    s.name, s.micros, s.label
                ));
            }
        }
        for (k, v) in &inner.annotations {
            out.push_str(&format!("  {k} = {v}\n"));
        }
        out
    }
}

/// RAII span recorder.
pub struct SpanGuard {
    profile: QueryProfile,
    name: String,
    label: String,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let micros = self.start.elapsed().as_micros() as u64;
        self.profile.record_span(&self.name, &self.label, micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_in_order_and_render() {
        let p = QueryProfile::new();
        {
            let _g = p.span("compile", "");
        }
        p.record_span("local_phase", "node1", 1234);
        p.annotate("rows", 42);
        let spans = p.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "compile");
        assert_eq!(spans[1].label, "node1");
        let text = p.render();
        assert!(text.contains("local_phase"));
        assert!(text.contains("[node1]"));
        assert!(text.contains("rows = 42"));
    }
}
