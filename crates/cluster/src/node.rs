//! The node runtime: everything one Vertica process owns.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use eon_cache::FileCache;
use eon_catalog::{Catalog, CatalogStore, Checkpoint};
use eon_storage::{FaultInjector, InstanceId, MemFs, SharedFs, SidFactory, StorageId};
use eon_types::{NodeId, Result, TxnVersion};

use crate::slots::ExecSlots;

/// One simulated node process.
///
/// Kill/restart semantics mirror a real process: [`NodeRuntime::kill`]
/// discards in-memory state (catalog, cache index, WOS-equivalents) but
/// the *local durable store* (transaction logs, checkpoints) survives,
/// exactly the §3.5 "process termination results in reading the local
/// transaction logs and no loss of transactions" scenario. The cache
/// directory also survives but is cheap to lose (instance storage, §8).
pub struct NodeRuntime {
    pub id: NodeId,
    /// Node-local durable storage for the catalog (survives restarts).
    pub local_disk: SharedFs,
    /// This process incarnation's catalog instance.
    pub catalog: Catalog,
    pub store: CatalogStore,
    pub cache: Arc<FileCache>,
    pub sids: SidFactory,
    pub slots: ExecSlots,
    up: AtomicBool,
    /// Subcluster assignment for workload isolation (§4.3); 0 = default.
    pub subcluster: AtomicU64,
    /// Lowest catalog version any in-flight query on this node reads
    /// (gossiped for §6.5 file deletion). u64::MAX when idle.
    min_query_version: AtomicU64,
    query_versions: parking_lot::Mutex<Vec<u64>>,
}

impl NodeRuntime {
    /// Commission a fresh node with empty local storage.
    pub fn new(
        id: NodeId,
        shared: SharedFs,
        incarnation: &str,
        cache_capacity: u64,
        exec_slots: usize,
        instance_seed: u64,
    ) -> Arc<Self> {
        let local_disk: SharedFs = Arc::new(MemFs::new());
        Self::with_local_disk(
            id,
            local_disk,
            shared,
            incarnation,
            cache_capacity,
            exec_slots,
            instance_seed,
        )
    }

    /// Commission (or restart) a node on an existing local disk.
    pub fn with_local_disk(
        id: NodeId,
        local_disk: SharedFs,
        shared: SharedFs,
        incarnation: &str,
        cache_capacity: u64,
        exec_slots: usize,
        instance_seed: u64,
    ) -> Arc<Self> {
        let store = CatalogStore::new(local_disk.clone(), shared.clone(), incarnation);
        let cache = Arc::new(FileCache::new(
            Arc::new(MemFs::new()),
            shared,
            cache_capacity,
        ));
        let catalog = Catalog::new();
        // OID namespace = node id + 1 (0 is reserved for "unassigned"),
        // so concurrent coordinators can never mint colliding OIDs.
        catalog.set_oid_namespace(id.0 + 1);
        Arc::new(NodeRuntime {
            id,
            local_disk,
            catalog,
            store,
            cache,
            // Fresh instance id per process start (§5.1).
            sids: SidFactory::new(InstanceId::from_seed(
                instance_seed.wrapping_mul(0x1000).wrapping_add(id.0),
            )),
            slots: ExecSlots::new(exec_slots),
            up: AtomicBool::new(true),
            subcluster: AtomicU64::new(0),
            min_query_version: AtomicU64::new(u64::MAX),
            query_versions: parking_lot::Mutex::new(Vec::new()),
        })
    }

    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::SeqCst)
    }

    /// Install the crash-point plan on this node's catalog store
    /// (called by the database when the node is commissioned or
    /// restarted, so recovery code paths are instrumented too).
    pub fn set_faults(&self, faults: FaultInjector) {
        self.store.set_faults(faults);
    }

    /// Simulate process death. In-memory catalog/cache index are gone;
    /// the caller creates a fresh runtime over the same `local_disk` to
    /// restart.
    pub fn kill(&self) {
        self.up.store(false, Ordering::SeqCst);
        // Wake every session parked on this node's execution slots:
        // they get NodeDown immediately and the coordinator fails over,
        // instead of waiting for slots a dead process will never free.
        self.slots.close();
    }

    pub fn instance(&self) -> InstanceId {
        self.sids.instance()
    }

    /// Mint a SID for a new storage object.
    pub fn next_sid(&self) -> StorageId {
        self.sids.next()
    }

    /// Recover the catalog from local disk (normal restart, §2.4).
    pub fn recover_local(&self) -> Result<TxnVersion> {
        let (state, version) = self.store.recover_local()?;
        let oids: Vec<u64> = state.obj_versions.keys().map(|o| o.0).collect();
        self.catalog.install(state, version);
        for oid in oids {
            self.catalog.bump_oid_floor(oid);
        }
        Ok(version)
    }

    /// Write a catalog checkpoint for the current state.
    pub fn checkpoint(&self) -> Result<()> {
        self.store.write_checkpoint(&Checkpoint {
            version: self.catalog.version(),
            state: (*self.catalog.snapshot()).clone(),
        })
    }

    /// Register a running query's snapshot version; returns a token to
    /// pass to [`NodeRuntime::finish_query`].
    pub fn begin_query(&self, version: TxnVersion) -> u64 {
        let mut g = self.query_versions.lock();
        g.push(version.0);
        let min = g.iter().copied().min().unwrap_or(u64::MAX);
        self.min_query_version.store(min, Ordering::SeqCst);
        version.0
    }

    pub fn finish_query(&self, token: u64) {
        let mut g = self.query_versions.lock();
        if let Some(pos) = g.iter().position(|&v| v == token) {
            g.remove(pos);
        }
        let min = g.iter().copied().min().unwrap_or(u64::MAX);
        // Monotonically increasing as §6.5 requires: never store a
        // smaller value than previously gossiped... the per-node value
        // is min over *running* queries; with none running we report
        // MAX (nothing held).
        self.min_query_version.store(min, Ordering::SeqCst);
    }

    /// The gossiped minimum query version (§6.5). `u64::MAX` = no
    /// queries in flight.
    pub fn min_query_version(&self) -> u64 {
        self.min_query_version.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eon_catalog::CatalogOp;
    use eon_types::{schema, Oid, Value};

    fn mk_node(id: u64) -> Arc<NodeRuntime> {
        let shared: SharedFs = Arc::new(MemFs::new());
        NodeRuntime::new(NodeId(id), shared, "inc0", 1 << 20, 4, 42)
    }

    fn create_table_commit(node: &NodeRuntime, name: &str) {
        let mut t = node.catalog.begin();
        let oid = node.catalog.next_oid();
        t.push(CatalogOp::CreateTable(eon_catalog::Table {
            oid,
            name: name.into(),
            schema: schema![("a", Int)],
            projections: vec![],
            defaults: vec![Value::Null],
        }));
        let rec = node.catalog.commit(t).unwrap();
        node.store.append_local(&rec).unwrap();
    }

    #[test]
    fn restart_recovers_catalog_from_local_disk() {
        let node = mk_node(1);
        create_table_commit(&node, "t1");
        create_table_commit(&node, "t2");
        node.kill();
        assert!(!node.is_up());

        // Restart: new runtime over the same local disk.
        let shared: SharedFs = Arc::new(MemFs::new());
        let revived = NodeRuntime::with_local_disk(
            NodeId(1),
            node.local_disk.clone(),
            shared,
            "inc0",
            1 << 20,
            4,
            43,
        );
        let v = revived.recover_local().unwrap();
        assert_eq!(v, TxnVersion(2));
        assert!(revived.catalog.snapshot().table_by_name("t2").is_some());
        // Fresh process = fresh instance id (§5.1).
        assert_ne!(node.instance(), revived.instance());
        // OID floor bumped: new OIDs don't collide with recovered ones.
        let recovered_max = revived
            .catalog
            .snapshot()
            .obj_versions
            .keys()
            .map(|o| o.0)
            .max()
            .unwrap();
        assert!(revived.catalog.next_oid() > Oid(recovered_max));
    }

    #[test]
    fn query_version_gossip() {
        let node = mk_node(1);
        assert_eq!(node.min_query_version(), u64::MAX);
        let t1 = node.begin_query(TxnVersion(5));
        let t2 = node.begin_query(TxnVersion(3));
        assert_eq!(node.min_query_version(), 3);
        node.finish_query(t2);
        assert_eq!(node.min_query_version(), 5);
        node.finish_query(t1);
        assert_eq!(node.min_query_version(), u64::MAX);
    }

    #[test]
    fn sids_are_unique_per_node() {
        let node = mk_node(1);
        let a = node.next_sid();
        let b = node.next_sid();
        assert_ne!(a, b);
        assert_eq!(a.instance, node.instance());
    }
}
