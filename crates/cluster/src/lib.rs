//! Cluster substrate: the in-process node runtime and membership
//! machinery the Eon database (`eon-core`) is built on.
//!
//! The paper's evaluation runs on EC2 instances; we substitute an
//! in-process simulation (DESIGN.md §1). Each [`NodeRuntime`] owns what
//! a real node process owns — a catalog replica with its local
//! persistence, a disk cache, a SID factory, a pool of execution slots
//! — and can be killed (in-memory state lost, local disk retained) and
//! restarted, which is what drives the node-down experiments (Fig 12)
//! and the recovery claims of §6.1.

pub mod health;
pub mod membership;
pub mod node;
pub mod slots;

pub use health::{FailureDetector, HealthConfig, HealthEvent, HealthTransition, NodeHealth};
pub use membership::Membership;
pub use node::NodeRuntime;
pub use slots::{ExecSlots, SlotGuard, SlotWait};
