//! Deterministic tick-driven failure detection (DESIGN.md "Failure
//! detection & degraded modes").
//!
//! The paper's availability story (§3.4, §6.1) assumes somebody
//! *notices* that a node died. Real Vertica uses spread-based
//! heartbeats; here the detector is a pure state machine driven by
//! explicit ticks: each [`FailureDetector::tick`] probes every
//! commissioned node's liveness ([`crate::NodeRuntime::is_up`]) and
//! advances a per-node miss/hit counter. Because the only inputs are
//! the tick sequence and the probed liveness bits, the same kill/flap
//! schedule produces the same detection trace, tick for tick — which is
//! what lets the chaos tests assert byte-identical detection traces
//! across same-seed runs.
//!
//! State machine per node:
//!
//! ```text
//!           misses ≥ suspect_after      misses ≥ down_after
//!   Up ───────────────────────► Suspect ───────────────────► Down
//!    ▲                             │                           │
//!    └──── recover_after ──────────┴───────────────────────────┘
//!          consecutive hits
//! ```
//!
//! Hysteresis: a probe hit does **not** clear the miss counter until
//! the node has answered `recover_after` consecutive probes. A node
//! flapping up/down therefore keeps accumulating misses, is declared
//! DOWN once, and is not declared recovered until it holds stable —
//! the cluster repairs around it instead of thrashing subscriptions on
//! every flap.

use std::collections::HashMap;

use eon_types::NodeId;

use crate::membership::Membership;

/// Detector thresholds, all counted in ticks.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Consecutive-ish missed probes (see hysteresis above) before an
    /// Up node is declared SUSPECT.
    pub suspect_after: u32,
    /// Missed probes before a node is declared DOWN (must be ≥
    /// `suspect_after`; enforced at construction).
    pub down_after: u32,
    /// Consecutive probe hits before a SUSPECT/DOWN node is declared
    /// recovered and its miss history cleared.
    pub recover_after: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            suspect_after: 2,
            down_after: 4,
            recover_after: 2,
        }
    }
}

/// Detector verdict for one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeHealth {
    Up,
    Suspect,
    Down,
}

/// A detector state transition, stamped with the tick it happened on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthEvent {
    pub tick: u64,
    pub node: NodeId,
    pub transition: HealthTransition,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthTransition {
    /// Up → Suspect.
    Suspect,
    /// Suspect (or Up, if thresholds coincide) → Down.
    Down,
    /// Suspect/Down → Up after `recover_after` consecutive hits.
    Recovered,
}

impl std::fmt::Display for HealthEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = match self.transition {
            HealthTransition::Suspect => "SUSPECT",
            HealthTransition::Down => "DOWN",
            HealthTransition::Recovered => "RECOVERED",
        };
        write!(f, "t{} {} {}", self.tick, self.node, t)
    }
}

#[derive(Debug, Clone)]
struct Tracker {
    health: NodeHealth,
    /// Missed probes; only cleared by a full recovery streak.
    misses: u32,
    /// Current consecutive-hit streak.
    hits: u32,
}

impl Tracker {
    fn fresh() -> Self {
        Tracker {
            health: NodeHealth::Up,
            misses: 0,
            hits: 0,
        }
    }
}

/// The per-cluster failure detector. Pure state; the caller (the
/// eon-core supervisor, or a test) owns the tick cadence.
#[derive(Debug)]
pub struct FailureDetector {
    config: HealthConfig,
    tick: u64,
    trackers: HashMap<NodeId, Tracker>,
    trace: Vec<HealthEvent>,
}

impl FailureDetector {
    pub fn new(mut config: HealthConfig) -> Self {
        config.suspect_after = config.suspect_after.max(1);
        config.down_after = config.down_after.max(config.suspect_after);
        config.recover_after = config.recover_after.max(1);
        FailureDetector {
            config,
            tick: 0,
            trackers: HashMap::new(),
            trace: Vec::new(),
        }
    }

    pub fn config(&self) -> &HealthConfig {
        &self.config
    }

    /// Ticks elapsed so far.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// One heartbeat round: probe every commissioned node and return
    /// the transitions this tick produced. Decommissioned nodes drop
    /// out of the tracker map (removal is an operator action, not a
    /// failure).
    pub fn tick(&mut self, membership: &Membership) -> Vec<HealthEvent> {
        self.tick += 1;
        let nodes = membership.all();
        self.trackers.retain(|id, _| nodes.iter().any(|n| n.id == *id));
        let mut events = Vec::new();
        for node in nodes {
            let t = self.trackers.entry(node.id).or_insert_with(Tracker::fresh);
            if node.is_up() {
                t.hits += 1;
                if t.hits >= self.config.recover_after {
                    // Stable streak: clear the miss history; declare the
                    // recovery if the node had been marked.
                    t.misses = 0;
                    if t.health != NodeHealth::Up {
                        t.health = NodeHealth::Up;
                        events.push(HealthEvent {
                            tick: self.tick,
                            node: node.id,
                            transition: HealthTransition::Recovered,
                        });
                    }
                }
            } else {
                t.hits = 0;
                t.misses = t.misses.saturating_add(1);
                if t.misses >= self.config.down_after && t.health != NodeHealth::Down {
                    t.health = NodeHealth::Down;
                    events.push(HealthEvent {
                        tick: self.tick,
                        node: node.id,
                        transition: HealthTransition::Down,
                    });
                } else if t.misses >= self.config.suspect_after && t.health == NodeHealth::Up {
                    t.health = NodeHealth::Suspect;
                    events.push(HealthEvent {
                        tick: self.tick,
                        node: node.id,
                        transition: HealthTransition::Suspect,
                    });
                }
            }
        }
        self.trace.extend(events.iter().cloned());
        events
    }

    /// The detector's current verdict for `node` (Up if never probed).
    pub fn health(&self, node: NodeId) -> NodeHealth {
        self.trackers.get(&node).map(|t| t.health).unwrap_or(NodeHealth::Up)
    }

    /// Nodes currently declared DOWN.
    pub fn down_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .trackers
            .iter()
            .filter(|(_, t)| t.health == NodeHealth::Down)
            .map(|(id, _)| *id)
            .collect();
        v.sort();
        v
    }

    /// The full detection trace since construction — every transition
    /// with the tick it fired on. Same probe sequence ⇒ same trace.
    pub fn trace(&self) -> &[HealthEvent] {
        &self.trace
    }

    /// The trace rendered one event per line (`t7 node2 DOWN`), for
    /// cross-run determinism digests.
    pub fn trace_text(&self) -> String {
        self.trace
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeRuntime;
    use eon_storage::{MemFs, SharedFs};
    use std::sync::Arc;

    fn cluster(n: u64) -> Membership {
        let m = Membership::new();
        let shared: SharedFs = Arc::new(MemFs::new());
        for i in 0..n {
            m.add(NodeRuntime::new(NodeId(i), shared.clone(), "inc", 1 << 20, 4, 7));
        }
        m
    }

    fn cfg() -> HealthConfig {
        HealthConfig {
            suspect_after: 2,
            down_after: 4,
            recover_after: 2,
        }
    }

    #[test]
    fn healthy_cluster_emits_no_events() {
        let m = cluster(3);
        let mut d = FailureDetector::new(cfg());
        for _ in 0..10 {
            assert!(d.tick(&m).is_empty());
        }
        assert!(d.trace().is_empty());
        assert_eq!(d.health(NodeId(0)), NodeHealth::Up);
    }

    #[test]
    fn dead_node_goes_suspect_then_down_at_exact_ticks() {
        let m = cluster(3);
        let mut d = FailureDetector::new(cfg());
        d.tick(&m); // t1: all up
        m.get(NodeId(1)).unwrap().kill();
        assert!(d.tick(&m).is_empty()); // t2: 1 miss
        let ev = d.tick(&m); // t3: 2 misses → SUSPECT
        assert_eq!(
            ev,
            vec![HealthEvent {
                tick: 3,
                node: NodeId(1),
                transition: HealthTransition::Suspect
            }]
        );
        assert!(d.tick(&m).is_empty()); // t4: 3 misses
        let ev = d.tick(&m); // t5: 4 misses → DOWN
        assert_eq!(ev[0].transition, HealthTransition::Down);
        assert_eq!(ev[0].tick, 5);
        assert_eq!(d.down_nodes(), vec![NodeId(1)]);
        // Stays down without re-announcing.
        assert!(d.tick(&m).is_empty());
    }

    #[test]
    fn recovery_needs_a_stable_streak() {
        let m = cluster(2);
        let mut d = FailureDetector::new(cfg());
        m.get(NodeId(0)).unwrap().kill();
        for _ in 0..4 {
            d.tick(&m);
        }
        assert_eq!(d.health(NodeId(0)), NodeHealth::Down);
        // "Restart" by swapping in a fresh runtime under the same id.
        let shared: SharedFs = Arc::new(MemFs::new());
        m.add(NodeRuntime::new(NodeId(0), shared, "inc2", 1 << 20, 4, 8));
        assert!(d.tick(&m).is_empty()); // hit 1 of 2: not yet
        assert_eq!(d.health(NodeId(0)), NodeHealth::Down);
        let ev = d.tick(&m); // hit 2: recovered
        assert_eq!(ev[0].transition, HealthTransition::Recovered);
        assert_eq!(d.health(NodeId(0)), NodeHealth::Up);
        assert!(d.down_nodes().is_empty());
    }

    #[test]
    fn flapping_node_accumulates_misses_and_goes_down_once() {
        // Alternate dead/alive every tick: single hits never reach
        // recover_after, so the miss counter is never cleared and the
        // node is eventually declared DOWN — exactly once.
        let m = cluster(2);
        let mut d = FailureDetector::new(cfg());
        let shared: SharedFs = Arc::new(MemFs::new());
        for i in 0..16u64 {
            if i % 2 == 0 {
                m.get(NodeId(0)).unwrap().kill();
            } else {
                m.add(NodeRuntime::new(NodeId(0), shared.clone(), "inc", 1 << 20, 4, i));
            }
            d.tick(&m);
        }
        let downs = d
            .trace()
            .iter()
            .filter(|e| e.transition == HealthTransition::Down)
            .count();
        let recoveries = d
            .trace()
            .iter()
            .filter(|e| e.transition == HealthTransition::Recovered)
            .count();
        assert_eq!(downs, 1, "flapping must not thrash DOWN declarations: {:?}", d.trace());
        assert_eq!(recoveries, 0, "one-tick ups are not a recovery");
    }

    #[test]
    fn same_schedule_same_trace() {
        let run = || {
            let m = cluster(3);
            let mut d = FailureDetector::new(cfg());
            d.tick(&m);
            m.get(NodeId(2)).unwrap().kill();
            for _ in 0..6 {
                d.tick(&m);
            }
            d.trace_text()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("node2 DOWN"), "{a}");
    }

    #[test]
    fn decommissioned_node_is_forgotten() {
        let m = cluster(2);
        let mut d = FailureDetector::new(cfg());
        m.get(NodeId(1)).unwrap().kill();
        for _ in 0..4 {
            d.tick(&m);
        }
        assert_eq!(d.down_nodes(), vec![NodeId(1)]);
        m.remove(NodeId(1));
        d.tick(&m);
        assert!(d.down_nodes().is_empty());
    }

    #[test]
    fn thresholds_are_sanitized() {
        let d = FailureDetector::new(HealthConfig {
            suspect_after: 0,
            down_after: 0,
            recover_after: 0,
        });
        assert_eq!(d.config().suspect_after, 1);
        assert_eq!(d.config().down_after, 1);
        assert_eq!(d.config().recover_after, 1);
    }
}
