//! Execution slots (paper §4.2): each node can run a bounded number of
//! concurrent query fragments. "For a database with S shards, N nodes,
//! and E execution slots per node, a running query requires S of the
//! total N·E slots." Throughput scaling falls directly out of this
//! accounting, so the semaphore is the load-bearing primitive of the
//! Fig 11a experiment.

use std::sync::Arc;
use std::time::Instant;

use eon_obs::{Counter, Histogram, Registry};
use parking_lot::{Condvar, Mutex};

/// Registry handles for the slot semaphore. The queue-wait histogram is
/// wall-clock (excluded from deterministic snapshots); the acquisition
/// counters are pure functions of the workload.
#[derive(Clone)]
struct SlotMetrics {
    acquired: Arc<Counter>,
    slots_acquired: Arc<Counter>,
    queue_wait_us: Arc<Histogram>,
}

impl SlotMetrics {
    fn register(registry: &Registry, node: &str) -> Self {
        let labels: &[(&str, &str)] = &[("node", node), ("subsystem", "exec")];
        SlotMetrics {
            acquired: registry.counter("exec_slot_acquisitions_total", labels),
            slots_acquired: registry.counter("exec_slots_acquired_total", labels),
            queue_wait_us: registry.timing_histogram("exec_slot_queue_wait_us", labels),
        }
    }
}

struct Inner {
    available: Mutex<usize>,
    cv: Condvar,
    capacity: usize,
    metrics: Mutex<SlotMetrics>,
}

/// A counting semaphore over a node's execution slots.
#[derive(Clone)]
pub struct ExecSlots {
    inner: Arc<Inner>,
}

/// RAII guard holding `n` slots; released on drop.
pub struct SlotGuard {
    inner: Arc<Inner>,
    n: usize,
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        let mut avail = self.inner.available.lock();
        *avail += self.n;
        self.inner.cv.notify_all();
    }
}

impl ExecSlots {
    pub fn new(capacity: usize) -> Self {
        ExecSlots {
            inner: Arc::new(Inner {
                available: Mutex::new(capacity),
                cv: Condvar::new(),
                capacity,
                metrics: Mutex::new(SlotMetrics::register(&Registry::new(), "detached")),
            }),
        }
    }

    /// Re-home this semaphore's counters onto a shared registry,
    /// labeled by node.
    pub fn attach_metrics(&self, registry: &Registry, node: &str) {
        *self.inner.metrics.lock() = SlotMetrics::register(registry, node);
    }

    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    pub fn available(&self) -> usize {
        *self.inner.available.lock()
    }

    /// Block until `n` slots are free, then take them. `n` is clamped
    /// to capacity so a query needing more slots than the node has
    /// still makes progress (it just serializes).
    pub fn acquire(&self, n: usize) -> SlotGuard {
        let n = n.min(self.inner.capacity).max(1);
        let queued = Instant::now();
        let mut avail = self.inner.available.lock();
        while *avail < n {
            self.inner.cv.wait(&mut avail);
        }
        *avail -= n;
        drop(avail);
        let m = self.inner.metrics.lock();
        m.acquired.inc();
        m.slots_acquired.add(n as u64);
        m.queue_wait_us.observe(queued.elapsed().as_micros() as u64);
        SlotGuard {
            inner: self.inner.clone(),
            n,
        }
    }

    /// Non-blocking acquire; `None` when the node is saturated.
    pub fn try_acquire(&self, n: usize) -> Option<SlotGuard> {
        let n = n.min(self.inner.capacity).max(1);
        let mut avail = self.inner.available.lock();
        if *avail < n {
            return None;
        }
        *avail -= n;
        drop(avail);
        let m = self.inner.metrics.lock();
        m.acquired.inc();
        m.slots_acquired.add(n as u64);
        Some(SlotGuard {
            inner: self.inner.clone(),
            n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn acquire_and_release() {
        let s = ExecSlots::new(4);
        let g1 = s.acquire(3);
        assert_eq!(s.available(), 1);
        assert!(s.try_acquire(2).is_none());
        drop(g1);
        assert_eq!(s.available(), 4);
        assert!(s.try_acquire(2).is_some());
    }

    #[test]
    fn oversized_request_clamps() {
        let s = ExecSlots::new(2);
        let g = s.acquire(10);
        assert_eq!(s.available(), 0);
        drop(g);
    }

    #[test]
    fn blocked_acquire_wakes_on_release() {
        let s = ExecSlots::new(1);
        let g = s.acquire(1);
        let s2 = s.clone();
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = done.clone();
        let h = std::thread::spawn(move || {
            let _g = s2.acquire(1);
            done2.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(done.load(Ordering::SeqCst), 0, "should be blocked");
        drop(g);
        h.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrency_never_exceeds_capacity() {
        let s = ExecSlots::new(3);
        let peak = Arc::new(AtomicUsize::new(0));
        let cur = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..12 {
            let (s, peak, cur) = (s.clone(), peak.clone(), cur.clone());
            handles.push(std::thread::spawn(move || {
                let _g = s.acquire(1);
                let now = cur.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(2));
                cur.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3);
    }
}
