//! Execution slots (paper §4.2): each node can run a bounded number of
//! concurrent query fragments. "For a database with S shards, N nodes,
//! and E execution slots per node, a running query requires S of the
//! total N·E slots." Throughput scaling falls directly out of this
//! accounting, so the semaphore is the load-bearing primitive of the
//! Fig 11a experiment.
//!
//! Waiting on the semaphore is never unbounded (DESIGN.md "Admission
//! control & workload management"):
//!
//! * [`ExecSlots::acquire_wait`] takes a [`SlotWait`] carrying an
//!   optional deadline and an optional [`CancelToken`]. The deadline is
//!   a **planned-wait budget**: it is consumed by the planned condvar
//!   tick, not by measured wall clock, so the give-up point — how many
//!   ticks a waiter sits through before `DeadlineExceeded` — is a pure
//!   function of the configuration, like `RetryPolicy::max_elapsed`.
//! * [`ExecSlots::close`] poisons the semaphore and wakes every waiter
//!   with `NodeDown` — a query parked on a dying node's slots fails
//!   fast and the coordinator's failover loop re-plans on survivors.
//!
//! Counters are kept in raw atomics owned by the semaphore itself and
//! mirrored into the registry; [`ExecSlots::attach_metrics`] carries
//! everything already counted onto the shared registry, so slots
//! acquired before a node is commissioned are never silently dropped.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eon_obs::{Counter, Gauge, Histogram, Registry};
use eon_types::{CancelToken, EonError, Result};
use parking_lot::{Condvar, Mutex};

/// How a caller is willing to wait for slots.
#[derive(Clone, Debug)]
pub struct SlotWait {
    /// Total planned-wait budget; `None` waits until slots free up or
    /// the semaphore closes.
    pub timeout: Option<Duration>,
    /// Condvar re-check tick. The budget is consumed in whole ticks,
    /// which is what makes the give-up point deterministic.
    pub tick: Duration,
    /// Session cancellation, checked every tick.
    pub cancel: Option<CancelToken>,
}

impl Default for SlotWait {
    fn default() -> Self {
        SlotWait {
            timeout: None,
            tick: Duration::from_millis(1),
            cancel: None,
        }
    }
}

impl SlotWait {
    /// Wait forever (but still wake on close/cancel).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Give up after a planned-wait budget of `timeout`.
    pub fn with_timeout(timeout: Duration) -> Self {
        SlotWait {
            timeout: Some(timeout),
            ..Self::default()
        }
    }

    /// Attach a cancellation token.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// Raw totals owned by the semaphore — the source of truth the registry
/// mirrors. Survives [`ExecSlots::attach_metrics`] re-homing.
#[derive(Default)]
struct SlotStats {
    acquired: AtomicU64,
    slots_acquired: AtomicU64,
    timeouts: AtomicU64,
    cancellations: AtomicU64,
    node_down_wakeups: AtomicU64,
}

/// Registry handles for the slot semaphore. The queue-wait histogram is
/// wall-clock (excluded from deterministic snapshots); the acquisition
/// counters are pure functions of the workload.
#[derive(Clone)]
struct SlotMetrics {
    acquired: Arc<Counter>,
    slots_acquired: Arc<Counter>,
    timeouts: Arc<Counter>,
    cancellations: Arc<Counter>,
    node_down_wakeups: Arc<Counter>,
    waiters: Arc<Gauge>,
    queue_wait_us: Arc<Histogram>,
}

impl SlotMetrics {
    fn register(registry: &Registry, node: &str) -> Self {
        let labels: &[(&str, &str)] = &[("node", node), ("subsystem", "exec")];
        SlotMetrics {
            acquired: registry.counter("exec_slot_acquisitions_total", labels),
            slots_acquired: registry.counter("exec_slots_acquired_total", labels),
            timeouts: registry.counter("exec_slot_timeouts_total", labels),
            cancellations: registry.counter("exec_slot_cancellations_total", labels),
            node_down_wakeups: registry.counter("exec_slot_node_down_wakeups_total", labels),
            waiters: registry.gauge("exec_slot_waiters", labels),
            queue_wait_us: registry.timing_histogram("exec_slot_queue_wait_us", labels),
        }
    }
}

struct State {
    available: usize,
    /// Closed = the owning node died; every waiter (present and future)
    /// gets `NodeDown` until [`ExecSlots::reopen`].
    closed: bool,
    waiters: usize,
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
    capacity: usize,
    stats: SlotStats,
    /// `None` until [`ExecSlots::attach_metrics`] re-homes the counters
    /// onto a real registry — a detached semaphore counts only into
    /// [`SlotStats`], and the totals carry over on attach.
    metrics: Mutex<Option<SlotMetrics>>,
}

/// A counting semaphore over a node's execution slots.
#[derive(Clone)]
pub struct ExecSlots {
    inner: Arc<Inner>,
}

/// RAII guard holding `n` slots; released on drop.
pub struct SlotGuard {
    inner: Arc<Inner>,
    n: usize,
}

impl std::fmt::Debug for SlotGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotGuard").field("n", &self.n).finish()
    }
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock();
        st.available += self.n;
        self.inner.cv.notify_all();
    }
}

impl ExecSlots {
    pub fn new(capacity: usize) -> Self {
        ExecSlots {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    available: capacity,
                    closed: false,
                    waiters: 0,
                }),
                cv: Condvar::new(),
                capacity,
                stats: SlotStats::default(),
                metrics: Mutex::new(None),
            }),
        }
    }

    /// Re-home this semaphore's counters onto a shared registry,
    /// labeled by node. Totals counted while detached carry over, so
    /// the registry always agrees with the semaphore's own accounting.
    pub fn attach_metrics(&self, registry: &Registry, node: &str) {
        let m = SlotMetrics::register(registry, node);
        m.acquired.add(self.inner.stats.acquired.load(Ordering::Relaxed));
        m.slots_acquired
            .add(self.inner.stats.slots_acquired.load(Ordering::Relaxed));
        m.timeouts.add(self.inner.stats.timeouts.load(Ordering::Relaxed));
        m.cancellations
            .add(self.inner.stats.cancellations.load(Ordering::Relaxed));
        m.node_down_wakeups
            .add(self.inner.stats.node_down_wakeups.load(Ordering::Relaxed));
        m.waiters.set(self.inner.state.lock().waiters as i64);
        *self.inner.metrics.lock() = Some(m);
    }

    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    pub fn available(&self) -> usize {
        self.inner.state.lock().available
    }

    pub fn is_closed(&self) -> bool {
        self.inner.state.lock().closed
    }

    /// Poison the semaphore: every current and future waiter fails with
    /// `NodeDown`. Called on node kill so no query parks on a dead
    /// node's slots. Slots already held stay held — their guards still
    /// release into the pool, keeping the books balanced for a later
    /// [`ExecSlots::reopen`].
    pub fn close(&self) {
        let mut st = self.inner.state.lock();
        st.closed = true;
        self.inner.cv.notify_all();
    }

    /// Re-arm a closed semaphore (enterprise process revive; Eon
    /// restarts build a fresh runtime instead).
    pub fn reopen(&self) {
        let mut st = self.inner.state.lock();
        st.closed = false;
        self.inner.cv.notify_all();
    }

    fn on_acquired(&self, n: usize, queued_at: Instant) {
        self.inner.stats.acquired.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .slots_acquired
            .fetch_add(n as u64, Ordering::Relaxed);
        if let Some(m) = self.inner.metrics.lock().as_ref() {
            m.acquired.inc();
            m.slots_acquired.add(n as u64);
            m.queue_wait_us
                .observe(queued_at.elapsed().as_micros() as u64);
        }
    }

    fn on_failed(&self, raw: &AtomicU64, pick: fn(&SlotMetrics) -> &Arc<Counter>) {
        raw.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.inner.metrics.lock().as_ref() {
            pick(m).inc();
        }
    }

    fn set_waiters(&self, n: usize) {
        if let Some(m) = self.inner.metrics.lock().as_ref() {
            m.waiters.set(n as i64);
        }
    }

    /// Block until `n` slots are free, then take them. `n` is clamped
    /// to capacity so a query needing more slots than the node has
    /// still makes progress (it just serializes). Fails with `NodeDown`
    /// if the semaphore is (or becomes) closed — waiting forever on a
    /// dead node is the hang this layer exists to prevent.
    pub fn acquire(&self, n: usize) -> Result<SlotGuard> {
        self.acquire_wait(n, &SlotWait::unbounded())
    }

    /// [`ExecSlots::acquire`] with a wait policy: a planned-wait
    /// deadline, a cancellation token, or both. The deadline budget is
    /// consumed by the planned tick per condvar wait — never by
    /// measured wall clock — so the give-up point is deterministic
    /// regardless of scheduler noise.
    pub fn acquire_wait(&self, n: usize, wait: &SlotWait) -> Result<SlotGuard> {
        let n = n.min(self.inner.capacity).max(1);
        let queued_at = Instant::now();
        let tick = wait.tick.max(Duration::from_micros(100));
        let mut planned = Duration::ZERO;
        let mut st = self.inner.state.lock();
        let mut waiting = false;
        let outcome = loop {
            if st.closed {
                break Err(EonError::NodeDown("execution slots closed".into()));
            }
            if let Some(c) = &wait.cancel {
                if c.is_cancelled() {
                    break Err(EonError::Cancelled("execution slot wait".into()));
                }
            }
            if st.available >= n {
                st.available -= n;
                break Ok(());
            }
            if let Some(deadline) = wait.timeout {
                if planned >= deadline {
                    break Err(EonError::DeadlineExceeded(format!(
                        "slot wait budget {deadline:?} spent waiting for {n} slot(s)"
                    )));
                }
            }
            if !waiting {
                waiting = true;
                st.waiters += 1;
                let w = st.waiters;
                drop(st);
                self.set_waiters(w);
                st = self.inner.state.lock();
                // Re-check from the top: state may have changed while
                // the lock was dropped to publish the gauge.
                continue;
            }
            self.inner.cv.wait_for(&mut st, tick);
            planned += tick;
        };
        if waiting {
            st.waiters -= 1;
            let w = st.waiters;
            drop(st);
            self.set_waiters(w);
        } else {
            drop(st);
        }
        match outcome {
            Ok(()) => {
                self.on_acquired(n, queued_at);
                Ok(SlotGuard {
                    inner: self.inner.clone(),
                    n,
                })
            }
            Err(e) => {
                match &e {
                    EonError::DeadlineExceeded(_) => {
                        self.on_failed(&self.inner.stats.timeouts, |m| &m.timeouts)
                    }
                    EonError::Cancelled(_) => {
                        self.on_failed(&self.inner.stats.cancellations, |m| &m.cancellations)
                    }
                    _ => self.on_failed(&self.inner.stats.node_down_wakeups, |m| {
                        &m.node_down_wakeups
                    }),
                }
                Err(e)
            }
        }
    }

    /// Non-blocking acquire; `None` when the node is saturated or the
    /// semaphore is closed.
    pub fn try_acquire(&self, n: usize) -> Option<SlotGuard> {
        let n = n.min(self.inner.capacity).max(1);
        let queued_at = Instant::now();
        {
            let mut st = self.inner.state.lock();
            if st.closed || st.available < n {
                return None;
            }
            st.available -= n;
        }
        self.on_acquired(n, queued_at);
        Some(SlotGuard {
            inner: self.inner.clone(),
            n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn acquire_and_release() {
        let s = ExecSlots::new(4);
        let g1 = s.acquire(3).unwrap();
        assert_eq!(s.available(), 1);
        assert!(s.try_acquire(2).is_none());
        drop(g1);
        assert_eq!(s.available(), 4);
        assert!(s.try_acquire(2).is_some());
    }

    #[test]
    fn oversized_request_clamps() {
        let s = ExecSlots::new(2);
        let g = s.acquire(10).unwrap();
        assert_eq!(s.available(), 0);
        drop(g);
    }

    #[test]
    fn blocked_acquire_wakes_on_release() {
        let s = ExecSlots::new(1);
        let g = s.acquire(1).unwrap();
        let s2 = s.clone();
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = done.clone();
        let h = std::thread::spawn(move || {
            let _g = s2.acquire(1).unwrap();
            done2.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(done.load(Ordering::SeqCst), 0, "should be blocked");
        drop(g);
        h.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrency_never_exceeds_capacity() {
        let s = ExecSlots::new(3);
        let peak = Arc::new(AtomicUsize::new(0));
        let cur = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..12 {
            let (s, peak, cur) = (s.clone(), peak.clone(), cur.clone());
            handles.push(std::thread::spawn(move || {
                let _g = s.acquire(1).unwrap();
                let now = cur.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(2));
                cur.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn deadline_expires_instead_of_hanging() {
        let s = ExecSlots::new(1);
        let _g = s.acquire(1).unwrap();
        let err = s
            .acquire_wait(1, &SlotWait::with_timeout(Duration::from_millis(10)))
            .unwrap_err();
        assert!(matches!(err, EonError::DeadlineExceeded(_)), "{err}");
        // The failed waiter left no debt.
        assert_eq!(s.available(), 0);
        drop(_g);
        assert_eq!(s.available(), 1);
    }

    #[test]
    fn cancel_token_wakes_waiter() {
        let s = ExecSlots::new(1);
        let g = s.acquire(1).unwrap();
        let token = CancelToken::new();
        let wait = SlotWait::unbounded().cancel(token.clone());
        let s2 = s.clone();
        let h = std::thread::spawn(move || s2.acquire_wait(1, &wait));
        std::thread::sleep(Duration::from_millis(10));
        token.cancel();
        let err = h.join().unwrap().unwrap_err();
        assert!(matches!(err, EonError::Cancelled(_)), "{err}");
        drop(g);
        assert_eq!(s.available(), 1);
    }

    #[test]
    fn close_wakes_parked_waiters_with_node_down() {
        let s = ExecSlots::new(1);
        let g = s.acquire(1).unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s2 = s.clone();
            handles.push(std::thread::spawn(move || s2.acquire(1)));
        }
        std::thread::sleep(Duration::from_millis(10));
        s.close();
        for h in handles {
            let err = h.join().unwrap().unwrap_err();
            assert!(matches!(err, EonError::NodeDown(_)), "{err}");
        }
        // New arrivals fail fast too.
        assert!(matches!(
            s.acquire(1).unwrap_err(),
            EonError::NodeDown(_)
        ));
        assert!(s.try_acquire(1).is_none());
        // Held guards still release; reopen restores service.
        drop(g);
        s.reopen();
        assert_eq!(s.available(), 1);
        drop(s.acquire(1).unwrap());
        assert_eq!(s.available(), 1);
    }

    #[test]
    fn attach_metrics_carries_detached_totals() {
        let s = ExecSlots::new(4);
        drop(s.acquire(2).unwrap());
        drop(s.acquire(1).unwrap());
        let _held = s.acquire(4).unwrap();
        let _ = s
            .acquire_wait(1, &SlotWait::with_timeout(Duration::from_millis(5)))
            .unwrap_err();
        let registry = Registry::new();
        s.attach_metrics(&registry, "n0");
        drop(s.try_acquire(4)); // closed-out, available==0 → None
        let snap = registry.deterministic_snapshot();
        let metric = |name: &str| {
            snap.get(&format!("{name}{{node=\"n0\",subsystem=\"exec\"}}"))
                .and_then(|v| v.as_u64())
                .unwrap_or(u64::MAX)
        };
        assert_eq!(metric("exec_slot_acquisitions_total"), 3);
        assert_eq!(metric("exec_slots_acquired_total"), 7);
        assert_eq!(metric("exec_slot_timeouts_total"), 1);
    }
}
