//! Cluster membership and viability (paper §3.4).
//!
//! "To form a cluster, Vertica needs a quorum of nodes, all the shards
//! to be represented by nodes with subscriptions that were ACTIVE …
//! If sufficient nodes fail such that the constraints are violated
//! during cluster operation, the cluster will shut down automatically
//! to avoid divergence or wrong answers."

use std::collections::HashMap;
use std::sync::Arc;

use eon_catalog::CatalogState;
use eon_types::{EonError, NodeId, Result};
use parking_lot::RwLock;

use crate::node::NodeRuntime;

/// The set of commissioned nodes, keyed by id.
#[derive(Default)]
pub struct Membership {
    nodes: RwLock<HashMap<NodeId, Arc<NodeRuntime>>>,
}

impl Membership {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&self, node: Arc<NodeRuntime>) {
        self.nodes.write().insert(node.id, node);
    }

    pub fn remove(&self, id: NodeId) -> Option<Arc<NodeRuntime>> {
        self.nodes.write().remove(&id)
    }

    pub fn get(&self, id: NodeId) -> Option<Arc<NodeRuntime>> {
        self.nodes.read().get(&id).cloned()
    }

    pub fn all(&self) -> Vec<Arc<NodeRuntime>> {
        let mut v: Vec<_> = self.nodes.read().values().cloned().collect();
        v.sort_by_key(|n| n.id);
        v
    }

    pub fn up_nodes(&self) -> Vec<Arc<NodeRuntime>> {
        self.all().into_iter().filter(|n| n.is_up()).collect()
    }

    pub fn up_ids(&self) -> Vec<NodeId> {
        self.up_nodes().iter().map(|n| n.id).collect()
    }

    pub fn len(&self) -> usize {
        self.nodes.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.read().is_empty()
    }

    /// Quorum: strictly more than half of commissioned nodes are up.
    pub fn has_quorum(&self) -> bool {
        let total = self.len();
        total > 0 && self.up_nodes().len() * 2 > total
    }

    /// Full §3.4 viability check: quorum + every shard served by an
    /// ACTIVE subscriber that is up. Err describes the violation.
    pub fn check_viable(&self, catalog: &CatalogState) -> Result<()> {
        if !self.has_quorum() {
            return Err(EonError::ClusterDown(format!(
                "quorum lost: {}/{} nodes up",
                self.up_nodes().len(),
                self.len()
            )));
        }
        let up = self.up_ids();
        if !catalog.shards_covered(&up) {
            return Err(EonError::ClusterDown(
                "some shard has no up ACTIVE subscriber".into(),
            ));
        }
        Ok(())
    }

    /// The node with the lowest id among up nodes — the deterministic
    /// "elected leader" used for truncation-version writing (§3.5).
    pub fn leader(&self) -> Option<Arc<NodeRuntime>> {
        self.up_nodes().into_iter().min_by_key(|n| n.id)
    }

    /// Cluster-wide minimum query version for §6.5 deletion decisions.
    /// `None` when **zero nodes are up**: during a full outage nobody
    /// can vouch that no query holds an old version (a restarting node
    /// may resume one), so the reaper must skip the pass rather than
    /// treat the cluster as quiescent. With up-but-idle nodes the value
    /// is `Some(u64::MAX)` — a genuine "nothing held" attestation.
    pub fn min_query_version(&self) -> Option<u64> {
        self.up_nodes()
            .iter()
            .map(|n| n.min_query_version())
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eon_catalog::{CatalogOp, ShardDef, ShardKind, SubState, Subscription};
    use eon_storage::{MemFs, SharedFs};
    use eon_types::{HashRange, ShardId, TxnVersion};

    fn mk_membership(n: u64) -> Membership {
        let m = Membership::new();
        let shared: SharedFs = Arc::new(MemFs::new());
        for i in 0..n {
            m.add(NodeRuntime::new(NodeId(i), shared.clone(), "inc", 1 << 20, 4, 7));
        }
        m
    }

    fn covered_state(shard_count: usize, nodes: &[u64]) -> CatalogState {
        let mut st = CatalogState::default();
        let defs: Vec<ShardDef> = HashRange::split_even(shard_count)
            .into_iter()
            .enumerate()
            .map(|(i, range)| ShardDef {
                id: ShardId(i as u64),
                kind: ShardKind::Segment,
                range,
            })
            .collect();
        st.apply(&CatalogOp::DefineShards(defs), TxnVersion(1)).unwrap();
        for (i, _) in (0..shard_count).enumerate() {
            for &n in nodes {
                st.apply(
                    &CatalogOp::UpsertSubscription(Subscription {
                        node: NodeId(n),
                        shard: ShardId(i as u64),
                        state: SubState::Active,
                    }),
                    TxnVersion(2),
                )
                .unwrap();
            }
        }
        st
    }

    #[test]
    fn quorum_thresholds() {
        let m = mk_membership(4);
        assert!(m.has_quorum());
        m.get(NodeId(0)).unwrap().kill();
        assert!(m.has_quorum()); // 3/4
        m.get(NodeId(1)).unwrap().kill();
        assert!(!m.has_quorum()); // 2/4 is not a majority
    }

    #[test]
    fn viability_needs_shard_coverage() {
        let m = mk_membership(2);
        // Shards only subscribed by node 0.
        let st = covered_state(2, &[0]);
        assert!(m.check_viable(&st).is_ok());
        m.get(NodeId(0)).unwrap().kill();
        // Quorum still fails (1/2); and coverage fails too.
        assert!(m.check_viable(&st).is_err());
    }

    #[test]
    fn leader_is_lowest_up_node() {
        let m = mk_membership(3);
        assert_eq!(m.leader().unwrap().id, NodeId(0));
        m.get(NodeId(0)).unwrap().kill();
        assert_eq!(m.leader().unwrap().id, NodeId(1));
    }

    #[test]
    fn min_query_version_across_cluster() {
        let m = mk_membership(2);
        // Up-but-idle nodes attest "nothing held".
        assert_eq!(m.min_query_version(), Some(u64::MAX));
        m.get(NodeId(1)).unwrap().begin_query(TxnVersion(4));
        assert_eq!(m.min_query_version(), Some(4));
        // Full outage: no attestation at all — the reaper must skip.
        m.get(NodeId(0)).unwrap().kill();
        m.get(NodeId(1)).unwrap().kill();
        assert_eq!(m.min_query_version(), None);
    }

    #[test]
    fn remove_and_len() {
        let m = mk_membership(2);
        assert_eq!(m.len(), 2);
        assert!(m.remove(NodeId(0)).is_some());
        assert_eq!(m.len(), 1);
        assert!(m.get(NodeId(0)).is_none());
    }
}
