//! The SQL AST: deliberately close to the SELECT grammar, with name
//! resolution deferred to the planner.

use eon_types::Value;

/// A (possibly qualified) column reference: `c` or `t.c`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColRef {
    pub table: Option<String>,
    pub column: String,
}

/// Scalar expression before name resolution.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    Col(ColRef),
    Lit(Value),
    Binary {
        op: BinOp,
        l: Box<SqlExpr>,
        r: Box<SqlExpr>,
    },
    And(Vec<SqlExpr>),
    Or(Vec<SqlExpr>),
    Not(Box<SqlExpr>),
    IsNull {
        expr: Box<SqlExpr>,
        negated: bool,
    },
    Like {
        expr: Box<SqlExpr>,
        pattern: String,
        negated: bool,
    },
    InList {
        expr: Box<SqlExpr>,
        list: Vec<Value>,
        negated: bool,
    },
    Between {
        expr: Box<SqlExpr>,
        lo: Box<SqlExpr>,
        hi: Box<SqlExpr>,
    },
    /// Aggregate call — only legal in the SELECT list / HAVING.
    Agg {
        func: AggCall,
        arg: Option<Box<SqlExpr>>,
        distinct: bool,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggCall {
    Sum,
    Count,
    Avg,
    Min,
    Max,
}

/// One SELECT-list item.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: SqlExpr,
    pub alias: Option<String>,
}

/// `FROM t [AS] a` with zero or more joins.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    Inner,
    Left,
}

/// `JOIN t ON a.x = b.y [AND a.p = b.q …]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub kind: JoinType,
    pub table: TableRef,
    /// Equality pairs from the ON clause.
    pub on: Vec<(ColRef, ColRef)>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Column name, alias, or 1-based SELECT position.
    pub key: OrderKey,
    pub desc: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub enum OrderKey {
    Name(ColRef),
    Position(usize),
}

/// A full SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub items: Vec<SelectItem>,
    pub from: TableRef,
    pub joins: Vec<Join>,
    pub where_: Option<SqlExpr>,
    pub group_by: Vec<ColRef>,
    pub having: Option<SqlExpr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<usize>,
}

impl SelectStmt {
    /// Output column labels, one per SELECT-list item: the alias when
    /// given, otherwise a rendering of the expression (`SUM(price)`,
    /// `t.c`, `?column?` for anything structural). This is what a
    /// network client shows as the result-table header.
    pub fn output_columns(&self) -> Vec<String> {
        self.items.iter().map(column_label).collect()
    }
}

/// Label for one SELECT-list item (alias, else rendered expression).
fn column_label(item: &SelectItem) -> String {
    match &item.alias {
        Some(a) => a.clone(),
        None => render_expr(&item.expr),
    }
}

fn render_colref(c: &ColRef) -> String {
    match &c.table {
        Some(t) => format!("{t}.{}", c.column),
        None => c.column.clone(),
    }
}

fn render_expr(e: &SqlExpr) -> String {
    match e {
        SqlExpr::Col(c) => render_colref(c),
        SqlExpr::Lit(v) => v.to_string(),
        SqlExpr::Binary { op, l, r } => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Eq => "=",
                BinOp::Ne => "<>",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
            };
            format!("{} {sym} {}", render_expr(l), render_expr(r))
        }
        SqlExpr::Agg { func, arg, distinct } => {
            let name = match func {
                AggCall::Sum => "SUM",
                AggCall::Count => "COUNT",
                AggCall::Avg => "AVG",
                AggCall::Min => "MIN",
                AggCall::Max => "MAX",
            };
            let inner = match arg {
                Some(a) => format!(
                    "{}{}",
                    if *distinct { "DISTINCT " } else { "" },
                    render_expr(a)
                ),
                None => "*".to_string(),
            };
            format!("{name}({inner})")
        }
        // Predicates in a SELECT list are rare; a generic label keeps
        // headers short without losing the positional mapping.
        SqlExpr::And(_)
        | SqlExpr::Or(_)
        | SqlExpr::Not(_)
        | SqlExpr::IsNull { .. }
        | SqlExpr::Like { .. }
        | SqlExpr::InList { .. }
        | SqlExpr::Between { .. } => "?column?".to_string(),
    }
}
