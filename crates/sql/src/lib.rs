//! A small SQL front end over the plan language.
//!
//! Vertica is a SQL database (§2); this crate closes the usability gap
//! between the hand-built plan API and a query language. It covers the
//! analytics subset the paper's workloads exercise:
//!
//! ```sql
//! SELECT c.region, SUM(s.price * s.qty) AS revenue, COUNT(*)
//! FROM sales s
//! JOIN customer c ON s.cust_id = c.id
//! WHERE s.price > 10 AND c.segment = 'BUILDING'
//! GROUP BY c.region
//! ORDER BY revenue DESC
//! LIMIT 10
//! ```
//!
//! — projections, arithmetic, comparisons, `AND`/`OR`/`NOT`, `LIKE`,
//! `IN`, `BETWEEN`, `IS [NOT] NULL`, inner/left joins with equality `ON`
//! chains, aggregates (`SUM`/`COUNT`/`AVG`/`MIN`/`MAX`,
//! `COUNT(DISTINCT …)`), `GROUP BY`, `HAVING`, `ORDER BY`, `LIMIT`, and
//! date literals `DATE '1994-01-01'`.
//!
//! [`parse`] produces an AST; [`plan`] resolves names against a
//! [`SchemaSource`] (any catalog) and emits an `eon_exec::Plan`. Scans
//! of the leftmost table stay shard-local; joined tables broadcast —
//! the same safe defaults the hand-built workloads use.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod planner;

pub use ast::SelectStmt;
pub use parser::parse;
pub use planner::{plan, SchemaSource};

/// Parse + plan in one call.
pub fn compile(
    sql: &str,
    schemas: &dyn SchemaSource,
) -> eon_types::Result<eon_exec::Plan> {
    plan(&parse(sql)?, schemas)
}

/// [`compile`], additionally returning the output column labels (alias
/// or rendered expression, positionally aligned with result rows) —
/// the serverable surface: a network client needs headers to draw a
/// result table.
pub fn compile_with_columns(
    sql: &str,
    schemas: &dyn SchemaSource,
) -> eon_types::Result<(eon_exec::Plan, Vec<String>)> {
    let stmt = parse(sql)?;
    let columns = stmt.output_columns();
    Ok((plan(&stmt, schemas)?, columns))
}

/// `EXPLAIN`: compile the statement and render the plan tree without
/// executing it. Shows pushdown and distribution decisions per scan.
pub fn explain(sql: &str, schemas: &dyn SchemaSource) -> eon_types::Result<String> {
    Ok(compile(sql, schemas)?.describe())
}
