//! Name resolution and planning: AST → `eon_exec::Plan`.
//!
//! Planning follows the same conventions as the hand-built workloads:
//! the leftmost table scans shard-local, joined tables broadcast
//! (`Global`), and WHERE conjuncts that are simple column-vs-literal
//! tests on a single base table are pushed into that table's scan for
//! block pruning (§2.1); the rest become a residual filter.

use std::collections::HashMap;

use eon_columnar::pruning::CmpOp;
use eon_columnar::Predicate;
use eon_exec::{AggFunc, AggSpec, Distribution, Expr, JoinKind, Plan, ScanSpec, SortKey};
use eon_types::{EonError, Result, Schema, Value};

use crate::ast::*;

/// Where the planner looks up table schemas. `eon_core::EonDb::sql`
/// adapts its catalog snapshot; tests can use a plain map.
pub trait SchemaSource {
    fn table_schema(&self, name: &str) -> Result<Schema>;
}

impl SchemaSource for HashMap<String, Schema> {
    fn table_schema(&self, name: &str) -> Result<Schema> {
        self.get(name)
            .cloned()
            .ok_or_else(|| EonError::UnknownTable(name.to_owned()))
    }
}

/// One relation in the FROM clause with its slot in the join output.
struct Relation {
    /// Lookup names: alias if given, else table name.
    binding: String,
    table: String,
    schema: Schema,
    /// Column offset of this relation in the join output row.
    offset: usize,
}

struct Namespace {
    relations: Vec<Relation>,
}

impl Namespace {
    /// Resolve a column reference to (relation index, absolute column).
    fn resolve(&self, c: &ColRef) -> Result<(usize, usize)> {
        if let Some(t) = &c.table {
            let (ri, rel) = self
                .relations
                .iter()
                .enumerate()
                .find(|(_, r)| r.binding.eq_ignore_ascii_case(t))
                .ok_or_else(|| EonError::Query(format!("unknown table or alias '{t}'")))?;
            let local = rel.schema.index_of(&c.column)?;
            Ok((ri, rel.offset + local))
        } else {
            let mut found = None;
            for (ri, rel) in self.relations.iter().enumerate() {
                if let Ok(local) = rel.schema.index_of(&c.column) {
                    if found.is_some() {
                        return Err(EonError::Query(format!(
                            "column '{}' is ambiguous",
                            c.column
                        )));
                    }
                    found = Some((ri, rel.offset + local));
                }
            }
            found.ok_or_else(|| EonError::UnknownColumn(c.column.clone()))
        }
    }
}

/// Plan a parsed statement against the given schemas.
pub fn plan(stmt: &SelectStmt, schemas: &dyn SchemaSource) -> Result<Plan> {
    // ---- namespace -------------------------------------------------
    let mut relations = Vec::new();
    let mut offset = 0;
    let add_rel = |tref: &TableRef, relations: &mut Vec<Relation>, offset: &mut usize| -> Result<()> {
        let schema = schemas.table_schema(&tref.table)?;
        let width = schema.len();
        relations.push(Relation {
            binding: tref.alias.clone().unwrap_or_else(|| tref.table.clone()),
            table: tref.table.clone(),
            schema,
            offset: *offset,
        });
        *offset += width;
        Ok(())
    };
    add_rel(&stmt.from, &mut relations, &mut offset)?;
    for j in &stmt.joins {
        add_rel(&j.table, &mut relations, &mut offset)?;
    }
    let ns = Namespace { relations };

    // ---- WHERE split: pushdown vs residual -------------------------
    let mut pushdown: Vec<Vec<Predicate>> = vec![Vec::new(); ns.relations.len()];
    let mut residual: Vec<SqlExpr> = Vec::new();
    if let Some(w) = &stmt.where_ {
        let conjuncts = match w {
            SqlExpr::And(terms) => terms.clone(),
            other => vec![other.clone()],
        };
        for c in conjuncts {
            match to_pushdown(&c, &ns)? {
                Some((rel, pred)) => pushdown[rel].push(pred),
                None => residual.push(c),
            }
        }
    }

    // ---- scans + joins ---------------------------------------------
    let mk_scan = |ri: usize, dist: Distribution| -> Plan {
        let rel = &ns.relations[ri];
        let mut spec = ScanSpec::new(rel.table.clone()).predicate(Predicate::and(
            pushdown[ri].clone(),
        ));
        spec.distribute = dist;
        Plan::Scan(spec)
    };
    let mut plan = mk_scan(0, Distribution::LocalShards);
    for (ji, j) in stmt.joins.iter().enumerate() {
        let right = mk_scan(ji + 1, Distribution::Global);
        let mut lk = Vec::new();
        let mut rk = Vec::new();
        let right_offset = ns.relations[ji + 1].offset;
        for (a, b) in &j.on {
            let (ra, ia) = ns.resolve(a)?;
            let (rb, ib) = ns.resolve(b)?;
            // One side must be the newly joined relation.
            let (left_abs, right_abs) = if rb == ji + 1 {
                (ia, ib)
            } else if ra == ji + 1 {
                (ib, ia)
            } else {
                return Err(EonError::Query(
                    "ON clause must reference the joined table".into(),
                ));
            };
            lk.push(left_abs);
            rk.push(right_abs - right_offset);
        }
        let kind = match j.kind {
            JoinType::Inner => JoinKind::Inner,
            JoinType::Left => JoinKind::Left,
        };
        plan = plan.join_kind(right, lk, rk, kind);
    }
    if !residual.is_empty() {
        let exprs = residual
            .iter()
            .map(|e| to_expr(e, &ns))
            .collect::<Result<Vec<_>>>()?;
        plan = plan.filter(if exprs.len() == 1 {
            exprs.into_iter().next().unwrap()
        } else {
            Expr::And(exprs)
        });
    }

    // ---- aggregation ------------------------------------------------
    let has_agg = stmt
        .items
        .iter()
        .any(|i| contains_agg(&i.expr))
        || !stmt.group_by.is_empty();

    // Output naming for ORDER BY resolution.
    let item_name = |i: &SelectItem| -> Option<String> {
        i.alias.clone().or(match &i.expr {
            SqlExpr::Col(c) => Some(c.column.clone()),
            _ => None,
        })
    };

    if has_agg {
        // Group keys must be plain columns.
        let group_abs: Vec<usize> = stmt
            .group_by
            .iter()
            .map(|c| ns.resolve(c).map(|(_, abs)| abs))
            .collect::<Result<_>>()?;

        // Collect aggregates from the SELECT list (and HAVING).
        let mut agg_specs: Vec<(SqlExpr, AggSpec)> = Vec::new();
        let mut add_aggs = |e: &SqlExpr| -> Result<()> {
            collect_aggs(e, &ns, &mut agg_specs)
        };
        for item in &stmt.items {
            add_aggs(&item.expr)?;
        }
        if let Some(h) = &stmt.having {
            add_aggs(h)?;
        }

        plan = plan.aggregate(
            group_abs.clone(),
            agg_specs.iter().map(|(_, s)| s.clone()).collect(),
        );

        // Aggregate output: group cols then aggs. Map SELECT items.
        let g = group_abs.len();
        let out_index = |e: &SqlExpr| -> Result<Expr> {
            map_post_agg(e, &ns, &stmt.group_by, &group_abs, &agg_specs, g)
        };

        if let Some(h) = &stmt.having {
            // HAVING references aliases, group columns, or aggregates.
            let resolved = resolve_having(h, stmt, &ns, &stmt.group_by, &group_abs, &agg_specs, g)?;
            plan = plan.filter(resolved);
        }

        let exprs: Vec<Expr> = stmt
            .items
            .iter()
            .map(|i| out_index(&i.expr))
            .collect::<Result<_>>()?;
        let names: Vec<String> = stmt
            .items
            .iter()
            .enumerate()
            .map(|(k, i)| item_name(i).unwrap_or_else(|| format!("col{k}")))
            .collect();
        plan = Plan::Project {
            input: Box::new(plan),
            exprs,
            names: names.clone(),
        };
        plan = apply_order_limit(plan, stmt, &names)?;
        Ok(plan)
    } else {
        let exprs: Vec<Expr> = stmt
            .items
            .iter()
            .map(|i| to_expr(&i.expr, &ns))
            .collect::<Result<_>>()?;
        let names: Vec<String> = stmt
            .items
            .iter()
            .enumerate()
            .map(|(k, i)| item_name(i).unwrap_or_else(|| format!("col{k}")))
            .collect();
        plan = Plan::Project {
            input: Box::new(plan),
            exprs,
            names: names.clone(),
        };
        plan = apply_order_limit(plan, stmt, &names)?;
        Ok(plan)
    }
}

fn apply_order_limit(mut plan: Plan, stmt: &SelectStmt, names: &[String]) -> Result<Plan> {
    if !stmt.order_by.is_empty() {
        let keys = stmt
            .order_by
            .iter()
            .map(|o| {
                let col = match &o.key {
                    OrderKey::Position(n) => {
                        if *n == 0 || *n > names.len() {
                            return Err(EonError::Query(format!(
                                "ORDER BY position {n} out of range"
                            )));
                        }
                        n - 1
                    }
                    OrderKey::Name(c) => names
                        .iter()
                        .position(|n| n.eq_ignore_ascii_case(&c.column))
                        .ok_or_else(|| {
                            EonError::Query(format!(
                                "ORDER BY '{}' must name a SELECT column or alias",
                                c.column
                            ))
                        })?,
                };
                Ok(SortKey {
                    col,
                    desc: o.desc,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        plan = plan.sort(keys);
    }
    if let Some(n) = stmt.limit {
        plan = plan.limit(n);
    }
    Ok(plan)
}

fn contains_agg(e: &SqlExpr) -> bool {
    match e {
        SqlExpr::Agg { .. } => true,
        SqlExpr::Binary { l, r, .. } => contains_agg(l) || contains_agg(r),
        SqlExpr::And(es) | SqlExpr::Or(es) => es.iter().any(contains_agg),
        SqlExpr::Not(e) | SqlExpr::IsNull { expr: e, .. } | SqlExpr::Like { expr: e, .. } => {
            contains_agg(e)
        }
        SqlExpr::InList { expr, .. } => contains_agg(expr),
        SqlExpr::Between { expr, lo, hi } => {
            contains_agg(expr) || contains_agg(lo) || contains_agg(hi)
        }
        _ => false,
    }
}

/// Collect every aggregate call in `e` (deduplicated structurally).
fn collect_aggs(
    e: &SqlExpr,
    ns: &Namespace,
    out: &mut Vec<(SqlExpr, AggSpec)>,
) -> Result<()> {
    match e {
        SqlExpr::Agg {
            func,
            arg,
            distinct,
        } => {
            if out.iter().any(|(seen, _)| seen == e) {
                return Ok(());
            }
            let spec = match (func, distinct) {
                (AggCall::Count, true) => {
                    let a = arg
                        .as_ref()
                        .ok_or_else(|| EonError::Query("COUNT(DISTINCT *) is invalid".into()))?;
                    AggSpec::new(AggFunc::CountDistinct, to_expr(a, ns)?)
                }
                (AggCall::Count, false) => match arg {
                    None => AggSpec::count_star(),
                    Some(a) => AggSpec::new(AggFunc::Count, to_expr(a, ns)?),
                },
                (f, true) => {
                    return Err(EonError::Query(format!("DISTINCT unsupported for {f:?}")))
                }
                (AggCall::Sum, false) => AggSpec::sum(to_expr(
                    arg.as_ref().ok_or_else(|| EonError::Query("SUM(*)".into()))?,
                    ns,
                )?),
                (AggCall::Avg, false) => AggSpec::avg(to_expr(
                    arg.as_ref().ok_or_else(|| EonError::Query("AVG(*)".into()))?,
                    ns,
                )?),
                (AggCall::Min, false) => AggSpec::min(to_expr(
                    arg.as_ref().ok_or_else(|| EonError::Query("MIN(*)".into()))?,
                    ns,
                )?),
                (AggCall::Max, false) => AggSpec::max(to_expr(
                    arg.as_ref().ok_or_else(|| EonError::Query("MAX(*)".into()))?,
                    ns,
                )?),
            };
            out.push((e.clone(), spec));
            Ok(())
        }
        SqlExpr::Binary { l, r, .. } => {
            collect_aggs(l, ns, out)?;
            collect_aggs(r, ns, out)
        }
        SqlExpr::And(es) | SqlExpr::Or(es) => {
            for x in es {
                collect_aggs(x, ns, out)?;
            }
            Ok(())
        }
        SqlExpr::Not(x) => collect_aggs(x, ns, out),
        _ => Ok(()),
    }
}

/// Rewrite a SELECT-item expression into the aggregate-output space:
/// group columns become `col(i)`, aggregate calls become `col(g + j)`,
/// and arithmetic around them is preserved.
fn map_post_agg(
    e: &SqlExpr,
    ns: &Namespace,
    group_refs: &[ColRef],
    group_abs: &[usize],
    aggs: &[(SqlExpr, AggSpec)],
    g: usize,
) -> Result<Expr> {
    if let Some(j) = aggs.iter().position(|(seen, _)| seen == e) {
        return Ok(Expr::col(g + j));
    }
    match e {
        SqlExpr::Col(c) => {
            let (_, abs) = ns.resolve(c)?;
            let gi = group_abs
                .iter()
                .position(|&a| a == abs)
                .ok_or_else(|| {
                    EonError::Query(format!(
                        "column '{}' must appear in GROUP BY or inside an aggregate",
                        c.column
                    ))
                })?;
            let _ = group_refs;
            Ok(Expr::col(gi))
        }
        SqlExpr::Lit(v) => Ok(Expr::lit(v.clone())),
        SqlExpr::Binary { op, l, r } => {
            let le = map_post_agg(l, ns, group_refs, group_abs, aggs, g)?;
            let re = map_post_agg(r, ns, group_refs, group_abs, aggs, g)?;
            Ok(binop(*op, le, re))
        }
        other => Err(EonError::Query(format!(
            "unsupported expression above aggregation: {other:?}"
        ))),
    }
}

/// Resolve a HAVING expression against the aggregate output: aliases
/// from the SELECT list, group columns, and aggregate calls.
#[allow(clippy::too_many_arguments)]
fn resolve_having(
    e: &SqlExpr,
    stmt: &SelectStmt,
    ns: &Namespace,
    group_refs: &[ColRef],
    group_abs: &[usize],
    aggs: &[(SqlExpr, AggSpec)],
    g: usize,
) -> Result<Expr> {
    // Alias reference → the aliased item's post-aggregation expression.
    if let SqlExpr::Col(c) = e {
        if c.table.is_none() {
            if let Some(item) = stmt
                .items
                .iter()
                .find(|i| i.alias.as_deref().map(|a| a.eq_ignore_ascii_case(&c.column)).unwrap_or(false))
            {
                return map_post_agg(&item.expr, ns, group_refs, group_abs, aggs, g);
            }
        }
    }
    match e {
        SqlExpr::And(es) => Ok(Expr::And(
            es.iter()
                .map(|x| resolve_having(x, stmt, ns, group_refs, group_abs, aggs, g))
                .collect::<Result<_>>()?,
        )),
        SqlExpr::Or(es) => Ok(Expr::Or(
            es.iter()
                .map(|x| resolve_having(x, stmt, ns, group_refs, group_abs, aggs, g))
                .collect::<Result<_>>()?,
        )),
        SqlExpr::Not(x) => Ok(Expr::Not(Box::new(resolve_having(
            x, stmt, ns, group_refs, group_abs, aggs, g,
        )?))),
        SqlExpr::Binary { op, l, r } => {
            let le = resolve_having(l, stmt, ns, group_refs, group_abs, aggs, g)?;
            let re = resolve_having(r, stmt, ns, group_refs, group_abs, aggs, g)?;
            Ok(binop(*op, le, re))
        }
        other => map_post_agg(other, ns, group_refs, group_abs, aggs, g),
    }
}

fn binop(op: BinOp, l: Expr, r: Expr) -> Expr {
    match op {
        BinOp::Add => Expr::add(l, r),
        BinOp::Sub => Expr::sub(l, r),
        BinOp::Mul => Expr::mul(l, r),
        BinOp::Div => Expr::div(l, r),
        BinOp::Eq => Expr::cmp(CmpOp::Eq, l, r),
        BinOp::Ne => Expr::cmp(CmpOp::Ne, l, r),
        BinOp::Lt => Expr::cmp(CmpOp::Lt, l, r),
        BinOp::Le => Expr::cmp(CmpOp::Le, l, r),
        BinOp::Gt => Expr::cmp(CmpOp::Gt, l, r),
        BinOp::Ge => Expr::cmp(CmpOp::Ge, l, r),
    }
}

/// Convert a scalar (non-aggregate) expression.
fn to_expr(e: &SqlExpr, ns: &Namespace) -> Result<Expr> {
    Ok(match e {
        SqlExpr::Col(c) => Expr::col(ns.resolve(c)?.1),
        SqlExpr::Lit(v) => Expr::lit(v.clone()),
        SqlExpr::Binary { op, l, r } => binop(*op, to_expr(l, ns)?, to_expr(r, ns)?),
        SqlExpr::And(es) => Expr::And(es.iter().map(|x| to_expr(x, ns)).collect::<Result<_>>()?),
        SqlExpr::Or(es) => Expr::Or(es.iter().map(|x| to_expr(x, ns)).collect::<Result<_>>()?),
        SqlExpr::Not(x) => Expr::Not(Box::new(to_expr(x, ns)?)),
        SqlExpr::IsNull { expr, negated } => {
            let inner = Expr::IsNull(Box::new(to_expr(expr, ns)?));
            if *negated {
                Expr::Not(Box::new(inner))
            } else {
                inner
            }
        }
        SqlExpr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(to_expr(expr, ns)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        SqlExpr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(to_expr(expr, ns)?),
            list: list.clone(),
            negated: *negated,
        },
        SqlExpr::Between { expr, lo, hi } => {
            let x = to_expr(expr, ns)?;
            Expr::And(vec![
                Expr::cmp(CmpOp::Ge, x.clone(), to_expr(lo, ns)?),
                Expr::cmp(CmpOp::Le, x, to_expr(hi, ns)?),
            ])
        }
        SqlExpr::Agg { .. } => {
            return Err(EonError::Query(
                "aggregate calls are only allowed in SELECT/HAVING".into(),
            ))
        }
    })
}

/// Try to turn a conjunct into a pruning predicate on a single base
/// relation: `col op literal`, `col IS [NOT] NULL`, `col IN (…)`,
/// `col BETWEEN a AND b`, and OR-combinations within one relation.
fn to_pushdown(e: &SqlExpr, ns: &Namespace) -> Result<Option<(usize, Predicate)>> {
    fn col_of(e: &SqlExpr, ns: &Namespace) -> Option<(usize, usize)> {
        if let SqlExpr::Col(c) = e {
            let (ri, abs) = ns.resolve(c).ok()?;
            let local = abs - ns.relations[ri].offset;
            Some((ri, local))
        } else {
            None
        }
    }
    fn lit_of(e: &SqlExpr) -> Option<Value> {
        if let SqlExpr::Lit(v) = e {
            Some(v.clone())
        } else {
            None
        }
    }
    Ok(match e {
        SqlExpr::Binary { op, l, r } => {
            let cmp = |op: BinOp| -> Option<CmpOp> {
                Some(match op {
                    BinOp::Eq => CmpOp::Eq,
                    BinOp::Ne => CmpOp::Ne,
                    BinOp::Lt => CmpOp::Lt,
                    BinOp::Le => CmpOp::Le,
                    BinOp::Gt => CmpOp::Gt,
                    BinOp::Ge => CmpOp::Ge,
                    _ => return None,
                })
            };
            let Some(op) = cmp(*op) else { return Ok(None) };
            if let (Some((ri, col)), Some(lit)) = (col_of(l, ns), lit_of(r)) {
                Some((ri, Predicate::cmp(col, op, lit)))
            } else if let (Some(lit), Some((ri, col))) = (lit_of(l), col_of(r, ns)) {
                // literal op col → flip
                let flipped = match op {
                    CmpOp::Lt => CmpOp::Gt,
                    CmpOp::Le => CmpOp::Ge,
                    CmpOp::Gt => CmpOp::Lt,
                    CmpOp::Ge => CmpOp::Le,
                    other => other,
                };
                Some((ri, Predicate::cmp(col, flipped, lit)))
            } else {
                None
            }
        }
        SqlExpr::IsNull { expr, negated } => col_of(expr, ns).map(|(ri, col)| {
            (
                ri,
                if *negated {
                    Predicate::IsNotNull(col)
                } else {
                    Predicate::IsNull(col)
                },
            )
        }),
        SqlExpr::InList {
            expr,
            list,
            negated: false,
        } => col_of(expr, ns).map(|(ri, col)| {
            (
                ri,
                Predicate::Or(list.iter().map(|v| Predicate::eq(col, v.clone())).collect()),
            )
        }),
        SqlExpr::Between { expr, lo, hi } => {
            if let (Some((ri, col)), Some(lo), Some(hi)) = (col_of(expr, ns), lit_of(lo), lit_of(hi))
            {
                Some((
                    ri,
                    Predicate::And(vec![
                        Predicate::cmp(col, CmpOp::Ge, lo),
                        Predicate::cmp(col, CmpOp::Le, hi),
                    ]),
                ))
            } else {
                None
            }
        }
        _ => None,
    })
}
