//! SQL tokenizer: case-insensitive keywords, single-quoted strings
//! (with `''` escaping), integer/float literals, identifiers with
//! optional `table.column` qualification handled at the parser level.
//!
//! The scanner walks **char boundaries**, never raw bytes: string
//! literals may contain arbitrary UTF-8 (`'café'`, `'名前'`) and
//! round-trip byte-exact, while non-ASCII *outside* a literal is a
//! typed [`EonError::Query`] — never mojibake, never a panic on a
//! multi-byte boundary.

use eon_types::{EonError, Result};

/// One token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (original case preserved).
    Word(String),
    /// 'string literal' (unescaped).
    Str(String),
    Int(i64),
    Float(f64),
    Symbol(Sym),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    Comma,
    Dot,
    Star,
    LParen,
    RParen,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Token {
    /// Uppercased view for keyword comparison; empty for non-words.
    /// Allocates — use [`Token::is_kw`] on hot paths.
    pub fn upper(&self) -> String {
        match self {
            Token::Word(w) => w.to_ascii_uppercase(),
            _ => String::new(),
        }
    }

    /// Allocation-free case-insensitive keyword test. `kw` must be the
    /// uppercase keyword spelling (how the parser calls it).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a SQL string.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let mut chars = sql.char_indices().peekable();
    while let Some(&(i, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '-' if sql[i..].starts_with("--") => {
                // -- line comment
                for (_, c) in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '\'' => {
                chars.next(); // opening quote
                let mut s = String::new();
                loop {
                    match chars.next() {
                        None => {
                            return Err(EonError::Query("unterminated string literal".into()))
                        }
                        Some((_, '\'')) => {
                            // '' escapes to a literal quote; anything
                            // else ends the string.
                            if matches!(chars.peek(), Some(&(_, '\''))) {
                                chars.next();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some((_, c)) => s.push(c),
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut end = i;
                let mut is_float = false;
                while let Some(&(j, c)) = chars.peek() {
                    if c.is_ascii_digit() {
                        end = j + 1;
                        chars.next();
                    } else if c == '.' && !is_float {
                        // `1.` followed by non-digit is "1" then Dot.
                        let next_is_digit = sql[j + 1..]
                            .chars()
                            .next()
                            .map(|d| d.is_ascii_digit())
                            .unwrap_or(false);
                        if !next_is_digit {
                            break;
                        }
                        is_float = true;
                        end = j + 1;
                        chars.next();
                    } else {
                        break;
                    }
                }
                let text = &sql[start..end];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        EonError::Query(format!("bad float literal {text}"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        EonError::Query(format!("bad int literal {text}"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut end = i;
                while let Some(&(j, c)) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        end = j + c.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Word(sql[start..end].to_owned()));
            }
            _ => {
                if !c.is_ascii() {
                    // A multi-byte char outside a string literal can
                    // never start a valid token; name it precisely
                    // instead of corrupting it byte-by-byte.
                    return Err(EonError::Query(format!(
                        "unexpected non-ASCII character {c:?} at byte {i} \
                         (only string literals may contain non-ASCII text)"
                    )));
                }
                // `get` (not slicing) so a multi-byte char right after
                // the symbol can't split a char boundary.
                let two = sql.get(i..i + 2).unwrap_or("");
                let (sym, len) = match two {
                    "<=" => (Sym::Le, 2),
                    "<>" => (Sym::Ne, 2),
                    ">=" => (Sym::Ge, 2),
                    "!=" => (Sym::Ne, 2),
                    _ => match c {
                        ',' => (Sym::Comma, 1),
                        '.' => (Sym::Dot, 1),
                        '*' => (Sym::Star, 1),
                        '(' => (Sym::LParen, 1),
                        ')' => (Sym::RParen, 1),
                        '+' => (Sym::Plus, 1),
                        '-' => (Sym::Minus, 1),
                        '/' => (Sym::Slash, 1),
                        '<' => (Sym::Lt, 1),
                        '>' => (Sym::Gt, 1),
                        '=' => (Sym::Eq, 1),
                        _ => {
                            return Err(EonError::Query(format!(
                                "unexpected character {c:?} at byte {i}"
                            )))
                        }
                    },
                };
                out.push(Token::Symbol(sym));
                for _ in 0..len {
                    chars.next();
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_numbers_strings() {
        let t = tokenize("SELECT a, 42, 2.5, 'it''s' FROM t").unwrap();
        assert_eq!(t[0], Token::Word("SELECT".into()));
        assert_eq!(t[2], Token::Symbol(Sym::Comma));
        assert_eq!(t[3], Token::Int(42));
        assert_eq!(t[5], Token::Float(2.5));
        assert_eq!(t[7], Token::Str("it's".into()));
    }

    #[test]
    fn operators() {
        let t = tokenize("a <= b != c >= d <> e").unwrap();
        let syms: Vec<&Token> = t.iter().filter(|t| matches!(t, Token::Symbol(_))).collect();
        assert_eq!(
            syms,
            vec![
                &Token::Symbol(Sym::Le),
                &Token::Symbol(Sym::Ne),
                &Token::Symbol(Sym::Ge),
                &Token::Symbol(Sym::Ne),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT -- the works\n 1").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[1], Token::Int(1));
    }

    #[test]
    fn keyword_matching_is_case_insensitive() {
        let t = tokenize("select").unwrap();
        assert!(t[0].is_kw("SELECT"));
        assert!(!t[0].is_kw("FROM"));
        assert!(!Token::Int(1).is_kw("SELECT"));
        assert_eq!(t[0].upper(), "SELECT");
    }

    #[test]
    fn errors_are_reported() {
        assert!(tokenize("SELECT 'oops").is_err());
        assert!(tokenize("a ; b").is_err()); // ; unsupported
    }

    #[test]
    fn multibyte_string_literals_round_trip() {
        // Each literal must come back byte-exact: accented latin, CJK,
        // an emoji (4-byte scalar), and combining marks.
        for lit in ["café", "名前", "🦀 crab", "e\u{301}tude", "ß", "ñandú"] {
            let t = tokenize(&format!("SELECT '{lit}'")).unwrap();
            assert_eq!(t[1], Token::Str(lit.to_string()), "literal {lit:?}");
        }
    }

    #[test]
    fn quote_escape_adjacent_to_multibyte() {
        // '' escapes flush against multi-byte chars on either side.
        let t = tokenize("SELECT 'café''s 名前'").unwrap();
        assert_eq!(t[1], Token::Str("café's 名前".to_string()));
        let t = tokenize("SELECT '''🦀'''").unwrap();
        assert_eq!(t[1], Token::Str("'🦀'".to_string()));
    }

    #[test]
    fn unterminated_multibyte_literal_is_typed_error() {
        let err = tokenize("SELECT 'café").unwrap_err();
        assert!(
            matches!(err, EonError::Query(ref m) if m.contains("unterminated")),
            "{err}"
        );
        // Unterminated by a dangling escape quote, too.
        assert!(tokenize("SELECT 'a''").is_err());
    }

    #[test]
    fn non_ascii_outside_literal_is_typed_error_not_garbage() {
        for sql in ["SELECT café FROM t", "SELECT 1 ⚡ 2", "名前", "SELECT a — b"] {
            let err = tokenize(sql).unwrap_err();
            assert!(
                matches!(err, EonError::Query(ref m) if m.contains("non-ASCII")),
                "{sql:?} → {err}"
            );
        }
    }

    #[test]
    fn dotted_numbers_vs_qualified_names() {
        let t = tokenize("t.c 1.5 2.x").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Word("t".into()),
                Token::Symbol(Sym::Dot),
                Token::Word("c".into()),
                Token::Float(1.5),
                Token::Int(2),
                Token::Symbol(Sym::Dot),
                Token::Word("x".into()),
            ]
        );
    }

    #[test]
    fn comment_with_multibyte_body_is_skipped() {
        let t = tokenize("SELECT 1 -- café ☕ comment\n + 2").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Word("SELECT".into()),
                Token::Int(1),
                Token::Symbol(Sym::Plus),
                Token::Int(2),
            ]
        );
    }
}
