//! SQL tokenizer: case-insensitive keywords, single-quoted strings
//! (with `''` escaping), integer/float literals, identifiers with
//! optional `table.column` qualification handled at the parser level.

use eon_types::{EonError, Result};

/// One token with its uppercase form cached for keyword matching.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (original case preserved).
    Word(String),
    /// 'string literal' (unescaped).
    Str(String),
    Int(i64),
    Float(f64),
    Symbol(Sym),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    Comma,
    Dot,
    Star,
    LParen,
    RParen,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Token {
    /// Uppercased view for keyword comparison; empty for non-words.
    pub fn upper(&self) -> String {
        match self {
            Token::Word(w) => w.to_ascii_uppercase(),
            _ => String::new(),
        }
    }

    pub fn is_kw(&self, kw: &str) -> bool {
        self.upper() == kw
    }
}

/// Tokenize a SQL string.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // -- line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(EonError::Query("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.')
                {
                    if bytes[i] == b'.' {
                        // `1.` followed by non-digit is "1" then Dot.
                        if i + 1 >= bytes.len() || !(bytes[i + 1] as char).is_ascii_digit() {
                            break;
                        }
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &sql[start..i];
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        EonError::Query(format!("bad float literal {text}"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        EonError::Query(format!("bad int literal {text}"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Word(sql[start..i].to_owned()));
            }
            _ => {
                let (sym, len) = match (c, bytes.get(i + 1).map(|&b| b as char)) {
                    (',', _) => (Sym::Comma, 1),
                    ('.', _) => (Sym::Dot, 1),
                    ('*', _) => (Sym::Star, 1),
                    ('(', _) => (Sym::LParen, 1),
                    (')', _) => (Sym::RParen, 1),
                    ('+', _) => (Sym::Plus, 1),
                    ('-', _) => (Sym::Minus, 1),
                    ('/', _) => (Sym::Slash, 1),
                    ('<', Some('=')) => (Sym::Le, 2),
                    ('<', Some('>')) => (Sym::Ne, 2),
                    ('<', _) => (Sym::Lt, 1),
                    ('>', Some('=')) => (Sym::Ge, 2),
                    ('>', _) => (Sym::Gt, 1),
                    ('!', Some('=')) => (Sym::Ne, 2),
                    ('=', _) => (Sym::Eq, 1),
                    _ => {
                        return Err(EonError::Query(format!(
                            "unexpected character {c:?} at byte {i}"
                        )))
                    }
                };
                out.push(Token::Symbol(sym));
                i += len;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_numbers_strings() {
        let t = tokenize("SELECT a, 42, 2.5, 'it''s' FROM t").unwrap();
        assert_eq!(t[0], Token::Word("SELECT".into()));
        assert_eq!(t[2], Token::Symbol(Sym::Comma));
        assert_eq!(t[3], Token::Int(42));
        assert_eq!(t[5], Token::Float(2.5));
        assert_eq!(t[7], Token::Str("it's".into()));
    }

    #[test]
    fn operators() {
        let t = tokenize("a <= b != c >= d <> e").unwrap();
        let syms: Vec<&Token> = t.iter().filter(|t| matches!(t, Token::Symbol(_))).collect();
        assert_eq!(
            syms,
            vec![
                &Token::Symbol(Sym::Le),
                &Token::Symbol(Sym::Ne),
                &Token::Symbol(Sym::Ge),
                &Token::Symbol(Sym::Ne),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT -- the works\n 1").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[1], Token::Int(1));
    }

    #[test]
    fn keyword_matching_is_case_insensitive() {
        let t = tokenize("select").unwrap();
        assert!(t[0].is_kw("SELECT"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(tokenize("SELECT 'oops").is_err());
        assert!(tokenize("a ; b").is_err()); // ; unsupported
    }

    #[test]
    fn dotted_numbers_vs_qualified_names() {
        let t = tokenize("t.c 1.5 2.x").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Word("t".into()),
                Token::Symbol(Sym::Dot),
                Token::Word("c".into()),
                Token::Float(1.5),
                Token::Int(2),
                Token::Symbol(Sym::Dot),
                Token::Word("x".into()),
            ]
        );
    }
}
