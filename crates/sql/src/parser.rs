//! Recursive-descent parser for the SELECT subset.

use eon_types::{EonError, Result, Value};

use crate::ast::*;
use crate::lexer::{tokenize, Sym, Token};

/// Parse one SELECT statement.
pub fn parse(sql: &str) -> Result<SelectStmt> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select()?;
    if p.pos != p.tokens.len() {
        return Err(EonError::Query(format!(
            "trailing tokens after statement: {:?}",
            &p.tokens[p.pos..]
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| EonError::Query("unexpected end of statement".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.is_kw(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(EonError::Query(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_sym(&mut self, sym: Sym) -> bool {
        if self.peek() == Some(&Token::Symbol(sym)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: Sym) -> Result<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(EonError::Query(format!(
                "expected {sym:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Word(w) => Ok(w),
            other => Err(EonError::Query(format!("expected identifier, found {other:?}"))),
        }
    }

    // ---------------------------------------------------------- SELECT

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let mut items = Vec::new();
        loop {
            let expr = self.expr()?;
            let alias = if self.eat_kw("AS") {
                Some(self.ident()?)
            } else {
                match self.peek() {
                    // Bare alias: `SUM(x) revenue` — an identifier that
                    // is not a clause keyword.
                    Some(Token::Word(w))
                        if !is_clause_kw(w) && !w.eq_ignore_ascii_case("FROM") =>
                    {
                        Some(self.ident()?)
                    }
                    _ => None,
                }
            };
            items.push(SelectItem { expr, alias });
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }

        self.expect_kw("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.eat_kw("JOIN") {
                JoinType::Inner
            } else if self.peek().map(|t| t.is_kw("INNER")).unwrap_or(false) {
                self.pos += 1;
                self.expect_kw("JOIN")?;
                JoinType::Inner
            } else if self.peek().map(|t| t.is_kw("LEFT")).unwrap_or(false) {
                self.pos += 1;
                let _ = self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinType::Left
            } else {
                break;
            };
            let table = self.table_ref()?;
            self.expect_kw("ON")?;
            let mut on = Vec::new();
            loop {
                let l = self.col_ref()?;
                self.expect_sym(Sym::Eq)?;
                let r = self.col_ref()?;
                on.push((l, r));
                if !self.eat_kw("AND") {
                    break;
                }
            }
            joins.push(Join { kind, table, on });
        }

        let where_ = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.col_ref()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }

        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let key = match self.peek() {
                    Some(Token::Int(n)) => {
                        let n = *n;
                        self.pos += 1;
                        OrderKey::Position(n as usize)
                    }
                    _ => OrderKey::Name(self.col_ref()?),
                };
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    let _ = self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderItem { key, desc });
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_kw("LIMIT") {
            match self.next()? {
                Token::Int(n) if n >= 0 => Some(n as usize),
                other => {
                    return Err(EonError::Query(format!("bad LIMIT {other:?}")));
                }
            }
        } else {
            None
        };

        Ok(SelectStmt {
            items,
            from,
            joins,
            where_,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else {
            match self.peek() {
                Some(Token::Word(w)) if !is_clause_kw(w) => Some(self.ident()?),
                _ => None,
            }
        };
        Ok(TableRef { table, alias })
    }

    fn col_ref(&mut self) -> Result<ColRef> {
        let first = self.ident()?;
        if self.eat_sym(Sym::Dot) {
            Ok(ColRef {
                table: Some(first),
                column: self.ident()?,
            })
        } else {
            Ok(ColRef {
                table: None,
                column: first,
            })
        }
    }

    // ------------------------------------------------------ expressions
    // Precedence: OR < AND < NOT < comparison/IS/LIKE/IN/BETWEEN <
    // add/sub < mul/div < atom.

    fn expr(&mut self) -> Result<SqlExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr> {
        let mut terms = vec![self.and_expr()?];
        while self.eat_kw("OR") {
            terms.push(self.and_expr()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().unwrap()
        } else {
            SqlExpr::Or(terms)
        })
    }

    fn and_expr(&mut self) -> Result<SqlExpr> {
        let mut terms = vec![self.not_expr()?];
        while self.eat_kw("AND") {
            terms.push(self.not_expr()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().unwrap()
        } else {
            SqlExpr::And(terms)
        })
    }

    fn not_expr(&mut self) -> Result<SqlExpr> {
        if self.eat_kw("NOT") {
            Ok(SqlExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<SqlExpr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(SqlExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] LIKE / IN / BETWEEN
        let negated = if self.peek().map(|t| t.is_kw("NOT")).unwrap_or(false)
            && self
                .tokens
                .get(self.pos + 1)
                .map(|t| t.is_kw("LIKE") || t.is_kw("IN") || t.is_kw("BETWEEN"))
                .unwrap_or(false)
        {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.eat_kw("LIKE") {
            let pattern = match self.next()? {
                Token::Str(s) => s,
                other => return Err(EonError::Query(format!("LIKE needs a string, got {other:?}"))),
            };
            return Ok(SqlExpr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect_sym(Sym::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.literal()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
            return Ok(SqlExpr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let lo = self.additive()?;
            self.expect_kw("AND")?;
            let hi = self.additive()?;
            let between = SqlExpr::Between {
                expr: Box::new(left),
                lo: Box::new(lo),
                hi: Box::new(hi),
            };
            return Ok(if negated {
                SqlExpr::Not(Box::new(between))
            } else {
                between
            });
        }
        if negated {
            return Err(EonError::Query("dangling NOT".into()));
        }
        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => Some(BinOp::Eq),
            Some(Token::Symbol(Sym::Ne)) => Some(BinOp::Ne),
            Some(Token::Symbol(Sym::Lt)) => Some(BinOp::Lt),
            Some(Token::Symbol(Sym::Le)) => Some(BinOp::Le),
            Some(Token::Symbol(Sym::Gt)) => Some(BinOp::Gt),
            Some(Token::Symbol(Sym::Ge)) => Some(BinOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let right = self.additive()?;
                Ok(SqlExpr::Binary {
                    op,
                    l: Box::new(left),
                    r: Box::new(right),
                })
            }
            None => Ok(left),
        }
    }

    fn additive(&mut self) -> Result<SqlExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Plus)) => BinOp::Add,
                Some(Token::Symbol(Sym::Minus)) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = SqlExpr::Binary {
                op,
                l: Box::new(left),
                r: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<SqlExpr> {
        let mut left = self.atom()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Star)) => BinOp::Mul,
                Some(Token::Symbol(Sym::Slash)) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.atom()?;
            left = SqlExpr::Binary {
                op,
                l: Box::new(left),
                r: Box::new(right),
            };
        }
        Ok(left)
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next()? {
            Token::Int(n) => Ok(Value::Int(n)),
            Token::Float(f) => Ok(Value::Float(f)),
            Token::Str(s) => Ok(Value::Str(s)),
            Token::Word(w) if w.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            Token::Word(w) if w.eq_ignore_ascii_case("TRUE") => Ok(Value::Bool(true)),
            Token::Word(w) if w.eq_ignore_ascii_case("FALSE") => Ok(Value::Bool(false)),
            other => Err(EonError::Query(format!("expected literal, found {other:?}"))),
        }
    }

    fn atom(&mut self) -> Result<SqlExpr> {
        match self.peek().cloned() {
            Some(Token::Symbol(Sym::LParen)) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(e)
            }
            Some(Token::Symbol(Sym::Minus)) => {
                self.pos += 1;
                // Negative literal or 0 - expr.
                let inner = self.atom()?;
                Ok(match inner {
                    SqlExpr::Lit(Value::Int(n)) => SqlExpr::Lit(Value::Int(-n)),
                    SqlExpr::Lit(Value::Float(f)) => SqlExpr::Lit(Value::Float(-f)),
                    e => SqlExpr::Binary {
                        op: BinOp::Sub,
                        l: Box::new(SqlExpr::Lit(Value::Int(0))),
                        r: Box::new(e),
                    },
                })
            }
            Some(Token::Int(n)) => {
                self.pos += 1;
                Ok(SqlExpr::Lit(Value::Int(n)))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(SqlExpr::Lit(Value::Float(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(SqlExpr::Lit(Value::Str(s)))
            }
            Some(Token::Word(w)) => {
                let up = w.to_ascii_uppercase();
                // DATE '1994-01-01'
                if up == "DATE" {
                    if let Some(Token::Str(_)) = self.tokens.get(self.pos + 1) {
                        self.pos += 1;
                        let Token::Str(s) = self.next()? else { unreachable!() };
                        return parse_date(&s).map(SqlExpr::Lit);
                    }
                }
                if up == "NULL" {
                    self.pos += 1;
                    return Ok(SqlExpr::Lit(Value::Null));
                }
                if up == "TRUE" || up == "FALSE" {
                    self.pos += 1;
                    return Ok(SqlExpr::Lit(Value::Bool(up == "TRUE")));
                }
                // Aggregate call?
                let agg = match up.as_str() {
                    "SUM" => Some(AggCall::Sum),
                    "COUNT" => Some(AggCall::Count),
                    "AVG" => Some(AggCall::Avg),
                    "MIN" => Some(AggCall::Min),
                    "MAX" => Some(AggCall::Max),
                    _ => None,
                };
                if let Some(func) = agg {
                    if self.tokens.get(self.pos + 1) == Some(&Token::Symbol(Sym::LParen)) {
                        self.pos += 2; // name + (
                        let distinct = self.eat_kw("DISTINCT");
                        let arg = if self.eat_sym(Sym::Star) {
                            None
                        } else {
                            Some(Box::new(self.expr()?))
                        };
                        self.expect_sym(Sym::RParen)?;
                        return Ok(SqlExpr::Agg {
                            func,
                            arg,
                            distinct,
                        });
                    }
                }
                // Plain or qualified column.
                Ok(SqlExpr::Col(self.col_ref()?))
            }
            other => Err(EonError::Query(format!("unexpected token {other:?}"))),
        }
    }
}

fn is_clause_kw(w: &str) -> bool {
    matches!(
        w.to_ascii_uppercase().as_str(),
        "FROM"
            | "WHERE"
            | "GROUP"
            | "HAVING"
            | "ORDER"
            | "LIMIT"
            | "JOIN"
            | "INNER"
            | "LEFT"
            | "ON"
            | "AND"
            | "OR"
            | "AS"
            | "ASC"
            | "DESC"
    )
}

/// Parse `YYYY-MM-DD` into a `Value::Date`.
fn parse_date(s: &str) -> Result<Value> {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() == 3 {
        if let (Ok(y), Ok(m), Ok(d)) = (
            parts[0].parse::<i32>(),
            parts[1].parse::<u32>(),
            parts[2].parse::<u32>(),
        ) {
            if (1..=12).contains(&m) && (1..=31).contains(&d) {
                return Ok(Value::Date(eon_types::value::ymd_to_days(y, m, d)));
            }
        }
    }
    Err(EonError::Query(format!("bad date literal '{s}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_select() {
        let s = parse("SELECT a FROM t").unwrap();
        assert_eq!(s.items.len(), 1);
        assert_eq!(s.from.table, "t");
        assert!(s.joins.is_empty() && s.where_.is_none());
    }

    #[test]
    fn full_query_shape() {
        let s = parse(
            "SELECT c.region, SUM(s.price * s.qty) AS revenue, COUNT(*) \
             FROM sales s JOIN customer c ON s.cust_id = c.id \
             WHERE s.price > 10 AND c.segment = 'BUILDING' \
             GROUP BY c.region HAVING revenue > 100 \
             ORDER BY revenue DESC, 1 ASC LIMIT 10",
        )
        .unwrap();
        assert_eq!(s.items.len(), 3);
        assert_eq!(s.items[1].alias.as_deref(), Some("revenue"));
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].on.len(), 1);
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].desc);
        assert_eq!(s.order_by[1].key, OrderKey::Position(1));
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn date_in_between_and_like() {
        let s = parse(
            "SELECT 1 FROM t WHERE d BETWEEN DATE '1994-01-01' AND DATE '1994-12-31' \
             AND name NOT LIKE '%green%' AND k IN (1, 2, 3) AND x IS NOT NULL",
        )
        .unwrap();
        let SqlExpr::And(terms) = s.where_.unwrap() else { panic!() };
        assert_eq!(terms.len(), 4);
        assert!(matches!(terms[0], SqlExpr::Between { .. }));
        assert!(matches!(terms[1], SqlExpr::Like { negated: true, .. }));
        assert!(matches!(terms[2], SqlExpr::InList { negated: false, .. }));
        assert!(matches!(terms[3], SqlExpr::IsNull { negated: true, .. }));
    }

    #[test]
    fn arithmetic_precedence() {
        let s = parse("SELECT a + b * c FROM t").unwrap();
        let SqlExpr::Binary { op: BinOp::Add, r, .. } = &s.items[0].expr else {
            panic!("mul must bind tighter: {:?}", s.items[0].expr)
        };
        assert!(matches!(**r, SqlExpr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn count_distinct() {
        let s = parse("SELECT COUNT(DISTINCT supp) FROM t").unwrap();
        assert!(matches!(
            s.items[0].expr,
            SqlExpr::Agg {
                func: AggCall::Count,
                distinct: true,
                ..
            }
        ));
    }

    #[test]
    fn left_join_and_multi_on() {
        let s = parse(
            "SELECT 1 FROM a LEFT OUTER JOIN b ON a.x = b.x AND a.y = b.y WHERE a.z = 1",
        )
        .unwrap();
        assert_eq!(s.joins[0].kind, JoinType::Left);
        assert_eq!(s.joins[0].on.len(), 2);
        assert!(s.where_.is_some());
    }

    #[test]
    fn errors() {
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT a").is_err()); // no FROM
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT a FROM t LIMIT x").is_err());
        assert!(parse("SELECT a FROM t extra garbage ,").is_err());
        assert!(parse("SELECT 1 FROM t WHERE d = DATE '1994-13-01'").is_err());
    }

    #[test]
    fn negative_literals() {
        let s = parse("SELECT -5, -2.5 FROM t WHERE a > -10").unwrap();
        assert_eq!(s.items[0].expr, SqlExpr::Lit(Value::Int(-5)));
        assert_eq!(s.items[1].expr, SqlExpr::Lit(Value::Float(-2.5)));
    }
}
