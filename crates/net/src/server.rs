//! `eon-server`: the TCP front door (DESIGN.md "Network service
//! layer").
//!
//! One connection = one session. Each accepted connection gets its own
//! [`CancelToken`]-carrying [`SessionOpts`]; a **reader thread** turns
//! frames into requests and — the load-shedding contract — **fires the
//! token the moment the peer disconnects or desyncs**, so a dropped
//! client releases its admission ticket, execution slots, and pool
//! claims at the next cooperative boundary instead of running the
//! query to completion for nobody.
//!
//! Requests ride the existing machinery end to end:
//! [`EonDb::sql_query`] → admission pool (§4.3 per-subcluster) → slot
//! semaphores → scan pools. Saturation therefore surfaces as a typed
//! wire error (`SATURATED` / `DEADLINE_EXCEEDED`) rather than an
//! unbounded park, and *every* [`EonError`] crosses the wire as its
//! stable numeric code (see [`eon_types::WireError`]).
//!
//! Malformed input (junk tags, truncated or oversized frames) yields a
//! typed `CORRUPT` error frame where a response is still possible,
//! then a close — never a hang, never a panic.

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use eon_core::{EonDb, SessionOpts};
use eon_types::{CancelToken, EonError, Result};

use crate::wire::{
    read_frame, write_frame, Request, Response, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerOpts {
    /// Per-frame payload cap; a junk length prefix beyond this is a
    /// typed `Corrupt` error, rejected before allocation.
    pub max_frame: u32,
}

impl Default for ServerOpts {
    fn default() -> Self {
        ServerOpts {
            max_frame: MAX_FRAME_BYTES,
        }
    }
}

/// A bound-but-not-yet-serving server. [`EonServer::spawn`] starts the
/// accept loop on a background thread and returns the stop handle.
pub struct EonServer {
    db: Arc<EonDb>,
    listener: TcpListener,
    opts: ServerOpts,
}

/// Handle to a running server: address, live-session count, shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    join: Option<JoinHandle<()>>,
}

impl EonServer {
    /// Bind the listener. `addr` like `"127.0.0.1:5433"`; port 0 picks
    /// a free port (see [`EonServer::local_addr`]).
    pub fn bind(db: Arc<EonDb>, addr: impl ToSocketAddrs, opts: ServerOpts) -> Result<EonServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(EonServer { db, listener, opts })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// Start the accept loop on a background thread.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let (stop2, active2) = (stop.clone(), active.clone());
        let join = std::thread::spawn(move || self.accept_loop(stop2, active2));
        ServerHandle {
            addr,
            stop,
            active,
            join: Some(join),
        }
    }

    fn accept_loop(self, stop: Arc<AtomicBool>, active: Arc<AtomicUsize>) {
        let obs = &self.db.config().obs;
        let labels: &[(&str, &str)] = &[("subsystem", "server")];
        // Connection-schedule dependent, so never part of deterministic
        // snapshots (DESIGN.md "Determinism rules").
        let connections =
            obs.counter_with("server_connections_total", labels, eon_obs::Determinism::WallClock);
        for conn in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            connections.inc();
            active.fetch_add(1, Ordering::SeqCst);
            let db = self.db.clone();
            let opts = self.opts.clone();
            let active = active.clone();
            std::thread::spawn(move || {
                let _ = serve_connection(&db, stream, &opts);
                active.fetch_sub(1, Ordering::SeqCst);
            });
        }
    }
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being served (sessions not yet quiesced).
    pub fn active_sessions(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Stop accepting. Live sessions drain on their own; poll
    /// [`ServerHandle::active_sessions`] to wait for quiesce.
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// What the reader thread hands the session executor.
enum Event {
    Req(Request),
    /// Framing is broken (decode failure / truncation): respond typed,
    /// then close — the byte stream can't be resynced.
    Fatal(EonError),
}

fn serve_connection(db: &Arc<EonDb>, stream: TcpStream, opts: &ServerOpts) -> Result<()> {
    let _ = stream.set_nodelay(true);
    let obs = &db.config().obs;
    let labels: &[(&str, &str)] = &[("subsystem", "server")];
    let wc = eon_obs::Determinism::WallClock;
    let requests = obs.counter_with("server_requests_total", labels, wc);
    let wire_errors = obs.counter_with("server_wire_errors_total", labels, wc);
    let disconnect_cancels = obs.counter_with("server_disconnect_cancels_total", labels, wc);

    let cancel = CancelToken::new();
    let reader_stream = stream.try_clone()?;
    let (tx, rx) = mpsc::channel::<Event>();
    let reader = {
        let cancel = cancel.clone();
        let max_frame = opts.max_frame;
        std::thread::spawn(move || {
            let mut r = BufReader::new(reader_stream);
            loop {
                match read_frame(&mut r, max_frame) {
                    Ok(None) => break, // clean disconnect
                    Ok(Some(payload)) => match Request::decode(&payload) {
                        Ok(req) => {
                            if tx.send(Event::Req(req)).is_err() {
                                break;
                            }
                        }
                        Err(e) => {
                            let _ = tx.send(Event::Fatal(e));
                            break;
                        }
                    },
                    Err(e) => {
                        let _ = tx.send(Event::Fatal(e));
                        break;
                    }
                }
            }
            // The peer is gone (or unintelligible): whatever this
            // session holds — admission ticket, slots, pool claims —
            // must come back at the next cooperative boundary.
            cancel.cancel();
        })
    };

    let mut w = BufWriter::new(stream.try_clone()?);
    let outcome = session_loop(
        db,
        &rx,
        &cancel,
        &mut w,
        &requests,
        &wire_errors,
        &disconnect_cancels,
    );

    // Unblock and reap the reader before returning.
    let _ = stream.shutdown(Shutdown::Both);
    drop(rx);
    let _ = reader.join();
    outcome
}

#[allow(clippy::too_many_arguments)]
fn session_loop(
    db: &Arc<EonDb>,
    rx: &mpsc::Receiver<Event>,
    cancel: &CancelToken,
    w: &mut impl Write,
    requests: &Arc<eon_obs::Counter>,
    wire_errors: &Arc<eon_obs::Counter>,
    disconnect_cancels: &Arc<eon_obs::Counter>,
) -> Result<()> {
    // Handshake: the first frame must be a version-compatible Hello.
    let session = match rx.recv() {
        Ok(Event::Req(Request::Hello {
            protocol_version,
            subcluster,
            bypass_cache,
            crunch,
        })) => {
            if protocol_version != PROTOCOL_VERSION {
                let e = EonError::Query(format!(
                    "protocol version mismatch: client {protocol_version}, server {PROTOCOL_VERSION}"
                ));
                wire_errors.inc();
                write_frame(w, &Response::Error(e.to_wire()).encode())?;
                return Ok(());
            }
            write_frame(
                w,
                &Response::HelloAck {
                    protocol_version: PROTOCOL_VERSION,
                    server: format!("eon-server {}", env!("CARGO_PKG_VERSION")),
                }
                .encode(),
            )?;
            SessionOpts {
                subcluster,
                bypass_cache,
                crunch,
                cancel: Some(cancel.clone()),
            }
        }
        Ok(Event::Req(_)) => {
            let e = EonError::Query("first frame must be HELLO".into());
            wire_errors.inc();
            write_frame(w, &Response::Error(e.to_wire()).encode())?;
            return Ok(());
        }
        Ok(Event::Fatal(e)) => {
            wire_errors.inc();
            let _ = write_frame(w, &Response::Error(e.to_wire()).encode());
            return Ok(());
        }
        Err(_) => return Ok(()), // disconnected before Hello
    };

    for ev in rx.iter() {
        match ev {
            Event::Req(req) => {
                // The client already hung up: don't run queued work for
                // nobody.
                if cancel.is_cancelled() {
                    disconnect_cancels.inc();
                    break;
                }
                requests.inc();
                let resp = respond(db, &req, &session);
                if let Response::Error(we) = &resp {
                    wire_errors.inc();
                    // A disconnect that killed a query mid-flight — the
                    // load-shedding event worth counting (a clean close
                    // between statements is not).
                    if cancel.is_cancelled() && matches!(we.decode(), EonError::Cancelled(_)) {
                        disconnect_cancels.inc();
                    }
                }
                if write_frame(w, &resp.encode()).is_err() {
                    break;
                }
            }
            Event::Fatal(e) => {
                wire_errors.inc();
                let _ = write_frame(w, &Response::Error(e.to_wire()).encode());
                break;
            }
        }
    }
    Ok(())
}

/// Execute one request under the session's options. Every error comes
/// back as a typed wire code — this function never fails the
/// connection.
fn respond(db: &Arc<EonDb>, req: &Request, session: &SessionOpts) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Hello { .. } => Response::Error(
            EonError::Query("HELLO is only valid as the first frame".into()).to_wire(),
        ),
        Request::Sql { sql } => match run_sql(db, sql, session) {
            Ok(resp) => resp,
            Err(e) => Response::Error(e.to_wire()),
        },
    }
}

/// Strip a leading keyword (case-insensitive), returning the rest.
fn strip_keyword<'a>(s: &'a str, kw: &str) -> Option<&'a str> {
    let t = s.trim_start();
    if t.len() >= kw.len() && t[..kw.len()].eq_ignore_ascii_case(kw) {
        let rest = &t[kw.len()..];
        // Must be a word boundary.
        if rest.is_empty() || rest.starts_with(|c: char| c.is_whitespace()) {
            return Some(rest);
        }
    }
    None
}

fn run_sql(db: &Arc<EonDb>, sql: &str, session: &SessionOpts) -> Result<Response> {
    if let Some(rest) = strip_keyword(sql, "EXPLAIN") {
        if let Some(inner) = strip_keyword(rest, "ANALYZE") {
            // Column labels come from a parse of the inner statement;
            // execution rides the profiled path.
            let columns = eon_sql::parse(inner)?.output_columns();
            let (rows, report) = db.sql_explain_analyze(inner, session)?;
            return Ok(Response::RowsWithReport {
                columns,
                rows,
                report,
            });
        }
        let text = db.sql_explain(rest)?;
        return Ok(Response::Text { text });
    }
    let res = db.sql_query(sql, session)?;
    Ok(Response::Rows {
        columns: res.columns,
        rows: res.rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_stripping_is_case_insensitive_and_boundary_safe() {
        assert!(strip_keyword("EXPLAIN SELECT 1", "EXPLAIN").is_some());
        assert!(strip_keyword("  explain analyze SELECT 1", "EXPLAIN").is_some());
        // EXPLAINX is an identifier, not the keyword.
        assert!(strip_keyword("EXPLAINX", "EXPLAIN").is_none());
        let rest = strip_keyword("Explain Analyze SELECT 1", "EXPLAIN").unwrap();
        assert_eq!(strip_keyword(rest, "ANALYZE").unwrap().trim(), "SELECT 1");
    }
}
