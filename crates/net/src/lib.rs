//! The network front door (DESIGN.md "Network service layer").
//!
//! Eon Mode's premise (§2–§4) is a shared-storage cluster serving many
//! concurrent sessions; this crate is the boundary where that traffic
//! arrives. It has three layers:
//!
//! * [`wire`] — the length-prefixed binary protocol. Typed errors
//!   cross as **stable numeric codes** ([`eon_types::WireError`]);
//!   malformed frames decode to typed `Corrupt` errors, never panics.
//! * [`server`] — `eon-server`: one session per TCP connection, each
//!   with its own `CancelToken`-carrying `SessionOpts`. A disconnect
//!   fires the token, so a dropped client releases its admission
//!   ticket, execution slots, and pool claims at the next boundary;
//!   saturation returns `Saturated`/`DeadlineExceeded` on the wire
//!   instead of parking the connection.
//! * [`client`] + [`repl`] — `eon-client`: blocking client, an
//!   interactive REPL, one-shot `-e` mode, tabular rendering, and
//!   error-code-aware messages.

pub mod client;
pub mod repl;
pub mod server;
pub mod wire;

pub use client::{ClientOpts, EonClient, SqlOutcome};
pub use server::{EonServer, ServerHandle, ServerOpts};
pub use wire::{Request, Response, MAX_FRAME_BYTES, PROTOCOL_VERSION};
