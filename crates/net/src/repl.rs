//! The `eon-client` REPL: prompt, one-shot `-e` mode, tabular result
//! rendering, and **error-code-aware** messages (`ERROR 14 SATURATED:
//! …` with a shed-load hint) so a human sees the same typed contract
//! a program would match on.

use std::io::{BufRead, Write};

use eon_types::{EonError, Value, WireError};

use crate::client::{EonClient, SqlOutcome};

/// Render one result set as a fixed-width table, pg-style.
pub fn render_table(columns: &[String], rows: &[Vec<Value>]) -> String {
    let render_cell = |v: &Value| v.to_string();
    let mut widths: Vec<usize> = columns.iter().map(|c| c.chars().count()).collect();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(render_cell).collect())
        .collect();
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            } else {
                widths.push(cell.chars().count());
            }
        }
    }
    let mut out = String::new();
    let pad = |s: &str, w: usize| {
        let mut p = s.to_string();
        for _ in s.chars().count()..w {
            p.push(' ');
        }
        p
    };
    if !columns.is_empty() {
        let header: Vec<String> = columns
            .iter()
            .enumerate()
            .map(|(i, c)| pad(c, widths[i]))
            .collect();
        out.push_str(&format!(" {}\n", header.join(" | ")));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("-{}\n", rule.join("-+-")));
    }
    for row in &rendered {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| pad(c, widths.get(i).copied().unwrap_or(0)))
            .collect();
        out.push_str(&format!(" {}\n", line.join(" | ")));
    }
    out.push_str(&format!(
        "({} row{})\n",
        rows.len(),
        if rows.len() == 1 { "" } else { "s" }
    ));
    out
}

/// Render a typed error the code-aware way: stable code, stable name,
/// message — plus an actionable hint for the backpressure codes.
pub fn render_error(e: &EonError) -> String {
    let w = e.to_wire();
    let mut out = format!("ERROR {} {}: {e}", w.code, WireError::code_name(w.code));
    match e {
        EonError::Saturated { .. } => {
            out.push_str("\nhint: the subcluster's admission pool and queue are full; retry with backoff or target another subcluster");
        }
        EonError::DeadlineExceeded(_) => {
            out.push_str("\nhint: the statement waited out its queue/slot budget; the cluster is overloaded");
        }
        EonError::ClusterDown(_) => {
            out.push_str("\nhint: the cluster is in a degraded state; check node health");
        }
        _ => {}
    }
    out
}

/// Run one statement and render the outcome (shared by REPL and `-e`).
/// Returns `false` if the statement failed.
pub fn execute_and_render(client: &mut EonClient, sql: &str, out: &mut impl Write) -> bool {
    match client.sql(sql) {
        Ok(SqlOutcome::Rows { columns, rows }) => {
            let _ = write!(out, "{}", render_table(&columns, &rows));
            true
        }
        Ok(SqlOutcome::Text(text)) => {
            let _ = writeln!(out, "{}", text.trim_end());
            true
        }
        Ok(SqlOutcome::RowsWithReport {
            columns,
            rows,
            report,
        }) => {
            let _ = write!(out, "{}", render_table(&columns, &rows));
            let _ = writeln!(out, "{}", report.trim_end());
            true
        }
        Err(e) => {
            let _ = writeln!(out, "{}", render_error(&e));
            false
        }
    }
}

/// The interactive loop: `eon> ` prompt, `\q` to quit, `\?` for help.
/// Statements are one line each (the grammar has no semicolons).
pub fn run_repl(client: &mut EonClient, input: &mut impl BufRead, out: &mut impl Write) {
    let _ = writeln!(
        out,
        "connected to {} — \\q quits, \\? lists commands",
        client.server
    );
    loop {
        let _ = write!(out, "eon> ");
        let _ = out.flush();
        let mut line = String::new();
        match input.read_line(&mut line) {
            Ok(0) | Err(_) => break, // EOF
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            "\\q" | "\\quit" | "exit" | "quit" => break,
            "\\?" | "\\h" | "help" => {
                let _ = writeln!(
                    out,
                    "  SELECT …            run a query\n  EXPLAIN SELECT …    show the plan\n  EXPLAIN ANALYZE …   run + profile\n  \\ping               liveness probe\n  \\q                  quit"
                );
            }
            "\\ping" => match client.ping() {
                Ok(()) => {
                    let _ = writeln!(out, "pong");
                }
                Err(e) => {
                    let _ = writeln!(out, "{}", render_error(&e));
                }
            },
            sql => {
                // A trailing semicolon is a human habit; strip it.
                let sql = sql.strip_suffix(';').unwrap_or(sql);
                execute_and_render(client, sql, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_multibyte() {
        let cols = vec!["name".to_string(), "n".to_string()];
        let rows = vec![
            vec![Value::Str("café".into()), Value::Int(1)],
            vec![Value::Str("a".into()), Value::Int(22)],
        ];
        let t = render_table(&cols, &rows);
        assert!(t.contains("café"), "{t}");
        assert!(t.contains("(2 rows)"), "{t}");
        // Every data line pads to the same rendered width.
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(
            lines[2].chars().count(),
            lines[3].chars().count(),
            "{t}"
        );
    }

    #[test]
    fn error_rendering_is_code_aware() {
        let e = EonError::Saturated { queued: 4, depth: 4 };
        let r = render_error(&e);
        assert!(r.contains("ERROR 14 SATURATED"), "{r}");
        assert!(r.contains("hint"), "{r}");
        let q = render_error(&EonError::UnknownTable("ghost".into()));
        assert!(q.contains("ERROR 6 UNKNOWN_TABLE"), "{q}");
    }
}
