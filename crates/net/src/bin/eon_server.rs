//! `eon-server` — serve an Eon cluster over TCP.
//!
//! The storage layer is the in-repo S3 simulator, so the binary is
//! self-contained: it boots a cluster, seeds a demo `sales` table, and
//! serves the wire protocol (see DESIGN.md "Network service layer").
//!
//! ```text
//! eon-server [--addr 127.0.0.1:5433] [--nodes 3] [--shards 3]
//!            [--rows 10000] [--slots 4]
//!            [--admission N] [--queue N] [--timeout-ms N]
//! ```
//!
//! `--admission 0` (default) disables admission control; with a bound
//! set, saturation returns typed `SATURATED` wire errors instead of
//! queueing forever.

use std::sync::Arc;

use eon_columnar::Projection;
use eon_core::{EonConfig, EonDb};
use eon_net::{EonServer, ServerOpts};
use eon_storage::{S3Config, S3SimFs};
use eon_types::{schema, Value};

struct Args {
    addr: String,
    nodes: usize,
    shards: usize,
    rows: usize,
    slots: usize,
    admission: usize,
    queue: usize,
    timeout_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:5433".into(),
        nodes: 3,
        shards: 3,
        rows: 10_000,
        slots: 4,
        admission: 0,
        queue: 0,
        timeout_ms: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = val("--addr")?,
            "--nodes" => args.nodes = val("--nodes")?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--shards" => args.shards = val("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?,
            "--rows" => args.rows = val("--rows")?.parse().map_err(|e| format!("--rows: {e}"))?,
            "--slots" => args.slots = val("--slots")?.parse().map_err(|e| format!("--slots: {e}"))?,
            "--admission" => args.admission = val("--admission")?.parse().map_err(|e| format!("--admission: {e}"))?,
            "--queue" => args.queue = val("--queue")?.parse().map_err(|e| format!("--queue: {e}"))?,
            "--timeout-ms" => args.timeout_ms = val("--timeout-ms")?.parse().map_err(|e| format!("--timeout-ms: {e}"))?,
            "--help" | "-h" => {
                println!(
                    "usage: eon-server [--addr HOST:PORT] [--nodes N] [--shards N] [--rows N] \
                     [--slots N] [--admission N] [--queue N] [--timeout-ms N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("eon-server: {e}");
            std::process::exit(2);
        }
    };

    let registry = eon_obs::Registry::new();
    let s3 = Arc::new(S3SimFs::with_metrics(S3Config::default(), &registry));
    let db = EonDb::create(
        s3,
        EonConfig::new(args.nodes, args.shards)
            .exec_slots(args.slots)
            .observability(registry)
            .admission_max_concurrent(args.admission)
            .admission_max_queue(args.queue)
            .admission_timeout_ms(args.timeout_ms)
            .slot_wait_ms(30_000),
    )
    .expect("cluster bootstrap");

    // Demo dataset so a fresh server answers queries immediately.
    let s = schema![("id", Int), ("grp", Str), ("price", Int), ("region_id", Int)];
    db.create_table(
        "sales",
        s.clone(),
        vec![Projection::super_projection("sales_super", &s, &[0], &[0])],
    )
    .expect("create sales");
    let r = schema![("region_id", Int), ("region", Str)];
    db.create_table(
        "regions",
        r.clone(),
        vec![Projection::replicated("regions_rep", &r, &[0])],
    )
    .expect("create regions");
    db.copy_into(
        "regions",
        vec![
            vec![Value::Int(0), Value::Str("NA".into())],
            vec![Value::Int(1), Value::Str("EU".into())],
        ],
    )
    .expect("load regions");
    db.copy_into(
        "sales",
        (0..args.rows as i64)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Str(if i % 3 == 0 { "a" } else { "b" }.into()),
                    Value::Int(i % 50),
                    Value::Int(i % 2),
                ]
            })
            .collect(),
    )
    .expect("load sales");

    let server = EonServer::bind(db, &args.addr, ServerOpts::default()).expect("bind");
    let addr = server.local_addr();
    eprintln!(
        "eon-server: {} nodes / {} shards, {} demo rows — listening on {addr}",
        args.nodes, args.shards, args.rows
    );
    let mut handle = server.spawn();
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
        let _ = &mut handle;
    }
}
