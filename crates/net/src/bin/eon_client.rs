//! `eon-client` — REPL + one-shot client for `eon-server`.
//!
//! ```text
//! eon-client [--addr 127.0.0.1:5433] [--subcluster N] [--bypass] [--crunch]
//!            [-e 'SELECT …']...
//! ```
//!
//! Without `-e`, runs the interactive REPL. With one or more `-e`
//! statements, executes them in order and exits non-zero if any fails
//! (errors print with their stable wire code: `ERROR 14 SATURATED: …`).

use eon_net::repl::{execute_and_render, run_repl};
use eon_net::{ClientOpts, EonClient};

struct Args {
    addr: String,
    opts: ClientOpts,
    statements: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:5433".into(),
        opts: ClientOpts::default(),
        statements: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => {
                args.addr = it.next().ok_or("--addr expects a value")?;
            }
            "--subcluster" => {
                let v = it.next().ok_or("--subcluster expects a value")?;
                args.opts.subcluster =
                    Some(v.parse().map_err(|e| format!("--subcluster: {e}"))?);
            }
            "--bypass" => args.opts.bypass_cache = true,
            "--crunch" => args.opts.crunch = true,
            "-e" | "--execute" => {
                args.statements
                    .push(it.next().ok_or("-e expects a SQL statement")?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: eon-client [--addr HOST:PORT] [--subcluster N] [--bypass] [--crunch] \
                     [-e 'SELECT …']..."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("eon-client: {e}");
            std::process::exit(2);
        }
    };

    let mut client = match EonClient::connect_opts(&args.addr, &args.opts) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("eon-client: cannot connect to {}: {e}", args.addr);
            std::process::exit(1);
        }
    };

    let stdout = std::io::stdout();
    if args.statements.is_empty() {
        let stdin = std::io::stdin();
        run_repl(&mut client, &mut stdin.lock(), &mut stdout.lock());
        return;
    }
    let mut all_ok = true;
    for sql in &args.statements {
        all_ok &= execute_and_render(&mut client, sql, &mut stdout.lock());
    }
    if !all_ok {
        std::process::exit(1);
    }
}
