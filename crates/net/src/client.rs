//! `eon-client`: the blocking wire-protocol client.
//!
//! [`EonClient::connect`] performs the Hello handshake; [`EonClient::sql`]
//! sends one statement and waits for its response. Server-side errors
//! come back as the **typed** [`EonError`] rebuilt from the stable
//! wire code — callers match on the variant (`Saturated`,
//! `DeadlineExceeded`, …), never on message text.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use eon_types::{EonError, Result, Value};

use crate::wire::{
    read_frame, write_frame, Request, Response, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};

/// Session options carried in the Hello frame.
#[derive(Debug, Clone, Default)]
pub struct ClientOpts {
    /// Pin the session to a subcluster's admission pool (§4.3).
    pub subcluster: Option<u64>,
    /// Bypass the depot for this session's scans (§5.2).
    pub bypass_cache: bool,
    /// Crunch scaling (§4.4).
    pub crunch: bool,
}

/// The outcome of one successful SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlOutcome {
    /// SELECT: column labels + rows.
    Rows {
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
    },
    /// EXPLAIN: the plan tree.
    Text(String),
    /// EXPLAIN ANALYZE: rows plus the profile report.
    RowsWithReport {
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
        report: String,
    },
}

/// A connected session. One statement in flight at a time (the server
/// executes a session's requests serially anyway).
pub struct EonClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// The server string from the Hello ack.
    pub server: String,
}

impl EonClient {
    /// Connect with default options.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<EonClient> {
        Self::connect_opts(addr, &ClientOpts::default())
    }

    /// Connect and handshake with explicit session options.
    pub fn connect_opts(addr: impl ToSocketAddrs, opts: &ClientOpts) -> Result<EonClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = EonClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            server: String::new(),
        };
        let hello = Request::Hello {
            protocol_version: PROTOCOL_VERSION,
            subcluster: opts.subcluster,
            bypass_cache: opts.bypass_cache,
            crunch: opts.crunch,
        };
        match client.round_trip(&hello)? {
            Response::HelloAck { server, .. } => {
                client.server = server;
                Ok(client)
            }
            other => Err(EonError::Query(format!(
                "unexpected handshake response: {other:?}"
            ))),
        }
    }

    /// Bound how long a single response may take (e.g. for tests that
    /// must never hang). `None` blocks indefinitely.
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> Result<()> {
        self.reader.get_ref().set_read_timeout(t)?;
        Ok(())
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.writer, &req.encode())?;
        match read_frame(&mut self.reader, MAX_FRAME_BYTES)? {
            Some(payload) => Response::decode(&payload),
            None => Err(EonError::NodeDown(
                "server closed the connection".into(),
            )),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(w) => Err(w.decode()),
            other => Err(EonError::Query(format!("unexpected response: {other:?}"))),
        }
    }

    /// Execute one statement. A server-side failure is the typed
    /// [`EonError`] decoded from its wire code.
    pub fn sql(&mut self, sql: &str) -> Result<SqlOutcome> {
        let req = Request::Sql {
            sql: sql.to_owned(),
        };
        match self.round_trip(&req)? {
            Response::Rows { columns, rows } => Ok(SqlOutcome::Rows { columns, rows }),
            Response::Text { text } => Ok(SqlOutcome::Text(text)),
            Response::RowsWithReport {
                columns,
                rows,
                report,
            } => Ok(SqlOutcome::RowsWithReport {
                columns,
                rows,
                report,
            }),
            Response::Error(w) => Err(w.decode()),
            other => Err(EonError::Query(format!("unexpected response: {other:?}"))),
        }
    }
}
