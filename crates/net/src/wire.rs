//! The wire protocol: length-prefixed binary frames (DESIGN.md
//! "Network service layer").
//!
//! Every message is one **frame**: a 4-byte big-endian payload length
//! followed by that many payload bytes. The first payload byte is a
//! message tag; the rest is the tag's body, built from four
//! primitives — `u8`, big-endian `u32`/`u64`, and `str` (u32 length +
//! UTF-8 bytes). Strings are length-delimited raw bytes, so multi-byte
//! SQL text and result values round-trip **byte-exact**.
//!
//! Decode is total: malformed input (oversized length prefix,
//! truncated body, junk tags, invalid UTF-8) is a typed
//! [`EonError::Corrupt`], never a panic and never an over-read — every
//! count is bounds-checked against the remaining buffer before any
//! allocation.
//!
//! Errors cross the wire as their **stable numeric code** plus payload
//! (see [`eon_types::WireError`]); clients rebuild the typed
//! [`EonError`] and dispatch on the variant, never on message text.

use std::io::{Read, Write};

use eon_types::{EonError, Result, Value, WireError};

/// Protocol version sent in `Hello` / `HelloAck`. Bump on any frame
/// layout change.
pub const PROTOCOL_VERSION: u32 = 1;

/// Default cap on one frame's payload. Generous for result sets while
/// keeping a junk length prefix from provoking a giant allocation.
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Session handshake: first frame on every connection.
    Hello {
        protocol_version: u32,
        /// Pin the session to a subcluster's admission pool (§4.3).
        subcluster: Option<u64>,
        /// §5.2 shaping: bypass the depot for this session's scans.
        bypass_cache: bool,
        /// §4.4 crunch scaling.
        crunch: bool,
    },
    /// Execute one SQL statement (SELECT / EXPLAIN / EXPLAIN ANALYZE).
    Sql { sql: String },
    /// Liveness probe.
    Ping,
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    HelloAck {
        protocol_version: u32,
        server: String,
    },
    /// A result set with its column labels.
    Rows {
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
    },
    /// Plain text (EXPLAIN output).
    Text { text: String },
    /// EXPLAIN ANALYZE: rows plus the profile report.
    RowsWithReport {
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
        report: String,
    },
    Pong,
    /// A typed error: stable code + payload (`EonError` round-trips).
    Error(WireError),
}

// ---------------------------------------------------------------- codec

const TAG_HELLO: u8 = 0x01;
const TAG_SQL: u8 = 0x02;
const TAG_PING: u8 = 0x03;

const TAG_HELLO_ACK: u8 = 0x81;
const TAG_ROWS: u8 = 0x82;
const TAG_TEXT: u8 = 0x83;
const TAG_ROWS_REPORT: u8 = 0x84;
const TAG_PONG: u8 = 0x85;
const TAG_ERROR: u8 = 0xEE;

const VAL_NULL: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_FLOAT: u8 = 2;
const VAL_STR: u8 = 3;
const VAL_BOOL: u8 = 4;
const VAL_DATE: u8 = 5;

fn corrupt(what: &str) -> EonError {
    EonError::Corrupt(format!("frame: {what}"))
}

/// Bounds-checked cursor over one frame's payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(&format!(
                "{what}: need {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self, what: &str) -> Result<String> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| corrupt(&format!("{what}: invalid UTF-8")))
    }

    fn finish(&self, what: &str) -> Result<()> {
        if self.remaining() != 0 {
            return Err(corrupt(&format!(
                "{what}: {} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

struct Builder {
    buf: Vec<u8>,
}

impl Builder {
    fn new(tag: u8) -> Self {
        Builder { buf: vec![tag] }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

fn encode_value(b: &mut Builder, v: &Value) {
    match v {
        Value::Null => b.u8(VAL_NULL),
        Value::Int(i) => {
            b.u8(VAL_INT);
            b.u64(*i as u64);
        }
        Value::Float(f) => {
            b.u8(VAL_FLOAT);
            b.u64(f.to_bits());
        }
        Value::Str(s) => {
            b.u8(VAL_STR);
            b.str(s);
        }
        Value::Bool(x) => {
            b.u8(VAL_BOOL);
            b.u8(*x as u8);
        }
        Value::Date(d) => {
            b.u8(VAL_DATE);
            b.u32(*d as u32);
        }
    }
}

fn decode_value(c: &mut Cursor) -> Result<Value> {
    Ok(match c.u8("value tag")? {
        VAL_NULL => Value::Null,
        VAL_INT => Value::Int(c.u64("int value")? as i64),
        VAL_FLOAT => Value::Float(f64::from_bits(c.u64("float value")?)),
        VAL_STR => Value::Str(c.str("str value")?),
        VAL_BOOL => Value::Bool(c.u8("bool value")? != 0),
        VAL_DATE => Value::Date(c.u32("date value")? as i32),
        t => return Err(corrupt(&format!("unknown value tag {t}"))),
    })
}

fn encode_rows(b: &mut Builder, columns: &[String], rows: &[Vec<Value>]) {
    b.u32(columns.len() as u32);
    for col in columns {
        b.str(col);
    }
    b.u32(rows.len() as u32);
    for row in rows {
        b.u32(row.len() as u32);
        for v in row {
            encode_value(b, v);
        }
    }
}

fn decode_rows(c: &mut Cursor) -> Result<(Vec<String>, Vec<Vec<Value>>)> {
    let ncols = c.u32("column count")? as usize;
    if ncols > c.remaining() {
        return Err(corrupt("column count exceeds frame"));
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        columns.push(c.str("column label")?);
    }
    let nrows = c.u32("row count")? as usize;
    if nrows > c.remaining() {
        return Err(corrupt("row count exceeds frame"));
    }
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let nvals = c.u32("row width")? as usize;
        if nvals > c.remaining() {
            return Err(corrupt("row width exceeds frame"));
        }
        let mut row = Vec::with_capacity(nvals);
        for _ in 0..nvals {
            row.push(decode_value(c)?);
        }
        rows.push(row);
    }
    Ok((columns, rows))
}

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Hello {
                protocol_version,
                subcluster,
                bypass_cache,
                crunch,
            } => {
                let mut b = Builder::new(TAG_HELLO);
                b.u32(*protocol_version);
                match subcluster {
                    Some(sc) => {
                        b.u8(1);
                        b.u64(*sc);
                    }
                    None => b.u8(0),
                }
                b.u8(*bypass_cache as u8);
                b.u8(*crunch as u8);
                b.buf
            }
            Request::Sql { sql } => {
                let mut b = Builder::new(TAG_SQL);
                b.str(sql);
                b.buf
            }
            Request::Ping => Builder::new(TAG_PING).buf,
        }
    }

    pub fn decode(payload: &[u8]) -> Result<Request> {
        let mut c = Cursor::new(payload);
        let req = match c.u8("request tag")? {
            TAG_HELLO => {
                let protocol_version = c.u32("hello version")?;
                let subcluster = match c.u8("hello subcluster flag")? {
                    0 => None,
                    1 => Some(c.u64("hello subcluster")?),
                    f => return Err(corrupt(&format!("bad option flag {f}"))),
                };
                let bypass_cache = c.u8("hello bypass")? != 0;
                let crunch = c.u8("hello crunch")? != 0;
                Request::Hello {
                    protocol_version,
                    subcluster,
                    bypass_cache,
                    crunch,
                }
            }
            TAG_SQL => Request::Sql {
                sql: c.str("sql text")?,
            },
            TAG_PING => Request::Ping,
            t => return Err(corrupt(&format!("unknown request tag {t:#04x}"))),
        };
        c.finish("request")?;
        Ok(req)
    }
}

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::HelloAck {
                protocol_version,
                server,
            } => {
                let mut b = Builder::new(TAG_HELLO_ACK);
                b.u32(*protocol_version);
                b.str(server);
                b.buf
            }
            Response::Rows { columns, rows } => {
                let mut b = Builder::new(TAG_ROWS);
                encode_rows(&mut b, columns, rows);
                b.buf
            }
            Response::Text { text } => {
                let mut b = Builder::new(TAG_TEXT);
                b.str(text);
                b.buf
            }
            Response::RowsWithReport {
                columns,
                rows,
                report,
            } => {
                let mut b = Builder::new(TAG_ROWS_REPORT);
                encode_rows(&mut b, columns, rows);
                b.str(report);
                b.buf
            }
            Response::Pong => Builder::new(TAG_PONG).buf,
            Response::Error(w) => {
                let mut b = Builder::new(TAG_ERROR);
                b.u32(w.code as u32);
                b.str(&w.detail);
                b.u64(w.a);
                b.u64(w.b);
                b.buf
            }
        }
    }

    pub fn decode(payload: &[u8]) -> Result<Response> {
        let mut c = Cursor::new(payload);
        let resp = match c.u8("response tag")? {
            TAG_HELLO_ACK => Response::HelloAck {
                protocol_version: c.u32("ack version")?,
                server: c.str("ack server")?,
            },
            TAG_ROWS => {
                let (columns, rows) = decode_rows(&mut c)?;
                Response::Rows { columns, rows }
            }
            TAG_TEXT => Response::Text {
                text: c.str("text body")?,
            },
            TAG_ROWS_REPORT => {
                let (columns, rows) = decode_rows(&mut c)?;
                Response::RowsWithReport {
                    columns,
                    rows,
                    report: c.str("report")?,
                }
            }
            TAG_PONG => Response::Pong,
            TAG_ERROR => Response::Error(WireError {
                code: c.u32("error code")? as u16,
                detail: c.str("error detail")?,
                a: c.u64("error a")?,
                b: c.u64("error b")?,
            }),
            t => return Err(corrupt(&format!("unknown response tag {t:#04x}"))),
        };
        c.finish("response")?;
        Ok(resp)
    }
}

// --------------------------------------------------------------- frames

/// Write one frame: 4-byte big-endian payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame. `Ok(None)` on a clean EOF *between* frames (the
/// peer closed); `Corrupt` on a truncated frame, an oversized length
/// prefix (rejected **before** allocating), or any other malformation.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // Distinguish "no more frames" from "died mid-prefix".
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) if n < 4 => {
            r.read_exact(&mut len_buf[n..])
                .map_err(|_| corrupt("truncated length prefix"))?;
        }
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
            return read_frame(r, max_frame)
        }
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > max_frame {
        return Err(corrupt(&format!(
            "length prefix {len} exceeds max frame {max_frame}"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|_| corrupt("truncated frame body"))?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eon_types::all_error_exemplars;

    fn roundtrip_req(r: &Request) {
        assert_eq!(&Request::decode(&r.encode()).unwrap(), r);
    }

    fn roundtrip_resp(r: &Response) {
        assert_eq!(&Response::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn requests_round_trip() {
        roundtrip_req(&Request::Hello {
            protocol_version: PROTOCOL_VERSION,
            subcluster: Some(7),
            bypass_cache: true,
            crunch: false,
        });
        roundtrip_req(&Request::Hello {
            protocol_version: PROTOCOL_VERSION,
            subcluster: None,
            bypass_cache: false,
            crunch: true,
        });
        roundtrip_req(&Request::Sql {
            sql: "SELECT 'café ☕ 名前' FROM t".into(),
        });
        roundtrip_req(&Request::Ping);
    }

    #[test]
    fn responses_round_trip() {
        roundtrip_resp(&Response::HelloAck {
            protocol_version: 1,
            server: "eon-server 0.1".into(),
        });
        roundtrip_resp(&Response::Rows {
            columns: vec!["grp".into(), "SUM(price)".into()],
            rows: vec![
                vec![Value::Str("café".into()), Value::Int(-5)],
                vec![Value::Null, Value::Float(f64::NAN)],
                vec![Value::Bool(true), Value::Date(-3)],
            ],
        });
        roundtrip_resp(&Response::Text {
            text: "Scan sales\n".into(),
        });
        roundtrip_resp(&Response::RowsWithReport {
            columns: vec!["a".into()],
            rows: vec![vec![Value::Int(1)]],
            report: "Query Profile…".into(),
        });
        roundtrip_resp(&Response::Pong);
    }

    #[test]
    fn nan_float_round_trips_by_bits() {
        let odd_nan = f64::from_bits(0x7ff8_0000_dead_beef);
        let r = Response::Rows {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Float(odd_nan)]],
        };
        match Response::decode(&r.encode()).unwrap() {
            Response::Rows { rows, .. } => match rows[0][0] {
                Value::Float(f) => assert_eq!(f.to_bits(), odd_nan.to_bits()),
                ref v => panic!("wrong value {v:?}"),
            },
            other => panic!("wrong response {other:?}"),
        }
    }

    #[test]
    fn every_eon_error_round_trips_on_the_wire() {
        for e in all_error_exemplars() {
            let resp = Response::Error(e.to_wire());
            match Response::decode(&resp.encode()).unwrap() {
                Response::Error(w) => assert_eq!(w.decode(), e),
                other => panic!("wrong response {other:?}"),
            }
        }
    }

    #[test]
    fn junk_payloads_are_typed_errors() {
        // Unknown tags.
        assert!(matches!(
            Request::decode(&[0x7f]),
            Err(EonError::Corrupt(_))
        ));
        assert!(matches!(
            Response::decode(&[0x00]),
            Err(EonError::Corrupt(_))
        ));
        // Empty payload.
        assert!(Request::decode(&[]).is_err());
        // Truncated string length.
        assert!(Request::decode(&[TAG_SQL, 0xff, 0xff]).is_err());
        // String length pointing past the end.
        assert!(Request::decode(&[TAG_SQL, 0xff, 0xff, 0xff, 0xff]).is_err());
        // Invalid UTF-8 in a string.
        assert!(Request::decode(&[TAG_SQL, 0, 0, 0, 2, 0xc3, 0x28]).is_err());
        // Trailing garbage after a valid message.
        let mut ok = Request::Ping.encode();
        ok.push(0xaa);
        assert!(Request::decode(&ok).is_err());
        // Row/column counts that exceed the frame never allocate.
        let mut b = Builder::new(TAG_ROWS);
        b.u32(u32::MAX);
        assert!(Response::decode(&b.buf).is_err());
    }

    #[test]
    fn frame_io_round_trips_and_rejects_oversize() {
        let payload = Request::Sql {
            sql: "SELECT 1".into(),
        }
        .encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap(), payload);
        assert!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap().is_none());

        // Oversized length prefix: typed error before any allocation.
        let huge = (u32::MAX).to_be_bytes();
        let err = read_frame(&mut &huge[..], 1024).unwrap_err();
        assert!(matches!(err, EonError::Corrupt(_)), "{err}");

        // Truncated body.
        let mut short = Vec::new();
        write_frame(&mut short, &payload).unwrap();
        short.truncate(6);
        let err = read_frame(&mut &short[..], 1024).unwrap_err();
        assert!(matches!(err, EonError::Corrupt(_)), "{err}");

        // Truncated length prefix.
        let err = read_frame(&mut &[0u8, 0][..], 1024).unwrap_err();
        assert!(matches!(err, EonError::Corrupt(_)), "{err}");
    }
}
