//! Row representation used at the engine boundaries (load input, query
//! output). Internally the engine is columnar; rows only materialize at
//! the edges, matching how Vertica reconstructs complete tuples from
//! per-column files (§2.3).

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// A single tuple. Thin wrapper over `Vec<Value>` so it can grow methods
/// without committing to a representation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Row(pub Vec<Value>);

impl Row {
    pub fn new(values: Vec<Value>) -> Self {
        Row(values)
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn get(&self, idx: usize) -> &Value {
        &self.0[idx]
    }

    pub fn values(&self) -> &[Value] {
        &self.0
    }

    pub fn into_values(self) -> Vec<Value> {
        self.0
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row(v)
    }
}

impl std::ops::Index<usize> for Row {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

/// Build a row from heterogeneous literals: `row![1i64, "x", 2.5]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::row::Row::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_macro_and_index() {
        let r = row![1i64, "x", 2.5, true];
        assert_eq!(r.len(), 4);
        assert_eq!(r[0], Value::Int(1));
        assert_eq!(r[1], Value::Str("x".into()));
        assert_eq!(r[3], Value::Bool(true));
    }
}
