//! The workspace-wide error type.
//!
//! One enum rather than per-crate error types: the layers call into each
//! other constantly (a query touches cache, storage, catalog, and shards)
//! and the paper's interesting failures — S3 request failures, commit
//! invariant violations, quorum loss — all need to propagate to the same
//! callers.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, EonError>;

/// All failure modes surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EonError {
    /// Filesystem / object-store failure (possibly transient, §5.3).
    Storage(String),
    /// Object not found on the filesystem in use.
    NotFound(String),
    /// A simulated S3 throttle; callers are expected to retry.
    Throttled,
    /// Schema/type violation.
    SchemaMismatch(String),
    UnknownColumn(String),
    UnknownTable(String),
    /// Catalog object missing or version conflict.
    Catalog(String),
    /// OCC write-set validation failed at commit (§6.3).
    WriteConflict(String),
    /// Commit-time invariant violated: a subscriber was missing metadata
    /// for one of its shards, or a participating node lost its
    /// subscription mid-transaction (§3.2, §4.5).
    CommitInvariant(String),
    /// Cluster cannot form or continue: quorum or shard coverage lost
    /// (§3.4).
    ClusterDown(String),
    /// Node is down / unreachable.
    NodeDown(String),
    /// Revive refused, e.g. the cluster_info lease has not expired
    /// (§3.5).
    Revive(String),
    /// Query planning or execution error.
    Query(String),
    /// Admission control backpressure (DESIGN.md "Admission control"):
    /// the resource pool is at its concurrency limit *and* its wait
    /// queue is full. `queued` is how many sessions were already
    /// waiting; `depth` is the configured queue bound. Typed so clients
    /// can shed load instead of parking forever.
    Saturated {
        queued: usize,
        depth: usize,
    },
    /// A planned-wait budget expired: an admission queue timeout or an
    /// execution-slot wait deadline. Deterministic — the budget is
    /// consumed by planned sleeps, not wall clock.
    DeadlineExceeded(String),
    /// The session's cancellation token fired while it was waiting or
    /// running; everything it held has been released.
    Cancelled(String),
    /// Corrupt on-disk data (bad magic, short read, checksum).
    Corrupt(String),
    /// Shared storage is behind an **open circuit breaker** (DESIGN.md
    /// "Failure detection & degraded modes"): consecutive requests
    /// exhausted their retry budgets, so further requests fail fast
    /// instead of burning backoff. Deliberately **not** transient —
    /// retrying it inside the storage retry loop would defeat the
    /// fast-fail; callers shed the write (or serve depot-only reads)
    /// and the breaker half-opens on its own cooldown.
    StoreUnavailable(String),
    /// A storage precondition was violated — e.g. a PUT would overwrite
    /// an immutable object with different bytes (§5.2). Terminal: the
    /// request can never succeed, so it must not burn backoff budget or
    /// trip the circuit breaker.
    PreconditionFailed(String),
    /// A deterministic crash-point fired (fault-injection harness).
    /// Deliberately **not** transient: a simulated process death must
    /// propagate out of the operation, not be retried away.
    FaultInjected(String),
    /// Anything else.
    Internal(String),
}

impl fmt::Display for EonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use EonError::*;
        match self {
            Storage(s) => write!(f, "storage error: {s}"),
            NotFound(s) => write!(f, "not found: {s}"),
            Throttled => write!(f, "throttled by shared storage"),
            SchemaMismatch(s) => write!(f, "schema mismatch: {s}"),
            UnknownColumn(s) => write!(f, "unknown column: {s}"),
            UnknownTable(s) => write!(f, "unknown table: {s}"),
            Catalog(s) => write!(f, "catalog error: {s}"),
            WriteConflict(s) => write!(f, "write-write conflict: {s}"),
            CommitInvariant(s) => write!(f, "commit invariant violated: {s}"),
            ClusterDown(s) => write!(f, "cluster down: {s}"),
            NodeDown(s) => write!(f, "node down: {s}"),
            Revive(s) => write!(f, "revive failed: {s}"),
            Query(s) => write!(f, "query error: {s}"),
            Saturated { queued, depth } => write!(
                f,
                "admission queue full: {queued} session(s) already queued of depth {depth}"
            ),
            DeadlineExceeded(s) => write!(f, "deadline exceeded: {s}"),
            Cancelled(s) => write!(f, "cancelled: {s}"),
            Corrupt(s) => write!(f, "corrupt data: {s}"),
            StoreUnavailable(s) => write!(f, "shared storage unavailable: {s}"),
            PreconditionFailed(s) => write!(f, "precondition failed: {s}"),
            FaultInjected(s) => write!(f, "injected fault: crash at {s}"),
            Internal(s) => write!(f, "internal error: {s}"),
        }
    }
}

impl std::error::Error for EonError {}

impl From<std::io::Error> for EonError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::NotFound {
            EonError::NotFound(e.to_string())
        } else {
            EonError::Storage(e.to_string())
        }
    }
}

impl EonError {
    /// Whether a retry loop should try again (the paper requires "a
    /// properly balanced retry loop" around S3 access, §5.3).
    pub fn is_transient(&self) -> bool {
        matches!(self, EonError::Throttled) || matches!(self, EonError::Storage(_))
    }
}

/// The serialized form of an [`EonError`]: a **stable numeric code**
/// plus the variant's payload, flattened to one string and two
/// integers. This is what the network layer puts on the wire — clients
/// dispatch on `code`, never on message text, so error messages can be
/// reworded without breaking anyone.
///
/// Codes are append-only: a retired variant's code is never reused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Stable numeric code (see [`EonError::wire_code`]).
    pub code: u16,
    /// The variant's string payload (empty for payload-free variants).
    pub detail: String,
    /// First integer payload (`Saturated.queued`); 0 otherwise.
    pub a: u64,
    /// Second integer payload (`Saturated.depth`); 0 otherwise.
    pub b: u64,
}

impl EonError {
    /// The stable numeric wire code for this variant.
    ///
    /// The match is deliberately exhaustive with **no wildcard arm**:
    /// adding an `EonError` variant breaks this build until it gets a
    /// code here *and* a decode arm in [`WireError::decode`].
    pub fn wire_code(&self) -> u16 {
        use EonError::*;
        match self {
            Storage(_) => 1,
            NotFound(_) => 2,
            Throttled => 3,
            SchemaMismatch(_) => 4,
            UnknownColumn(_) => 5,
            UnknownTable(_) => 6,
            Catalog(_) => 7,
            WriteConflict(_) => 8,
            CommitInvariant(_) => 9,
            ClusterDown(_) => 10,
            NodeDown(_) => 11,
            Revive(_) => 12,
            Query(_) => 13,
            Saturated { .. } => 14,
            DeadlineExceeded(_) => 15,
            Cancelled(_) => 16,
            Corrupt(_) => 17,
            StoreUnavailable(_) => 18,
            PreconditionFailed(_) => 19,
            FaultInjected(_) => 20,
            Internal(_) => 21,
        }
    }

    /// Flatten into the wire form. Inverse of [`WireError::decode`];
    /// the pair round-trips every variant payload-exactly (enforced by
    /// an exhaustive-variant test below and a proptest in `eon-net`).
    pub fn to_wire(&self) -> WireError {
        use EonError::*;
        let code = self.wire_code();
        let (detail, a, b) = match self {
            Throttled => (String::new(), 0, 0),
            Saturated { queued, depth } => (String::new(), *queued as u64, *depth as u64),
            Storage(s) | NotFound(s) | SchemaMismatch(s) | UnknownColumn(s)
            | UnknownTable(s) | Catalog(s) | WriteConflict(s) | CommitInvariant(s)
            | ClusterDown(s) | NodeDown(s) | Revive(s) | Query(s) | DeadlineExceeded(s)
            | Cancelled(s) | Corrupt(s) | StoreUnavailable(s) | PreconditionFailed(s)
            | FaultInjected(s) | Internal(s) => (s.clone(), 0, 0),
        };
        WireError { code, detail, a, b }
    }
}

impl WireError {
    /// Reconstruct the typed error. Unknown codes (a newer server
    /// talking to an older client) degrade to `Internal` with the code
    /// preserved in the message — never a panic, never a silent drop.
    pub fn decode(&self) -> EonError {
        use EonError::*;
        let s = || self.detail.clone();
        match self.code {
            1 => Storage(s()),
            2 => NotFound(s()),
            3 => Throttled,
            4 => SchemaMismatch(s()),
            5 => UnknownColumn(s()),
            6 => UnknownTable(s()),
            7 => Catalog(s()),
            8 => WriteConflict(s()),
            9 => CommitInvariant(s()),
            10 => ClusterDown(s()),
            11 => NodeDown(s()),
            12 => Revive(s()),
            13 => Query(s()),
            14 => Saturated {
                queued: self.a as usize,
                depth: self.b as usize,
            },
            15 => DeadlineExceeded(s()),
            16 => Cancelled(s()),
            17 => Corrupt(s()),
            18 => StoreUnavailable(s()),
            19 => PreconditionFailed(s()),
            20 => FaultInjected(s()),
            21 => Internal(s()),
            other => Internal(format!("unknown wire error code {other}: {}", self.detail)),
        }
    }

    /// Short stable name for the code — what `eon-client` prints next
    /// to the message (`ERROR 14 SATURATED: …`).
    pub fn code_name(code: u16) -> &'static str {
        match code {
            1 => "STORAGE",
            2 => "NOT_FOUND",
            3 => "THROTTLED",
            4 => "SCHEMA_MISMATCH",
            5 => "UNKNOWN_COLUMN",
            6 => "UNKNOWN_TABLE",
            7 => "CATALOG",
            8 => "WRITE_CONFLICT",
            9 => "COMMIT_INVARIANT",
            10 => "CLUSTER_DOWN",
            11 => "NODE_DOWN",
            12 => "REVIVE",
            13 => "QUERY",
            14 => "SATURATED",
            15 => "DEADLINE_EXCEEDED",
            16 => "CANCELLED",
            17 => "CORRUPT",
            18 => "STORE_UNAVAILABLE",
            19 => "PRECONDITION_FAILED",
            20 => "FAULT_INJECTED",
            21 => "INTERNAL",
            _ => "UNKNOWN",
        }
    }
}

/// One exemplar of **every** `EonError` variant, for round-trip tests.
/// Built with an exhaustive `match` over a probe value so a new variant
/// breaks this function's build until the exemplar (and therefore the
/// wire mapping tests) covers it.
pub fn all_error_exemplars() -> Vec<EonError> {
    use EonError::*;
    let exemplars = vec![
        Storage("s3 503".into()),
        NotFound("depot/k".into()),
        Throttled,
        SchemaMismatch("col count".into()),
        UnknownColumn("nope".into()),
        UnknownTable("ghost".into()),
        Catalog("version skew".into()),
        WriteConflict("t1".into()),
        CommitInvariant("shard 2".into()),
        ClusterDown("quorum lost".into()),
        NodeDown("node 3".into()),
        Revive("lease live".into()),
        Query("parse error".into()),
        Saturated { queued: 7, depth: 9 },
        DeadlineExceeded("admission".into()),
        Cancelled("slot wait".into()),
        Corrupt("bad magic".into()),
        StoreUnavailable("breaker open".into()),
        PreconditionFailed("immutable overwrite".into()),
        FaultInjected("load.pre_commit".into()),
        Internal("bug".into()),
    ];
    // Exhaustiveness guard: every variant constructed above must appear
    // in this match, and the match has no wildcard — adding a variant
    // without an exemplar fails to compile.
    for e in &exemplars {
        match e {
            Storage(_) | NotFound(_) | Throttled | SchemaMismatch(_) | UnknownColumn(_)
            | UnknownTable(_) | Catalog(_) | WriteConflict(_) | CommitInvariant(_)
            | ClusterDown(_) | NodeDown(_) | Revive(_) | Query(_) | Saturated { .. }
            | DeadlineExceeded(_) | Cancelled(_) | Corrupt(_) | StoreUnavailable(_)
            | PreconditionFailed(_) | FaultInjected(_) | Internal(_) => {}
        }
    }
    exemplars
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_error_conversion() {
        let nf = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert!(matches!(EonError::from(nf), EonError::NotFound(_)));
        let other = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "no");
        assert!(matches!(EonError::from(other), EonError::Storage(_)));
    }

    #[test]
    fn transient_classification() {
        assert!(EonError::Throttled.is_transient());
        assert!(EonError::Storage("503".into()).is_transient());
        assert!(!EonError::WriteConflict("t".into()).is_transient());
        assert!(!EonError::FaultInjected("load.pre_commit".into()).is_transient());
    }

    #[test]
    fn display_is_informative() {
        assert!(EonError::UnknownTable("t1".into()).to_string().contains("t1"));
        let sat = EonError::Saturated { queued: 3, depth: 4 };
        assert!(sat.to_string().contains('3') && sat.to_string().contains('4'));
    }

    #[test]
    fn backpressure_errors_are_not_transient() {
        // Retrying a saturated pool or an expired deadline inside the
        // S3 retry loop would defeat the point of shedding load.
        assert!(!EonError::Saturated { queued: 1, depth: 1 }.is_transient());
        assert!(!EonError::DeadlineExceeded("q".into()).is_transient());
        assert!(!EonError::Cancelled("q".into()).is_transient());
    }

    #[test]
    fn every_variant_round_trips_through_the_wire_form() {
        let exemplars = all_error_exemplars();
        // Distinct codes (stable numbering never collides)...
        let codes: std::collections::HashSet<u16> =
            exemplars.iter().map(|e| e.wire_code()).collect();
        assert_eq!(codes.len(), exemplars.len(), "duplicate wire codes");
        // ...and payload-exact decode for every variant.
        for e in &exemplars {
            let w = e.to_wire();
            assert_eq!(&w.decode(), e, "code {} lost its payload", w.code);
            assert_ne!(WireError::code_name(w.code), "UNKNOWN", "code {}", w.code);
        }
    }

    #[test]
    fn unknown_wire_code_degrades_to_internal() {
        let w = WireError {
            code: 9999,
            detail: "from the future".into(),
            a: 0,
            b: 0,
        };
        let e = w.decode();
        assert!(matches!(&e, EonError::Internal(m) if m.contains("9999")), "{e}");
    }

    #[test]
    fn degraded_mode_errors_are_terminal() {
        // An open breaker means "stop asking" — retrying would undo the
        // fast-fail; a violated precondition can never succeed.
        assert!(!EonError::StoreUnavailable("breaker open".into()).is_transient());
        assert!(!EonError::PreconditionFailed("overwrite".into()).is_transient());
        // NotFound likewise never earns a retry (NoSuchKey is terminal).
        assert!(!EonError::NotFound("k".into()).is_transient());
    }
}
