//! The workspace-wide error type.
//!
//! One enum rather than per-crate error types: the layers call into each
//! other constantly (a query touches cache, storage, catalog, and shards)
//! and the paper's interesting failures — S3 request failures, commit
//! invariant violations, quorum loss — all need to propagate to the same
//! callers.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, EonError>;

/// All failure modes surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EonError {
    /// Filesystem / object-store failure (possibly transient, §5.3).
    Storage(String),
    /// Object not found on the filesystem in use.
    NotFound(String),
    /// A simulated S3 throttle; callers are expected to retry.
    Throttled,
    /// Schema/type violation.
    SchemaMismatch(String),
    UnknownColumn(String),
    UnknownTable(String),
    /// Catalog object missing or version conflict.
    Catalog(String),
    /// OCC write-set validation failed at commit (§6.3).
    WriteConflict(String),
    /// Commit-time invariant violated: a subscriber was missing metadata
    /// for one of its shards, or a participating node lost its
    /// subscription mid-transaction (§3.2, §4.5).
    CommitInvariant(String),
    /// Cluster cannot form or continue: quorum or shard coverage lost
    /// (§3.4).
    ClusterDown(String),
    /// Node is down / unreachable.
    NodeDown(String),
    /// Revive refused, e.g. the cluster_info lease has not expired
    /// (§3.5).
    Revive(String),
    /// Query planning or execution error.
    Query(String),
    /// Admission control backpressure (DESIGN.md "Admission control"):
    /// the resource pool is at its concurrency limit *and* its wait
    /// queue is full. `queued` is how many sessions were already
    /// waiting; `depth` is the configured queue bound. Typed so clients
    /// can shed load instead of parking forever.
    Saturated {
        queued: usize,
        depth: usize,
    },
    /// A planned-wait budget expired: an admission queue timeout or an
    /// execution-slot wait deadline. Deterministic — the budget is
    /// consumed by planned sleeps, not wall clock.
    DeadlineExceeded(String),
    /// The session's cancellation token fired while it was waiting or
    /// running; everything it held has been released.
    Cancelled(String),
    /// Corrupt on-disk data (bad magic, short read, checksum).
    Corrupt(String),
    /// Shared storage is behind an **open circuit breaker** (DESIGN.md
    /// "Failure detection & degraded modes"): consecutive requests
    /// exhausted their retry budgets, so further requests fail fast
    /// instead of burning backoff. Deliberately **not** transient —
    /// retrying it inside the storage retry loop would defeat the
    /// fast-fail; callers shed the write (or serve depot-only reads)
    /// and the breaker half-opens on its own cooldown.
    StoreUnavailable(String),
    /// A storage precondition was violated — e.g. a PUT would overwrite
    /// an immutable object with different bytes (§5.2). Terminal: the
    /// request can never succeed, so it must not burn backoff budget or
    /// trip the circuit breaker.
    PreconditionFailed(String),
    /// A deterministic crash-point fired (fault-injection harness).
    /// Deliberately **not** transient: a simulated process death must
    /// propagate out of the operation, not be retried away.
    FaultInjected(String),
    /// Anything else.
    Internal(String),
}

impl fmt::Display for EonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use EonError::*;
        match self {
            Storage(s) => write!(f, "storage error: {s}"),
            NotFound(s) => write!(f, "not found: {s}"),
            Throttled => write!(f, "throttled by shared storage"),
            SchemaMismatch(s) => write!(f, "schema mismatch: {s}"),
            UnknownColumn(s) => write!(f, "unknown column: {s}"),
            UnknownTable(s) => write!(f, "unknown table: {s}"),
            Catalog(s) => write!(f, "catalog error: {s}"),
            WriteConflict(s) => write!(f, "write-write conflict: {s}"),
            CommitInvariant(s) => write!(f, "commit invariant violated: {s}"),
            ClusterDown(s) => write!(f, "cluster down: {s}"),
            NodeDown(s) => write!(f, "node down: {s}"),
            Revive(s) => write!(f, "revive failed: {s}"),
            Query(s) => write!(f, "query error: {s}"),
            Saturated { queued, depth } => write!(
                f,
                "admission queue full: {queued} session(s) already queued of depth {depth}"
            ),
            DeadlineExceeded(s) => write!(f, "deadline exceeded: {s}"),
            Cancelled(s) => write!(f, "cancelled: {s}"),
            Corrupt(s) => write!(f, "corrupt data: {s}"),
            StoreUnavailable(s) => write!(f, "shared storage unavailable: {s}"),
            PreconditionFailed(s) => write!(f, "precondition failed: {s}"),
            FaultInjected(s) => write!(f, "injected fault: crash at {s}"),
            Internal(s) => write!(f, "internal error: {s}"),
        }
    }
}

impl std::error::Error for EonError {}

impl From<std::io::Error> for EonError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::NotFound {
            EonError::NotFound(e.to_string())
        } else {
            EonError::Storage(e.to_string())
        }
    }
}

impl EonError {
    /// Whether a retry loop should try again (the paper requires "a
    /// properly balanced retry loop" around S3 access, §5.3).
    pub fn is_transient(&self) -> bool {
        matches!(self, EonError::Throttled) || matches!(self, EonError::Storage(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_error_conversion() {
        let nf = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert!(matches!(EonError::from(nf), EonError::NotFound(_)));
        let other = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "no");
        assert!(matches!(EonError::from(other), EonError::Storage(_)));
    }

    #[test]
    fn transient_classification() {
        assert!(EonError::Throttled.is_transient());
        assert!(EonError::Storage("503".into()).is_transient());
        assert!(!EonError::WriteConflict("t".into()).is_transient());
        assert!(!EonError::FaultInjected("load.pre_commit".into()).is_transient());
    }

    #[test]
    fn display_is_informative() {
        assert!(EonError::UnknownTable("t1".into()).to_string().contains("t1"));
        let sat = EonError::Saturated { queued: 3, depth: 4 };
        assert!(sat.to_string().contains('3') && sat.to_string().contains('4'));
    }

    #[test]
    fn backpressure_errors_are_not_transient() {
        // Retrying a saturated pool or an expired deadline inside the
        // S3 retry loop would defeat the point of shedding load.
        assert!(!EonError::Saturated { queued: 1, depth: 1 }.is_transient());
        assert!(!EonError::DeadlineExceeded("q".into()).is_transient());
        assert!(!EonError::Cancelled("q".into()).is_transient());
    }

    #[test]
    fn degraded_mode_errors_are_terminal() {
        // An open breaker means "stop asking" — retrying would undo the
        // fast-fail; a violated precondition can never succeed.
        assert!(!EonError::StoreUnavailable("breaker open".into()).is_transient());
        assert!(!EonError::PreconditionFailed("overwrite".into()).is_transient());
        // NotFound likewise never earns a retry (NoSuchKey is terminal).
        assert!(!EonError::NotFound("k".into()).is_transient());
    }
}
