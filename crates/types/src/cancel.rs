//! Cooperative query cancellation.
//!
//! A [`CancelToken`] is handed to a session (see `SessionOpts` in
//! `eon-core`) and checked at every point where the session could
//! otherwise hold resources indefinitely: execution-slot waits, the
//! admission queue, scan-pool task claims, and write-pool job claims.
//! Cancellation is cooperative — firing the token makes the next
//! boundary check return [`EonError::Cancelled`], at which point RAII
//! guards release everything the session held.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::error::{EonError, Result};

/// Shared cancellation flag for one session. Cloning is cheap and all
/// clones observe the same flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    fired: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fire the token. Idempotent; all clones observe it.
    pub fn cancel(&self) {
        self.fired.store(true, Ordering::SeqCst);
    }

    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    /// Boundary check: `Err(EonError::Cancelled)` once fired. `what`
    /// names the boundary for the error message.
    pub fn check(&self, what: &str) -> Result<()> {
        if self.is_cancelled() {
            Err(EonError::Cancelled(what.to_owned()))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_once_for_all_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        t.check("slot wait").unwrap();
        c.cancel();
        assert!(t.is_cancelled());
        let err = t.check("slot wait").unwrap_err();
        assert!(matches!(err, EonError::Cancelled(ref w) if w == "slot wait"));
    }
}
