//! Fundamental types shared by every crate in the Eon-mode reproduction:
//! the value model, table schemas, the 32-bit hash space that segment
//! shards carve up, object identifiers, and the common error type.
//!
//! The paper (§2, §3.1) describes Vertica as a typed columnar SQL engine
//! whose records are assigned to segment shards by hashing a list of
//! segmentation columns into a 32-bit hash space. This crate provides
//! exactly that substrate and nothing engine-specific.

pub mod cancel;
pub mod error;
pub mod hashspace;
pub mod ids;
pub mod row;
pub mod schema;
pub mod value;

pub use cancel::CancelToken;
pub use error::{all_error_exemplars, EonError, Result, WireError};
pub use hashspace::{hash_row_32, hash_value, HashRange, HASH_SPACE_BITS};
pub use ids::{NodeId, Oid, ShardId, TxnVersion};
pub use row::Row;
pub use schema::{Field, Schema};
pub use value::{DataType, Value};
