//! Table schemas: ordered lists of named, typed fields.

use serde::{Deserialize, Serialize};

use crate::error::{EonError, Result};
use crate::value::{DataType, Value};

/// One column of a table schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    pub name: String,
    pub dtype: DataType,
    pub nullable: bool,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }

    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }
}

/// An ordered collection of fields. Column references throughout the
/// engine are by *index* into the schema; name lookup happens once at
/// plan-build time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Schema {
    pub fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| EonError::UnknownColumn(name.to_owned()))
    }

    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Validate that `row` conforms to this schema (arity, types,
    /// nullability). Used by the load path before segmentation.
    pub fn check_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.fields.len() {
            return Err(EonError::SchemaMismatch(format!(
                "row has {} values, schema has {} fields",
                row.len(),
                self.fields.len()
            )));
        }
        for (v, f) in row.iter().zip(&self.fields) {
            match v.data_type() {
                None
                    if !f.nullable => {
                        return Err(EonError::SchemaMismatch(format!(
                            "NULL in non-nullable column {}",
                            f.name
                        )));
                    }
                Some(dt) if dt != f.dtype => {
                    return Err(EonError::SchemaMismatch(format!(
                        "column {} expects {}, got {}",
                        f.name, f.dtype, dt
                    )));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Build a schema by projecting a subset of this schema's columns.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            fields: indices.iter().map(|&i| self.fields[i].clone()).collect(),
        }
    }
}

/// Ergonomic schema construction: `schema![("a", Int), ("b", Str)]`.
#[macro_export]
macro_rules! schema {
    ($(($name:expr, $dt:ident)),* $(,)?) => {
        $crate::schema::Schema::new(vec![
            $($crate::schema::Field::new($name, $crate::value::DataType::$dt)),*
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Schema {
        schema![("id", Int), ("name", Str), ("price", Float)]
    }

    #[test]
    fn index_lookup() {
        assert_eq!(s().index_of("name").unwrap(), 1);
        assert!(s().index_of("missing").is_err());
    }

    #[test]
    fn row_check_accepts_valid() {
        let row = vec![Value::Int(1), Value::Str("a".into()), Value::Float(2.0)];
        assert!(s().check_row(&row).is_ok());
    }

    #[test]
    fn row_check_rejects_arity() {
        assert!(s().check_row(&[Value::Int(1)]).is_err());
    }

    #[test]
    fn row_check_rejects_type() {
        let row = vec![Value::Str("x".into()), Value::Str("a".into()), Value::Float(2.0)];
        assert!(s().check_row(&row).is_err());
    }

    #[test]
    fn row_check_nullability() {
        let sch = Schema::new(vec![Field::new("id", DataType::Int).not_null()]);
        assert!(sch.check_row(&[Value::Null]).is_err());
        assert!(sch.check_row(&[Value::Int(1)]).is_ok());
        // nullable column accepts NULL
        assert!(s().check_row(&[Value::Null, Value::Null, Value::Null]).is_ok());
    }

    #[test]
    fn project_subset() {
        let p = s().project(&[2, 0]);
        assert_eq!(p.fields[0].name, "price");
        assert_eq!(p.fields[1].name, "id");
    }
}
