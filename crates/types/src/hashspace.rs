//! The 32-bit hash space that segment shards partition (paper §3.1,
//! Fig 3).
//!
//! Every segmented projection declares `SEGMENTED BY HASH(cols)`. The
//! engine hashes each row's segmentation columns into `[0, 2^32)` and the
//! shard whose range contains the hash owns the row's storage and
//! metadata. The hash must be (a) deterministic across nodes and process
//! restarts — it is persisted implicitly in every storage container — and
//! (b) well-spread for the "high cardinality, even distribution" columns
//! the paper recommends, so we use an FNV-1a/Murmur-style mix rather than
//! `DefaultHasher` (whose seeding is process-local).

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// Width of the hash space. Shard ranges are over `[0, 2^32)`.
pub const HASH_SPACE_BITS: u32 = 32;

/// Size of the hash space as a u64 (2^32).
pub const HASH_SPACE_SIZE: u64 = 1 << 32;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut state: u64) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Final avalanche mix (from splitmix64) so low-entropy inputs such as
/// sequential integers still spread over the whole space.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Hash a single value into a 64-bit digest. `Int` and `Float` values
/// that compare equal hash equal (matching `Value`'s `Hash` impl).
pub fn hash_value(v: &Value) -> u64 {
    let state = match v {
        Value::Null => fnv1a(&[0], FNV_OFFSET),
        Value::Bool(b) => fnv1a(&[1, *b as u8], FNV_OFFSET),
        Value::Int(i) => fnv1a(&(*i as f64).to_bits().to_le_bytes(), fnv1a(&[2], FNV_OFFSET)),
        Value::Float(f) => fnv1a(&f.to_bits().to_le_bytes(), fnv1a(&[2], FNV_OFFSET)),
        Value::Date(d) => fnv1a(&d.to_le_bytes(), fnv1a(&[3], FNV_OFFSET)),
        Value::Str(s) => fnv1a(s.as_bytes(), fnv1a(&[4], FNV_OFFSET)),
    };
    mix(state)
}

/// Hash the given columns of a row into the 32-bit segmentation space.
///
/// `cols` are indices into `row`; combining uses a positional multiplier
/// so `HASH(a, b) != HASH(b, a)` in general, like SQL `HASH(a, b)`.
pub fn hash_row_32(row: &[Value], cols: &[usize]) -> u32 {
    let mut acc = FNV_OFFSET;
    for &c in cols {
        acc = acc
            .rotate_left(5)
            .wrapping_mul(FNV_PRIME)
            .wrapping_add(hash_value(&row[c]));
    }
    (mix(acc) >> 32) as u32
}

/// A half-open region `[lo, hi)` of the 32-bit hash space. `hi` is held
/// as u64 so the final range can end at exactly `2^32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HashRange {
    pub lo: u64,
    pub hi: u64,
}

impl HashRange {
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi && hi <= HASH_SPACE_SIZE, "invalid hash range");
        HashRange { lo, hi }
    }

    /// The full hash space.
    pub fn full() -> Self {
        HashRange {
            lo: 0,
            hi: HASH_SPACE_SIZE,
        }
    }

    pub fn contains(&self, h: u32) -> bool {
        let h = h as u64;
        self.lo <= h && h < self.hi
    }

    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Split the hash space into `n` contiguous, equal-width ranges
    /// (the fixed shard layout chosen at database creation, §3.1).
    ///
    /// Boundaries are `ceil(i * 2^32 / n)` so that range membership is
    /// exactly `even_index(h, n) == i` — the two definitions must agree
    /// or a row could be stored in one shard and looked up in another.
    pub fn split_even(n: usize) -> Vec<HashRange> {
        assert!(n > 0, "need at least one shard");
        let n64 = n as u64;
        let lo = |i: u64| (i * HASH_SPACE_SIZE).div_ceil(n64);
        (0..n64)
            .map(|i| HashRange {
                lo: lo(i),
                hi: lo(i + 1),
            })
            .collect()
    }

    /// Which of the `n` even ranges contains hash `h`. Constant-time
    /// companion of [`split_even`], used on the hot load path.
    pub fn even_index(h: u32, n: usize) -> usize {
        ((h as u64 * n as u64) >> HASH_SPACE_BITS) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_space_without_overlap() {
        for n in [1, 2, 3, 4, 7, 16] {
            let ranges = HashRange::split_even(n);
            assert_eq!(ranges.len(), n);
            assert_eq!(ranges[0].lo, 0);
            assert_eq!(ranges[n - 1].hi, HASH_SPACE_SIZE);
            for w in ranges.windows(2) {
                assert_eq!(w[0].hi, w[1].lo);
            }
        }
    }

    #[test]
    fn even_index_matches_contains() {
        for n in [1, 2, 3, 5, 8] {
            let ranges = HashRange::split_even(n);
            for h in [0u32, 1, 1 << 20, u32::MAX / 3, u32::MAX - 1, u32::MAX] {
                let i = HashRange::even_index(h, n);
                assert!(ranges[i].contains(h), "h={h} n={n} i={i}");
            }
        }
    }

    #[test]
    fn hash_is_deterministic() {
        let row = vec![Value::Int(42), Value::Str("abc".into())];
        assert_eq!(hash_row_32(&row, &[0, 1]), hash_row_32(&row, &[0, 1]));
    }

    #[test]
    fn hash_depends_on_column_order() {
        let row = vec![Value::Int(1), Value::Int(2)];
        assert_ne!(hash_row_32(&row, &[0, 1]), hash_row_32(&row, &[1, 0]));
    }

    #[test]
    fn int_float_hash_compatibly() {
        assert_eq!(hash_value(&Value::Int(9)), hash_value(&Value::Float(9.0)));
    }

    #[test]
    fn sequential_keys_spread_evenly() {
        // The paper recommends high-cardinality columns; sequential ids
        // are the common case (e.g. HASH(sale_id) in Fig 2). Check the
        // distribution over 4 shards is within 10% of even.
        let n = 4;
        let mut counts = vec![0usize; n];
        let total = 40_000;
        for i in 0..total {
            let row = vec![Value::Int(i as i64)];
            let h = hash_row_32(&row, &[0]);
            counts[HashRange::even_index(h, n)] += 1;
        }
        let expect = total / n;
        for c in counts {
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < (expect / 10) as u64,
                "skewed: {c} vs {expect}"
            );
        }
    }

    #[test]
    fn range_contains_edges() {
        let r = HashRange::new(10, 20);
        assert!(r.contains(10));
        assert!(!r.contains(20));
        assert!(!r.contains(9));
        assert!(!HashRange::new(5, 5).contains(5));
        assert!(HashRange::new(5, 5).is_empty());
    }
}
