//! The scalar value model.
//!
//! Vertica is a SQL engine; we reproduce the handful of types the TPC-H
//! schema and the paper's workloads need: 64-bit integers, doubles,
//! strings, booleans, and dates (days since the Unix epoch, matching how
//! a columnar store would encode them). `Value::Null` is a first-class
//! member so that delete vectors, outer joins, and ADD COLUMN defaults
//! (§6.3) behave like SQL.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// The SQL data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Int,
    Float,
    Str,
    Bool,
    Date,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "VARCHAR",
            DataType::Bool => "BOOLEAN",
            DataType::Date => "DATE",
        };
        f.write_str(s)
    }
}

/// A single scalar value.
///
/// Comparison follows SQL sort semantics with one deviation that
/// simplifies a sorted column store: `Null` sorts *before* every other
/// value and compares equal to itself, giving `Value` a total order that
/// `sort_unstable` and min/max block metadata (§2.3) can rely on. Floats
/// use IEEE total ordering for NaN so the order really is total.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    /// Days since 1970-01-01.
    Date(i32),
}

impl Value {
    /// The data type of this value, or `None` for `Null` (which is
    /// compatible with every type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer view used by arithmetic and date pruning; `Int` and
    /// `Date` both qualify.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Date(v) => Some(*v as i64),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            Value::Date(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A rank used to order values of *different* types, so the total
    /// order covers heterogeneous columns (which only arise transiently,
    /// e.g. before type checking rejects a plan).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // ints and floats compare numerically
            Value::Date(_) => 3,
            Value::Str(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state)
            }
            // Int and Float that compare equal must hash equal.
            Value::Int(v) => {
                2u8.hash(state);
                (*v as f64).to_bits().hash(state)
            }
            Value::Float(v) => {
                2u8.hash(state);
                v.to_bits().hash(state)
            }
            Value::Date(v) => {
                3u8.hash(state);
                v.hash(state)
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Date(d) => {
                let (y, m, day) = days_to_ymd(*d);
                write!(f, "{y:04}-{m:02}-{day:02}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Convert a `(year, month, day)` triple to days since the Unix epoch.
/// Valid for the Gregorian calendar; used by the TPC-H generator and by
/// date literals in queries.
pub fn ymd_to_days(year: i32, month: u32, day: u32) -> i32 {
    // Algorithm from Howard Hinnant's `days_from_civil`.
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64;
    let mp = ((month + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + day as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era as i64 * 146_097 + doe - 719_468) as i32
}

/// Inverse of [`ymd_to_days`].
pub fn days_to_ymd(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let y = if m <= 2 { y + 1 } else { y };
    (y as i32, m, d)
}

/// Convenience constructor for date values.
pub fn date(year: i32, month: u32, day: u32) -> Value {
    Value::Date(ymd_to_days(year, month, day))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        let mut v = [Value::Int(3), Value::Null, Value::Int(-1)];
        v.sort();
        assert_eq!(v[0], Value::Null);
        assert_eq!(v[1], Value::Int(-1));
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn equal_values_hash_equal() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
        assert_eq!(h(&Value::Str("x".into())), h(&Value::Str("x".into())));
    }

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[(1970, 1, 1), (1992, 2, 29), (1998, 12, 1), (2026, 7, 5)] {
            let days = ymd_to_days(y, m, d);
            assert_eq!(days_to_ymd(days), (y, m, d));
        }
        assert_eq!(ymd_to_days(1970, 1, 1), 0);
        assert_eq!(ymd_to_days(1970, 1, 2), 1);
    }

    #[test]
    fn date_display() {
        assert_eq!(date(1995, 3, 15).to_string(), "1995-03-15");
    }

    #[test]
    fn total_order_on_nan() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(1.0);
        // NaN has a defined place in the total order (after all numbers).
        assert_eq!(a.cmp(&b), Ordering::Greater);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Date(10).as_int(), Some(10));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Int(2).as_float(), Some(2.0));
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
    }
}
