//! Identifier newtypes used across the catalog, sharding, and cluster
//! layers. Keeping them distinct types prevents the classic "passed a
//! node id where a shard id was expected" bug in distributed code.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

id_newtype!(
    /// A catalog object identifier (table, projection, storage
    /// container, delete vector, subscription, ...). OIDs are allocated
    /// by a per-node counter; global uniqueness of *file names* comes
    /// from the SID scheme in `eon-storage` (§5.1, Fig 7), not from the
    /// OID alone.
    Oid,
    "oid:"
);

id_newtype!(
    /// A cluster node.
    NodeId,
    "node"
);

id_newtype!(
    /// A segment or replica shard (§3.1).
    ShardId,
    "shard"
);

/// The global catalog version counter: increments on every transaction
/// commit (§3.4). Totally ordered; checkpoints and transaction logs are
/// labelled with it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TxnVersion(pub u64);

impl TxnVersion {
    pub const ZERO: TxnVersion = TxnVersion(0);

    pub fn next(self) -> TxnVersion {
        TxnVersion(self.0 + 1)
    }
}

impl fmt::Display for TxnVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(Oid(3).to_string(), "oid:3");
        assert_eq!(NodeId(1).to_string(), "node1");
        assert_eq!(ShardId(2).to_string(), "shard2");
        assert_eq!(TxnVersion(9).to_string(), "v9");
    }

    #[test]
    fn version_ordering() {
        assert!(TxnVersion(1) < TxnVersion(2));
        assert_eq!(TxnVersion::ZERO.next(), TxnVersion(1));
    }
}
