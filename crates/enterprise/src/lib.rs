//! The Enterprise-mode baseline (paper §2, §9): Vertica's classic
//! shared-nothing architecture, built on the same columnar and
//! execution substrate as Eon mode so benchmarks compare architectures,
//! not implementations.
//!
//! Architectural differences from Eon, all modelled here:
//!
//! * **fixed layout** — segment `i` lives on node `i` (hash regions
//!   mapped to nodes directly, §2.2); every query runs on *every* node;
//! * **buddy projections** — each segment is duplicated on the next
//!   node in the logical ring; a down node's segments are served by the
//!   buddy, doubling its work (the Fig 12 cliff);
//! * **node-local storage** — data files live on each node's private
//!   disk; nothing is shared;
//! * **WOS + moveout** — small loads buffer in memory (§2.3);
//! * **recovery by rebuild** — a replacement node copies *all* of its
//!   segments' data from buddies (§6.1: "proportional to the entire
//!   data-set stored on a node");
//! * **elasticity by resegmentation** — changing the node count
//!   rewrites every container (§6.4's contrast case).

pub mod db;
pub mod provider;

pub use db::{EnterpriseConfig, EnterpriseDb};
