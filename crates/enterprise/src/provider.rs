//! The Enterprise [`TableProvider`]: scans the node-local disks of the
//! shared-nothing cluster, merging in WOS-resident rows (§2.3 — queries
//! must see buffered data).
//!
//! `LocalShards` scans read the segments this node serves for the
//! query. `Global` scans emulate Enterprise's runtime broadcast: the
//! node pulls every segment from whichever node serves it — exactly the
//! network traffic the fixed layout forces for non-co-segmented joins.

use std::collections::HashMap;
use std::sync::Arc;

use eon_columnar::pruning::ColumnStats;
use eon_columnar::{Predicate, RosReader};
use eon_exec::{Distribution, ScanSpec, TableProvider};
use eon_types::{EonError, Result, Value};

use crate::db::{wos_key, EnterpriseNode, EnterpriseTable};

/// Per-query, per-node scan context.
pub struct EnterpriseProvider {
    /// The executing node.
    pub node: Arc<EnterpriseNode>,
    /// All cluster nodes (for broadcast reads).
    pub cluster: Vec<Arc<EnterpriseNode>>,
    /// For each segment, the node serving it this query.
    pub servers: Vec<usize>,
    pub tables: HashMap<String, EnterpriseTable>,
    /// Segments this node serves for the query.
    pub segments: Vec<usize>,
}

impl EnterpriseProvider {
    fn table(&self, name: &str) -> Result<&EnterpriseTable> {
        self.tables
            .get(name)
            .ok_or_else(|| EonError::UnknownTable(name.to_owned()))
    }

    /// Scan one segment's containers + WOS rows from `source`.
    #[allow(clippy::too_many_arguments)]
    fn scan_segment(
        &self,
        source: &EnterpriseNode,
        t: &EnterpriseTable,
        seg: usize,
        spec: &ScanSpec,
        out_cols: &[usize],
        needed: &[usize],
        rows: &mut Vec<Vec<Value>>,
    ) -> Result<()> {
        let width = t.schema.len();
        let containers: Vec<crate::db::LocalContainer> = source
            .containers
            .read()
            .iter()
            .filter(|c| c.projection == t.projection_oid() && c.segment == seg)
            .cloned()
            .collect();
        for c in containers {
            let reader = RosReader::open(source.disk.as_ref(), &c.key)?;
            let footer = reader.footer();
            let nblocks = footer
                .columns
                .first()
                .map(|col| col.blocks.len())
                .unwrap_or(0);
            let mut keep = vec![true; nblocks];
            for (b, slot) in keep.iter_mut().enumerate() {
                let stats = |col: usize| -> Option<ColumnStats> {
                    let m = footer.columns.get(col)?.blocks.get(b)?;
                    Some(ColumnStats {
                        min: m.min.clone(),
                        max: m.max.clone(),
                        has_null: m.has_null,
                    })
                };
                *slot = spec.predicate.could_match(&stats);
            }
            if !keep.iter().any(|&k| k) {
                continue;
            }
            let mut col_data: HashMap<usize, Vec<Option<Vec<Value>>>> = HashMap::new();
            for &col in needed {
                col_data.insert(
                    col,
                    reader.read_column_blocks(source.disk.as_ref(), col, &keep)?,
                );
            }
            for b in 0..nblocks {
                if !keep[b] {
                    continue;
                }
                let n_rows = footer.columns[0].blocks[b].rows as usize;
                for r in 0..n_rows {
                    let mut row = vec![Value::Null; width];
                    for &col in needed {
                        if let Some(blocks) = col_data.get(&col) {
                            if let Some(vals) = &blocks[b] {
                                row[col] = vals[r].clone();
                            }
                        }
                    }
                    if !spec.predicate.eval_row(&row) {
                        continue;
                    }
                    rows.push(out_cols.iter().map(|&c| row[c].clone()).collect());
                }
            }
        }
        // WOS rows for this segment (unsorted, unencoded, §2.3).
        for row in source.wos.rows(wos_key(t.projection_oid(), seg)) {
            if !spec.predicate.eval_row(&row) {
                continue;
            }
            rows.push(out_cols.iter().map(|&c| row[c].clone()).collect());
        }
        Ok(())
    }
}

impl TableProvider for EnterpriseProvider {
    fn scan(&self, spec: &ScanSpec) -> Result<Vec<Vec<Value>>> {
        let t = self.table(&spec.table)?;
        let out_cols: Vec<usize> = spec
            .columns
            .clone()
            .unwrap_or_else(|| (0..t.schema.len()).collect());
        let mut needed: Vec<usize> = out_cols.clone();
        collect_pred_cols(&spec.predicate, &mut needed);
        needed.sort_unstable();
        needed.dedup();

        let mut rows = Vec::new();
        match spec.distribute {
            Distribution::LocalShards => {
                for &seg in &self.segments {
                    self.scan_segment(&self.node, t, seg, spec, &out_cols, &needed, &mut rows)?;
                }
            }
            Distribution::Global => {
                // Broadcast: pull every segment from its server — this
                // is the cross-node traffic Enterprise pays for joins
                // that Eon's co-segmentation avoids (§9).
                for (seg, &server) in self.servers.iter().enumerate() {
                    let source = self.cluster[server].clone();
                    self.scan_segment(&source, t, seg, spec, &out_cols, &needed, &mut rows)?;
                }
            }
        }
        Ok(rows)
    }

    fn num_columns(&self, table: &str) -> Result<usize> {
        Ok(self.table(table)?.schema.len())
    }
}

fn collect_pred_cols(p: &Predicate, out: &mut Vec<usize>) {
    match p {
        Predicate::True => {}
        Predicate::Cmp { col, .. } => out.push(*col),
        Predicate::IsNull(c) | Predicate::IsNotNull(c) => out.push(*c),
        Predicate::And(ps) | Predicate::Or(ps) => {
            for q in ps {
                collect_pred_cols(q, out);
            }
        }
    }
}
