//! The Enterprise database object.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use eon_cluster::ExecSlots;
use eon_columnar::{split_rows_by_shard, Projection, RosWriter};
use eon_exec::execute::LocalResult;
use eon_exec::{auto_distribute, Plan};
use eon_storage::{MemFs, SharedFs};
use eon_tm::Wos;
use eon_types::{EonError, Oid, Result, Schema, Value};

/// Configuration for the baseline.
#[derive(Debug, Clone)]
pub struct EnterpriseConfig {
    pub num_nodes: usize,
    pub exec_slots: usize,
    /// Rows below which a load buffers in the WOS instead of writing a
    /// ROS container directly (§2.3).
    pub wos_threshold: usize,
    /// Simulated per-fragment service time, ms — same knob as
    /// `EonConfig::fragment_ms` so throughput comparisons are fair.
    pub fragment_ms: u64,
}

impl Default for EnterpriseConfig {
    fn default() -> Self {
        EnterpriseConfig {
            num_nodes: 3,
            exec_slots: 4,
            wos_threshold: 1024,
            fragment_ms: 0,
        }
    }
}

/// A container as Enterprise's node-local catalog sees it.
#[derive(Debug, Clone)]
pub struct LocalContainer {
    pub key: String,
    pub projection: Oid,
    /// Which hash segment the rows belong to.
    pub segment: usize,
    pub rows: u64,
}

/// One Enterprise node: private disk, private WOS, private container
/// list (primary + buddy copies).
pub struct EnterpriseNode {
    pub index: usize,
    pub disk: SharedFs,
    pub wos: Wos,
    pub slots: ExecSlots,
    up: AtomicBool,
    /// Containers on this node's disk, including buddy copies.
    pub containers: RwLock<Vec<LocalContainer>>,
}

impl EnterpriseNode {
    fn new(index: usize, exec_slots: usize, wos_threshold: usize) -> Arc<Self> {
        Arc::new(EnterpriseNode {
            index,
            disk: Arc::new(MemFs::new()),
            wos: Wos::new(wos_threshold),
            slots: ExecSlots::new(exec_slots),
            up: AtomicBool::new(true),
            containers: RwLock::new(Vec::new()),
        })
    }

    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::SeqCst)
    }

    /// Process death: WOS contents are lost (§5.1's Eon motivation),
    /// disk survives.
    pub fn kill(&self) {
        self.wos.crash();
        self.up.store(false, Ordering::SeqCst);
        // Waiters parked on a dead node's slots get NodeDown now.
        self.slots.close();
    }

    pub fn revive_process(&self) {
        self.up.store(true, Ordering::SeqCst);
        // Enterprise revives the same process object, so its slot
        // semaphore must come back into service too.
        self.slots.reopen();
    }

    /// Total bytes on this node's disk (recovery-cost metric, §6.1).
    pub fn disk_bytes(&self) -> u64 {
        self.disk
            .list("")
            .map(|keys| {
                keys.iter()
                    .map(|k| self.disk.size(k).unwrap_or(0))
                    .sum()
            })
            .unwrap_or(0)
    }
}

/// A table in the (global, simplified) Enterprise catalog.
#[derive(Debug, Clone)]
pub struct EnterpriseTable {
    pub oid: Oid,
    pub name: String,
    pub schema: Schema,
    pub projection: Projection,
}

/// The Enterprise-mode database.
pub struct EnterpriseDb {
    pub config: EnterpriseConfig,
    nodes: Vec<Arc<EnterpriseNode>>,
    tables: RwLock<HashMap<String, EnterpriseTable>>,
    oid_counter: AtomicU64,
    key_counter: AtomicU64,
    load_lock: Mutex<()>,
}

impl EnterpriseDb {
    pub fn create(config: EnterpriseConfig) -> Arc<Self> {
        let nodes = (0..config.num_nodes)
            .map(|i| EnterpriseNode::new(i, config.exec_slots, config.wos_threshold))
            .collect();
        Arc::new(EnterpriseDb {
            nodes,
            tables: RwLock::new(HashMap::new()),
            oid_counter: AtomicU64::new(1),
            key_counter: AtomicU64::new(1),
            load_lock: Mutex::new(()),
            config,
        })
    }

    pub fn nodes(&self) -> &[Arc<EnterpriseNode>] {
        &self.nodes
    }

    pub fn node(&self, i: usize) -> &Arc<EnterpriseNode> {
        &self.nodes[i]
    }

    /// The buddy of node `i` in the rotated ring (§2.2).
    pub fn buddy_of(&self, i: usize) -> usize {
        (i + 1) % self.nodes.len()
    }

    pub fn create_table(&self, name: &str, schema: Schema, projection: Projection) -> Result<Oid> {
        projection.validate(&schema)?;
        let mut g = self.tables.write();
        if g.contains_key(name) {
            return Err(EonError::Catalog(format!("table {name} exists")));
        }
        let oid = Oid(self.oid_counter.fetch_add(1, Ordering::Relaxed));
        g.insert(
            name.to_owned(),
            EnterpriseTable {
                oid,
                name: name.to_owned(),
                schema,
                projection,
            },
        );
        Ok(oid)
    }

    pub fn table(&self, name: &str) -> Result<EnterpriseTable> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EonError::UnknownTable(name.to_owned()))
    }

    /// Load rows. Small loads buffer in the WOS; larger loads write ROS
    /// containers to the owner node *and* its buddy (§2.2's replicated
    /// placement, done with duplicated work on each side).
    pub fn copy_into(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<u64> {
        let _g = self.load_lock.lock();
        let t = self.table(table)?;
        for row in &rows {
            t.schema.check_row(row)?;
        }
        let n = rows.len() as u64;
        let proj_rows: Vec<Vec<Value>> = rows.iter().map(|r| t.projection.project_row(r)).collect();
        let buckets = split_rows_by_shard(
            proj_rows,
            t.projection.seg_cols(),
            self.nodes.len(),
        );
        for (seg, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            if bucket.len() < self.config.wos_threshold {
                // WOS path: buffer on owner and buddy (both must be able
                // to serve); moveout happens when the threshold trips.
                for node_idx in [seg, self.buddy_of(seg)] {
                    let node = &self.nodes[node_idx];
                    if node.is_up()
                        && node.wos.append(wos_key(t.projection_oid(), seg), bucket.clone())
                    {
                        self.moveout(node_idx, &t, seg)?;
                    }
                }
            } else {
                self.write_ros(seg, &t, seg, bucket.clone())?;
                self.write_ros(self.buddy_of(seg), &t, seg, bucket)?;
            }
        }
        Ok(n)
    }

    /// Spill one node's WOS buffer for a projection into a sorted ROS
    /// container (§2.3 moveout).
    pub fn moveout(&self, node_idx: usize, t: &EnterpriseTable, segment: usize) -> Result<()> {
        let node = &self.nodes[node_idx];
        let rows = node.wos.moveout(wos_key(t.projection_oid(), segment));
        if rows.is_empty() {
            return Ok(());
        }
        self.write_ros(node_idx, t, segment, rows)
    }

    fn write_ros(
        &self,
        node_idx: usize,
        t: &EnterpriseTable,
        segment: usize,
        mut rows: Vec<Vec<Value>>,
    ) -> Result<()> {
        let node = &self.nodes[node_idx];
        if !node.is_up() {
            return Err(EonError::NodeDown(format!("node {node_idx}")));
        }
        t.projection.sort_rows(&mut rows);
        let width = t.projection.columns.len();
        let mut columns: Vec<Vec<Value>> = vec![Vec::with_capacity(rows.len()); width];
        for row in rows {
            for (c, v) in row.into_iter().enumerate() {
                columns[c].push(v);
            }
        }
        let (bytes, footer) = RosWriter::new().encode(&columns)?;
        let key = format!(
            "node{node_idx}/seg{segment}/ros{:08}",
            self.key_counter.fetch_add(1, Ordering::Relaxed)
        );
        node.disk.write(&key, bytes)?;
        node.containers.write().push(LocalContainer {
            key,
            projection: t.projection_oid(),
            segment,
            rows: footer.total_rows,
        });
        Ok(())
    }

    /// Which node serves each segment right now: the owner, or the
    /// buddy when the owner is down. Errors when both are down (data
    /// unavailable — Enterprise's K-safety limit).
    pub fn segment_servers(&self) -> Result<Vec<usize>> {
        (0..self.nodes.len())
            .map(|seg| {
                if self.nodes[seg].is_up() {
                    Ok(seg)
                } else if self.nodes[self.buddy_of(seg)].is_up() {
                    Ok(self.buddy_of(seg))
                } else {
                    Err(EonError::ClusterDown(format!(
                        "segment {seg}: owner and buddy both down"
                    )))
                }
            })
            .collect()
    }

    /// Execute a query: the fixed layout means every up node
    /// participates, serving its own segment plus any down neighbour's
    /// (§2.2). Plans use the same language as Eon mode.
    pub fn query(&self, plan: &Plan) -> Result<Vec<Vec<Value>>> {
        let dp = Arc::new(auto_distribute(plan));
        let servers = self.segment_servers()?;
        let mut by_node: HashMap<usize, Vec<usize>> = HashMap::new();
        if dp.has_local_scan() {
            for (seg, node) in servers.iter().enumerate() {
                by_node.entry(*node).or_default().push(seg);
            }
        } else {
            // Global-only plan: one node answers (running it everywhere
            // would multiply broadcast rows into the merge).
            by_node.insert(servers[0], Vec::new());
        }
        let results: Vec<LocalResult> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (node_idx, segments) in by_node {
                let dp = dp.clone();
                let node = self.nodes[node_idx].clone();
                let tables = self.tables.read().clone();
                let cluster = self.nodes.clone();
                let servers = servers.clone();
                let fragment_ms = self.config.fragment_ms;
                handles.push(scope.spawn(move || {
                    let _slots = node.slots.acquire(segments.len().max(1))?;
                    if fragment_ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(fragment_ms));
                    }
                    let provider = crate::provider::EnterpriseProvider {
                        node,
                        cluster,
                        servers,
                        tables,
                        segments,
                    };
                    dp.execute_local(&provider)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("enterprise worker panicked"))
                .collect::<Result<Vec<_>>>()
        })?;
        dp.finish(results)
    }

    /// Rebuild a restarted node's data from its buddies: the §6.1
    /// Enterprise recovery path, proportional to the node's *entire*
    /// data set. Returns bytes copied.
    pub fn recover_node(&self, node_idx: usize) -> Result<u64> {
        let node = &self.nodes[node_idx];
        node.revive_process();
        // The node serves: its own segment (copy from buddy) and the
        // buddy copy of its predecessor's segment (copy from owner).
        let mut copied = 0u64;
        let n = self.nodes.len();
        let pred = (node_idx + n - 1) % n;
        for (segment, source_idx) in [(node_idx, self.buddy_of(node_idx)), (pred, pred)] {
            let source = &self.nodes[source_idx];
            if !source.is_up() {
                return Err(EonError::NodeDown(format!("rebuild source {source_idx}")));
            }
            let source_containers: Vec<LocalContainer> = source
                .containers
                .read()
                .iter()
                .filter(|c| c.segment == segment)
                .cloned()
                .collect();
            // Drop stale local copies of this segment, then re-copy.
            {
                let mut mine = node.containers.write();
                mine.retain(|c| c.segment != segment);
            }
            for c in source_containers {
                let data = source.disk.read(&c.key)?;
                copied += data.len() as u64;
                node.disk.write(&c.key, data)?;
                node.containers.write().push(c);
            }
        }
        Ok(copied)
    }

    /// Total rows across one projection (sanity metric).
    pub fn total_container_rows(&self, table: &str) -> Result<u64> {
        let t = self.table(table)?;
        let mut total = 0;
        for (seg, node) in self.nodes.iter().enumerate() {
            if !node.is_up() {
                continue;
            }
            total += node
                .containers
                .read()
                .iter()
                .filter(|c| c.projection == t.projection_oid() && c.segment == seg)
                .map(|c| c.rows)
                .sum::<u64>();
        }
        Ok(total)
    }
}

impl EnterpriseTable {
    pub fn projection_oid(&self) -> Oid {
        // One projection per table in the baseline; its oid is the
        // table oid (sufficient for WOS/container bookkeeping).
        self.oid
    }
}

/// WOS buffers are keyed by (projection, segment) so a node holding
/// buddy rows keeps them separable from its own segment's rows.
pub fn wos_key(projection: Oid, segment: usize) -> Oid {
    Oid((projection.0 << 16) | segment as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eon_exec::{AggSpec, Expr, ScanSpec, SortKey};
    use eon_types::schema;

    fn mk_db(nodes: usize) -> Arc<EnterpriseDb> {
        let db = EnterpriseDb::create(EnterpriseConfig {
            num_nodes: nodes,
            exec_slots: 4,
            wos_threshold: 200,
            fragment_ms: 0,
        });
        let s = schema![("id", Int), ("v", Int)];
        db.create_table("t", s.clone(), Projection::super_projection("p", &s, &[0], &[0]))
            .unwrap();
        db
    }

    fn rows(lo: i64, hi: i64) -> Vec<Vec<Value>> {
        (lo..hi).map(|i| vec![Value::Int(i), Value::Int(i % 5)]).collect()
    }

    fn count(db: &EnterpriseDb) -> i64 {
        let plan = Plan::scan(ScanSpec::new("t")).aggregate(vec![], vec![AggSpec::count_star()]);
        db.query(&plan).unwrap()[0][0].as_int().unwrap()
    }

    #[test]
    fn load_and_query_roundtrip() {
        let db = mk_db(3);
        db.copy_into("t", rows(0, 3000)).unwrap();
        assert_eq!(count(&db), 3000);
        let plan = Plan::scan(ScanSpec::new("t"))
            .aggregate(vec![1], vec![AggSpec::sum(Expr::col(0))])
            .sort(vec![SortKey::asc(0)]);
        let out = db.query(&plan).unwrap();
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn small_loads_buffer_in_wos() {
        let db = mk_db(3);
        db.copy_into("t", rows(0, 90)).unwrap(); // ~30/segment < threshold
        // Data visible though still in WOS.
        assert_eq!(count(&db), 90);
        let wos_rows: usize = db.nodes().iter().map(|n| n.wos.total_rows()).sum();
        assert!(wos_rows > 0, "expected WOS buffering");
    }

    #[test]
    fn node_crash_loses_wos_rows() {
        let db = mk_db(3);
        db.copy_into("t", rows(0, 90)).unwrap();
        // Kill and revive every node: WOS contents gone — the §5.1
        // durability gap Eon mode closes.
        for n in db.nodes() {
            n.kill();
        }
        for n in db.nodes() {
            n.revive_process();
        }
        assert!(count(&db) < 90);
    }

    #[test]
    fn buddy_serves_when_owner_down() {
        let db = mk_db(3);
        db.copy_into("t", rows(0, 3000)).unwrap();
        db.node(1).kill();
        assert_eq!(count(&db), 3000);
        // Buddy is doing double duty: it serves two segments.
        let servers = db.segment_servers().unwrap();
        assert_eq!(servers[1], db.buddy_of(1));
    }

    #[test]
    fn two_adjacent_nodes_down_loses_data() {
        let db = mk_db(3);
        db.copy_into("t", rows(0, 3000)).unwrap();
        db.node(1).kill();
        db.node(2).kill(); // buddy of 1
        assert!(db.query(
            &Plan::scan(ScanSpec::new("t")).aggregate(vec![], vec![AggSpec::count_star()])
        )
        .is_err());
    }

    #[test]
    fn recovery_copies_full_node_dataset() {
        let db = mk_db(3);
        db.copy_into("t", rows(0, 6000)).unwrap();
        db.node(0).kill();
        let copied = db.recover_node(0).unwrap();
        assert!(copied > 0);
        assert_eq!(count(&db), 6000);
        // Recovery cost scales with data volume (§6.1): double the data,
        // roughly double the copy.
        let db2 = mk_db(3);
        db2.copy_into("t", rows(0, 12_000)).unwrap();
        db2.node(0).kill();
        let copied2 = db2.recover_node(0).unwrap();
        assert!(
            copied2 > copied * 3 / 2,
            "copied {copied} vs {copied2} for 2x data"
        );
    }

    #[test]
    fn moveout_spills_wos() {
        let db = mk_db(3);
        db.copy_into("t", rows(0, 90)).unwrap();
        let t = db.table("t").unwrap();
        for seg in 0..3 {
            db.moveout(seg, &t, seg).unwrap();
            db.moveout(db.buddy_of(seg), &t, seg).unwrap();
        }
        let wos_rows: usize = db.nodes().iter().map(|n| n.wos.total_rows()).sum();
        assert_eq!(wos_rows, 0);
        assert_eq!(count(&db), 90);
    }
}
