//! Microbenchmarks for the column block encodings (§2.1): encode/decode
//! throughput per encoding on representative blocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eon_columnar::encoding::{decode_column, encode_with, Encoding};
use eon_columnar::format::{Reader, Writer};
use eon_types::Value;

fn blocks() -> Vec<(&'static str, Vec<Value>)> {
    vec![
        ("sorted_ints", (0..4096i64).map(Value::Int).collect()),
        (
            "low_card_strings",
            (0..4096).map(|i| Value::Str(format!("cat{}", i % 9))).collect(),
        ),
        (
            "runs",
            (0..4096).map(|i| Value::Int((i / 512) as i64)).collect(),
        ),
        (
            "random_floats",
            (0..4096).map(|i| Value::Float((i as f64 * 0.7919).fract())).collect(),
        ),
    ]
}

fn fits(enc: Encoding, vals: &[Value]) -> bool {
    enc != Encoding::Delta
        || vals.iter().all(|v| matches!(v, Value::Int(_) | Value::Date(_)))
}

fn bench_encodings(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode");
    for (name, vals) in blocks() {
        for enc in [Encoding::Plain, Encoding::Rle, Encoding::Dict, Encoding::Delta] {
            if !fits(enc, &vals) {
                continue;
            }
            g.bench_with_input(
                BenchmarkId::new(format!("{enc:?}"), name),
                &vals,
                |b, vals| {
                    b.iter(|| {
                        let mut w = Writer::new();
                        encode_with(vals, enc, &mut w);
                        w.len()
                    })
                },
            );
        }
    }
    g.finish();

    let mut g = c.benchmark_group("decode");
    for (name, vals) in blocks() {
        let mut w = Writer::new();
        eon_columnar::encode_column(&vals, &mut w);
        let bytes = w.into_bytes();
        g.bench_with_input(BenchmarkId::new("auto", name), &bytes, |b, bytes| {
            b.iter(|| decode_column(&mut Reader::new(bytes)).unwrap().len())
        });
    }
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(name = benches; config = quick(); targets = bench_encodings);
criterion_main!(benches);
