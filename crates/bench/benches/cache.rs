//! Microbenchmarks for the depot (§5.2): hit path, miss path, and LRU
//! eviction pressure.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use eon_cache::FileCache;
use eon_storage::{FileSystem, MemFs};
use std::sync::Arc;

fn bench_cache(c: &mut Criterion) {
    let backing = Arc::new(MemFs::new());
    for i in 0..256 {
        backing
            .write(&format!("obj/{i:04}"), Bytes::from(vec![0u8; 4096]))
            .unwrap();
    }

    c.bench_function("cache_hit", |b| {
        let cache = FileCache::new(Arc::new(MemFs::new()), backing.clone(), 64 << 20);
        cache.read_with("obj/0000", Default::default()).unwrap();
        b.iter(|| cache.read_with("obj/0000", Default::default()).unwrap().len())
    });

    c.bench_function("cache_miss_faultin", |b| {
        let mut i = 0usize;
        let cache = FileCache::new(Arc::new(MemFs::new()), backing.clone(), 64 << 20);
        b.iter(|| {
            i = (i + 1) % 256;
            cache.evict(&format!("obj/{i:04}")).unwrap();
            cache.read_with(&format!("obj/{i:04}"), Default::default()).unwrap().len()
        })
    });

    c.bench_function("cache_eviction_churn", |b| {
        // Capacity for ~8 objects: every insert evicts.
        let cache = FileCache::new(Arc::new(MemFs::new()), backing.clone(), 8 * 4096);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 256;
            cache.read_with(&format!("obj/{i:04}"), Default::default()).unwrap().len()
        })
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(name = benches; config = quick(); targets = bench_cache);
criterion_main!(benches);
