//! Microbenchmarks for the tuple mover (§2.3, §6.2): strata planning
//! and the k-way merge, across strata factors (the ablation DESIGN.md
//! calls out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eon_tm::mergeout::{plan_mergeout, MergeInput, MergeoutPolicy};
use eon_tm::merge_sorted_rows;
use eon_types::{Oid, Value};

fn bench_mergeout(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_mergeout");
    for factor in [2u64, 4, 8, 16] {
        let policy = MergeoutPolicy {
            base_rows: 1000,
            factor,
            fanin: 4,
            purge_threshold_pct: 20,
        };
        let containers: Vec<MergeInput> = (0..64)
            .map(|i| MergeInput {
                oid: Oid(i),
                rows: 1000 * (1 + i % 7),
                deleted: if i % 9 == 0 { 400 } else { 0 },
            })
            .collect();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("factor{factor}")),
            &(containers, policy),
            |b, (cs, p)| b.iter(|| plan_mergeout(cs, p).len()),
        );
    }
    g.finish();

    c.bench_function("kway_merge_4x4096", |b| {
        let inputs: Vec<Vec<Vec<Value>>> = (0..4)
            .map(|k| {
                (0..4096)
                    .map(|i| vec![Value::Int(i * 4 + k), Value::Int(i)])
                    .collect()
            })
            .collect();
        b.iter(|| merge_sorted_rows(inputs.clone(), &[0]).len())
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(name = benches; config = quick(); targets = bench_mergeout);
criterion_main!(benches);
