//! Microbenchmark for the §4.1 participant-selection solver at growing
//! cluster sizes: selection runs per query, so it must stay cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eon_shard::{select_participants, AssignmentProblem};
use eon_types::{NodeId, ShardId};

fn bench_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("select_participants");
    for (nodes, shards) in [(4usize, 4u64), (16, 8), (64, 16), (128, 32)] {
        let ns: Vec<NodeId> = (0..nodes as u64).map(NodeId).collect();
        let ss: Vec<ShardId> = (0..shards).map(ShardId).collect();
        let can = ns
            .iter()
            .flat_map(|&n| ss.iter().map(move |&s| (n, s)))
            .collect();
        let p = AssignmentProblem::flat(ss, ns, can);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{nodes}n_{shards}s")),
            &p,
            |b, p| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    select_participants(p, seed).unwrap().len()
                })
            },
        );
    }
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(name = benches; config = quick(); targets = bench_selection);
criterion_main!(benches);
