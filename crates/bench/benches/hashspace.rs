//! Microbenchmarks for the segmentation hash (§3.1): the load path
//! hashes every row, so this sits on the hot path of Fig 11b.

use criterion::{criterion_group, criterion_main, Criterion};
use eon_columnar::split_rows_by_shard;
use eon_types::{hash_row_32, Value};

fn bench_hash(c: &mut Criterion) {
    let int_row = vec![Value::Int(123_456_789)];
    let str_row = vec![Value::Str("customer#000001234".into()), Value::Int(42)];
    c.bench_function("hash_row_int", |b| b.iter(|| hash_row_32(&int_row, &[0])));
    c.bench_function("hash_row_str_int", |b| {
        b.iter(|| hash_row_32(&str_row, &[0, 1]))
    });

    c.bench_function("split_10k_rows_4_shards", |b| {
        let rows: Vec<Vec<Value>> = (0..10_000i64)
            .map(|i| vec![Value::Int(i), Value::Int(i * 3)])
            .collect();
        b.iter(|| {
            split_rows_by_shard(rows.clone(), &[0], 4)
                .iter()
                .map(|b| b.len())
                .sum::<usize>()
        })
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(name = benches; config = quick(); targets = bench_hash);
criterion_main!(benches);
