//! Microbenchmarks for the catalog (§2.4, §6.3): OCC commit latency and
//! checkpoint+replay recovery.

use criterion::{criterion_group, criterion_main, Criterion};
use eon_catalog::{Catalog, CatalogOp, CatalogStore, Checkpoint, ContainerMeta};
use eon_storage::MemFs;
use eon_types::{Oid, ShardId};
use std::sync::Arc;

fn add_container_op(cat: &Catalog) -> CatalogOp {
    CatalogOp::AddContainer(ContainerMeta {
        oid: cat.next_oid(),
        key: "data/aa/bench".into(),
        table: Oid(1),
        projection: Oid(2),
        shard: ShardId(0),
        rows: 1000,
        size_bytes: 1 << 20,
        col_minmax: vec![],
    })
}

fn bench_catalog(c: &mut Criterion) {
    c.bench_function("occ_commit", |b| {
        let cat = Catalog::new();
        b.iter(|| {
            let mut t = cat.begin();
            t.push(add_container_op(&cat));
            cat.commit(t).unwrap().version
        })
    });

    c.bench_function("recovery_replay_100_txns", |b| {
        let local = Arc::new(MemFs::new());
        let shared = Arc::new(MemFs::new());
        let store = CatalogStore::new(local, shared, "bench");
        let cat = Catalog::new();
        for _ in 0..100 {
            let mut t = cat.begin();
            t.push(add_container_op(&cat));
            let rec = cat.commit(t).unwrap();
            store.append_local(&rec).unwrap();
        }
        b.iter(|| store.recover_local().unwrap().1)
    });

    c.bench_function("checkpoint_write", |b| {
        let local = Arc::new(MemFs::new());
        let shared = Arc::new(MemFs::new());
        let store = CatalogStore::new(local, shared, "bench");
        let cat = Catalog::new();
        for _ in 0..200 {
            let mut t = cat.begin();
            t.push(add_container_op(&cat));
            cat.commit(t).unwrap();
        }
        let snap = (*cat.snapshot()).clone();
        let version = cat.version();
        b.iter(|| {
            store
                .write_checkpoint(&Checkpoint {
                    version,
                    state: snap.clone(),
                })
                .unwrap()
        })
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group!(name = benches; config = quick(); targets = bench_catalog);
criterion_main!(benches);
