//! Virtual-time throughput simulation.
//!
//! The paper's throughput figures (11a, 11b, 12) measure how the
//! *architecture* schedules work over a cluster: which nodes a query
//! occupies (§4.1's participant selection), how many execution slots it
//! takes (§4.2), and what serializes (the commit point). Reproducing
//! those curves with wall-clock threads requires as many real cores as
//! simulated nodes; this benchmark host has one. So the figure
//! harnesses drive a discrete-event simulation instead: **every
//! scheduling decision still comes from the real system** — the real
//! max-flow participant selection against the real catalog
//! subscriptions, including node kills — and only the passage of time
//! is virtual. (DESIGN.md §1 documents the substitution.)
//!
//! Model: each node is `E` identical servers (execution slots). A query
//! issues one *fragment* per participating node, occupying `slots`
//! servers there for `ms` virtual milliseconds; the query finishes when
//! its last fragment does, plus an optional `serial_ms` on a single
//! global resource (the commit critical section for loads). Clients are
//! closed-loop: each re-issues immediately on completion.

use std::collections::HashMap;

/// One node-local piece of a query.
#[derive(Debug, Clone)]
pub struct Fragment {
    pub node: u64,
    /// Execution slots occupied (≥1, clamped to the node's capacity).
    pub slots: usize,
    /// Service time in virtual milliseconds.
    pub ms: u64,
}

/// One operation as the simulator sees it.
#[derive(Debug, Clone, Default)]
pub struct OpSpec {
    pub fragments: Vec<Fragment>,
    /// Time on the single global resource after fragments complete
    /// (0 = none). Models the cluster commit critical section.
    pub serial_ms: u64,
}

/// Per-slot next-free times for one node.
struct NodeState {
    free_at: Vec<u64>,
}

impl NodeState {
    /// Earliest start at which `k` slots are simultaneously free given
    /// an arrival time, and mark them busy until `start + ms`.
    fn allocate(&mut self, arrival: u64, k: usize, ms: u64) -> u64 {
        let k = k.clamp(1, self.free_at.len());
        // k-th smallest free time bounds the start.
        self.free_at.sort_unstable();
        let start = arrival.max(self.free_at[k - 1]);
        for slot in self.free_at.iter_mut().take(k) {
            *slot = start + ms;
        }
        start + ms // fragment end
    }
}

/// Closed-loop simulation outcome.
pub struct SimOutcome {
    /// Operations completed within the horizon.
    pub completed: u64,
    /// Completions per interval, if `intervals > 1`.
    pub per_interval: Vec<u64>,
}

/// Run `clients` closed-loop clients for `horizon_ms` of virtual time.
///
/// `next_op(client, seq, now_ms)` builds each operation — call into the
/// real system (participation selection, writer assignment) here. The
/// horizon is divided into `intervals` equal buckets for timeline
/// figures (Fig 12); `on_interval(i)` fires as simulation time crosses
/// each boundary so the caller can mutate the real system (kill a
/// node).
#[allow(clippy::too_many_arguments)]
pub fn simulate(
    clients: usize,
    horizon_ms: u64,
    node_capacity: &HashMap<u64, usize>,
    intervals: usize,
    mut on_interval: impl FnMut(usize),
    mut next_op: impl FnMut(usize, u64, u64) -> OpSpec,
) -> SimOutcome {
    let mut nodes: HashMap<u64, NodeState> = node_capacity
        .iter()
        .map(|(&n, &cap)| {
            (
                n,
                NodeState {
                    free_at: vec![0; cap.max(1)],
                },
            )
        })
        .collect();
    let mut serial_free_at: u64 = 0;
    // (next issue time, client id, sequence number)
    let mut ready: Vec<(u64, usize, u64)> = (0..clients).map(|c| (0u64, c, 0u64)).collect();
    let mut completed = 0u64;
    let mut per_interval = vec![0u64; intervals.max(1)];
    let interval_len = (horizon_ms / intervals.max(1) as u64).max(1);
    let mut fired_intervals = 0usize;

    // Earliest-ready client issues next.
    while let Some((idx, &(now, client, seq))) = ready
        .iter()
        .enumerate()
        .min_by_key(|(_, (t, c, _))| (*t, *c))
    {
        if now >= horizon_ms {
            break;
        }
        // Fire interval callbacks the simulation time has crossed.
        while fired_intervals < intervals && now >= fired_intervals as u64 * interval_len {
            on_interval(fired_intervals);
            fired_intervals += 1;
        }

        let spec = next_op(client, seq, now);
        let mut end = now;
        for f in &spec.fragments {
            if let Some(ns) = nodes.get_mut(&f.node) {
                end = end.max(ns.allocate(now, f.slots, f.ms));
            }
        }
        if spec.serial_ms > 0 {
            let start = end.max(serial_free_at);
            serial_free_at = start + spec.serial_ms;
            end = serial_free_at;
        }
        if end <= horizon_ms {
            completed += 1;
            let bucket = ((end.saturating_sub(1)) / interval_len) as usize;
            if bucket < per_interval.len() {
                per_interval[bucket] += 1;
            }
        }
        ready[idx] = (end, client, seq + 1);
    }
    SimOutcome {
        completed,
        per_interval,
    }
}

/// Queries (ops) per minute from a simulated run.
pub fn sim_per_minute(completed: u64, horizon_ms: u64) -> f64 {
    completed as f64 * 60_000.0 / horizon_ms as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps(nodes: u64, slots: usize) -> HashMap<u64, usize> {
        (0..nodes).map(|n| (n, slots)).collect()
    }

    fn frag(node: u64, slots: usize, ms: u64) -> Fragment {
        Fragment { node, slots, ms }
    }

    #[test]
    fn single_server_throughput_is_rate_limited() {
        // 1 node, 1 slot, 10ms ops, many clients: 100 ops/s.
        let out = simulate(8, 1_000, &caps(1, 1), 1, |_| {}, |_, _, _| OpSpec {
            fragments: vec![frag(0, 1, 10)],
            serial_ms: 0,
        });
        assert_eq!(out.completed, 100);
    }

    #[test]
    fn slots_multiply_capacity() {
        let one = simulate(16, 1_000, &caps(1, 1), 1, |_| {}, |_, _, _| OpSpec {
            fragments: vec![frag(0, 1, 10)],
            serial_ms: 0,
        });
        let four = simulate(16, 1_000, &caps(1, 4), 1, |_| {}, |_, _, _| OpSpec {
            fragments: vec![frag(0, 1, 10)],
            serial_ms: 0,
        });
        assert_eq!(four.completed, one.completed * 4);
    }

    #[test]
    fn nodes_multiply_capacity_with_spread() {
        // Ops alternate across nodes: 3 nodes triple 1-node throughput.
        let run = |n: u64| {
            simulate(24, 1_000, &caps(n, 2), 1, |_| {}, move |_, seq, _| OpSpec {
                fragments: vec![frag(seq % n, 1, 10)],
                serial_ms: 0,
            })
            .completed
        };
        // Within 2% of exactly 3x (round-robin isn't perfectly phased
        // at the horizon edge).
        let (one, three) = (run(1), run(3));
        assert!(
            (three as f64 - one as f64 * 3.0).abs() / (one as f64 * 3.0) < 0.02,
            "one={one} three={three}"
        );
    }

    #[test]
    fn client_count_caps_throughput_below_capacity() {
        // 2 clients, 10ms ops, huge capacity: 200 ops/s, not more.
        let out = simulate(2, 1_000, &caps(4, 8), 1, |_| {}, |_, _, _| OpSpec {
            fragments: vec![frag(0, 1, 10)],
            serial_ms: 0,
        });
        assert_eq!(out.completed, 200);
    }

    #[test]
    fn serial_section_is_a_global_bottleneck() {
        // Fragments are free; 5ms serial section caps at 200 ops/s
        // regardless of clients or nodes.
        let out = simulate(32, 1_000, &caps(8, 8), 1, |_| {}, |_, _, _| OpSpec {
            fragments: vec![frag(0, 1, 1)],
            serial_ms: 5,
        });
        assert!((190..=200).contains(&out.completed), "{}", out.completed);
    }

    #[test]
    fn multi_slot_fragments_consume_more() {
        // Each op takes ALL 4 slots of the node for 10ms: 100 ops/s
        // even though single-slot ops would do 400.
        let out = simulate(16, 1_000, &caps(1, 4), 1, |_| {}, |_, _, _| OpSpec {
            fragments: vec![frag(0, 4, 10)],
            serial_ms: 0,
        });
        assert_eq!(out.completed, 100);
    }

    #[test]
    fn intervals_partition_completions() {
        let out = simulate(4, 1_000, &caps(1, 4), 4, |_| {}, |_, _, _| OpSpec {
            fragments: vec![frag(0, 1, 10)],
            serial_ms: 0,
        });
        assert_eq!(out.per_interval.len(), 4);
        let total: u64 = out.per_interval.iter().sum();
        assert_eq!(total, out.completed);
    }

    #[test]
    fn interval_callback_can_degrade_capacity() {
        // Kill half the capacity at the midpoint via the callback by
        // switching which node ops land on (node 1 has 1 slot).
        use std::cell::Cell;
        let degraded = Cell::new(false);
        let out = simulate(
            8,
            2_000,
            &HashMap::from([(0u64, 4usize), (1u64, 1usize)]),
            2,
            |i| {
                if i == 1 {
                    degraded.set(true);
                }
            },
            |_, _, _| OpSpec {
                fragments: vec![frag(if degraded.get() { 1 } else { 0 }, 1, 10)],
                serial_ms: 0,
            },
        );
        assert!(
            out.per_interval[1] < out.per_interval[0],
            "{:?}",
            out.per_interval
        );
    }
}
