//! Workload-management ablation: concurrent sessions with and without
//! admission control, so the backpressure contract is measured rather
//! than asserted (DESIGN.md "Admission control").
//!
//! Configurations over the same deterministic table and session mix:
//!
//! * `no_admission` — the pre-WLM shape: every session goes straight
//!   to the execution-slot semaphore and queues there;
//! * `admission` — a pool sized to the cluster (running ≤ 4, queue ≤
//!   8, 5s queue deadline);
//! * `strict` — a deliberately undersized pool (running ≤ 2, queue ≤
//!   2, 1s deadline) driven through a saturation spike: all execution
//!   slots are held for the first 50ms, so admitted sessions park,
//!   the queue fills, and the overflow must bounce with typed
//!   `Saturated` errors instead of parking forever.
//!
//! Every configuration must resolve **all** sessions — success or a
//! typed backpressure error, nothing else, nothing hung — and must
//! quiesce with `available == capacity` on every node's slot
//! semaphore and empty pools. Successful sessions must return the one
//! true answer. All of that is asserted before any timing is
//! reported; p50/p99 session latency and the rejection counts land in
//! `BENCH_wlm.json`.
//!
//! Knobs: `EON_BENCH_WLM_ROWS` (default 20000), `EON_BENCH_WLM_WORKERS`
//! (default 8), `EON_BENCH_WLM_SESSIONS` (sessions per worker, default
//! 12), `EON_BENCH_S3_LAT_US` (default 200), `EON_BENCH_JSON` (output
//! path, default `BENCH_wlm.json`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use eon_bench::{metrics_summary, print_json, print_table, update_bench_json_default};
use eon_columnar::Projection;
use eon_core::{EonConfig, EonDb, SessionOpts};
use eon_exec::{AggSpec, Expr, Plan, ScanSpec};
use eon_obs::Registry;
use eon_storage::{S3Config, S3SimFs};
use eon_types::{schema, CancelToken, EonError, Value};

const NODES: usize = 3;
const SHARDS: usize = 3;
const SLOTS: usize = 4;

fn knob(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn s3_latency() -> Duration {
    Duration::from_micros(knob("EON_BENCH_S3_LAT_US", 200) as u64)
}

struct Ablation {
    name: &'static str,
    max_concurrent: usize,
    max_queue: usize,
    timeout_ms: u64,
    /// Hold every execution slot for the first 50ms so the pool and
    /// queue fill deterministically before any session can run.
    spike: bool,
}

const CONFIGS: &[Ablation] = &[
    Ablation { name: "no_admission", max_concurrent: 0, max_queue: 0, timeout_ms: 0, spike: false },
    Ablation { name: "admission", max_concurrent: 4, max_queue: 8, timeout_ms: 5_000, spike: false },
    Ablation { name: "strict", max_concurrent: 2, max_queue: 2, timeout_ms: 1_000, spike: true },
];

/// Per-config session outcome tally.
#[derive(Default)]
struct Outcomes {
    ok: AtomicU64,
    saturated: AtomicU64,
    admission_deadline: AtomicU64,
    slot_deadline: AtomicU64,
    cancelled: AtomicU64,
    other: AtomicU64,
}

fn build_db(ab: &Ablation, rows: usize, latency: Duration) -> (Arc<EonDb>, Registry) {
    let registry = Registry::new();
    let s3 = Arc::new(S3SimFs::with_metrics(
        S3Config {
            request_latency: latency,
            ..S3Config::default()
        },
        &registry,
    ));
    let db = EonDb::create(
        s3,
        EonConfig::new(NODES, SHARDS)
            .exec_slots(SLOTS)
            .observability(registry.clone())
            .admission_max_concurrent(ab.max_concurrent)
            .admission_max_queue(ab.max_queue)
            .admission_timeout_ms(ab.timeout_ms)
            .slot_wait_ms(30_000),
    )
    .unwrap();
    let s = schema![("id", Int), ("grp", Int), ("val", Int)];
    db.create_table(
        "t",
        s.clone(),
        vec![Projection::super_projection("p", &s, &[0], &[0])],
    )
    .unwrap();
    db.copy_into(
        "t",
        (0..rows as i64)
            .map(|i| vec![Value::Int(i), Value::Int(i % 7), Value::Int(i * 37 % 1000)])
            .collect(),
    )
    .unwrap();
    (db, registry)
}

fn main() {
    let rows = knob("EON_BENCH_WLM_ROWS", 20_000);
    let workers = knob("EON_BENCH_WLM_WORKERS", 8);
    let sessions = knob("EON_BENCH_WLM_SESSIONS", 12);
    let latency = s3_latency();
    eprintln!(
        "ablate_wlm: {workers}×{sessions} sessions over {rows} rows, S3 latency {latency:?}, \
         {NODES} nodes / {SHARDS} shards / {SLOTS} slots"
    );

    let plan = Plan::scan(ScanSpec::new("t")).aggregate(vec![], vec![AggSpec::sum(Expr::col(2))]);
    let expect: i64 = (0..rows as i64).map(|i| i * 37 % 1000).sum();

    let mut table_rows = Vec::new();
    let mut config_json = Vec::new();
    let mut by_name: Vec<(&'static str, serde_json::Value)> = Vec::new();

    for ab in CONFIGS {
        eprintln!("config {} …", ab.name);
        let (db, registry) = build_db(ab, rows, latency);
        let outcomes = Arc::new(Outcomes::default());
        let latencies = Arc::new(parking_lot::Mutex::new(Vec::<f64>::new()));

        // The saturation spike: park every session behind held slots
        // so the pool and queue fill before anything drains.
        let spike_guards = if ab.spike {
            Some(
                db.membership()
                    .up_nodes()
                    .iter()
                    .map(|n| n.slots.acquire(n.slots.capacity()).unwrap())
                    .collect::<Vec<_>>(),
            )
        } else {
            None
        };

        let wall = Instant::now();
        let mut handles = Vec::new();
        for w in 0..workers {
            let db = db.clone();
            let plan = plan.clone();
            let outcomes = outcomes.clone();
            let latencies = latencies.clone();
            handles.push(thread::spawn(move || {
                for i in 0..sessions {
                    // Every 8th session carries a token that fires
                    // mid-flight (the cancellation path under load).
                    let cancel = if (w * sessions + i) % 8 == 3 {
                        let t = CancelToken::new();
                        let killer = t.clone();
                        thread::spawn(move || {
                            thread::sleep(Duration::from_millis(1));
                            killer.cancel();
                        });
                        Some(t)
                    } else {
                        None
                    };
                    let opts = SessionOpts { cancel, ..Default::default() };
                    let t0 = Instant::now();
                    let r = db.query_with(&plan, &opts);
                    latencies.lock().push(t0.elapsed().as_secs_f64() * 1e3);
                    match r {
                        Ok(out) => {
                            assert_eq!(out[0][0], Value::Int(expect), "wrong answer under load");
                            outcomes.ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(EonError::Saturated { .. }) => {
                            outcomes.saturated.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(EonError::DeadlineExceeded(what)) if what.contains("admission") => {
                            outcomes.admission_deadline.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(EonError::DeadlineExceeded(_)) => {
                            outcomes.slot_deadline.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(EonError::Cancelled(_)) => {
                            outcomes.cancelled.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("  unexpected session outcome: {e}");
                            outcomes.other.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }));
        }
        if let Some(guards) = spike_guards {
            thread::sleep(Duration::from_millis(50));
            drop(guards);
        }
        for h in handles {
            h.join().unwrap();
        }
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

        // Quiesce gate: nothing hung (we joined), nothing leaked, and
        // every outcome was typed. Fatal before any timing is reported.
        for node in db.membership().up_nodes() {
            assert_eq!(
                node.slots.available(),
                node.slots.capacity(),
                "config {}: node {} leaked execution slots",
                ab.name,
                node.id
            );
        }
        assert_eq!(
            db.admission().pool_depths(0),
            (0, 0),
            "config {}: admission pool did not drain",
            ab.name
        );
        let total = workers * sessions;
        let counted = outcomes.ok.load(Ordering::Relaxed)
            + outcomes.saturated.load(Ordering::Relaxed)
            + outcomes.admission_deadline.load(Ordering::Relaxed)
            + outcomes.slot_deadline.load(Ordering::Relaxed)
            + outcomes.cancelled.load(Ordering::Relaxed)
            + outcomes.other.load(Ordering::Relaxed);
        assert_eq!(counted as usize, total, "config {}: sessions went missing", ab.name);
        assert_eq!(
            outcomes.other.load(Ordering::Relaxed),
            0,
            "config {}: untyped session failures",
            ab.name
        );

        let mut lat = latencies.lock().clone();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
        let summary = metrics_summary(&registry.snapshot());
        let record = serde_json::json!({
            "config": ab.name,
            "sessions": total,
            "ok": outcomes.ok.load(Ordering::Relaxed),
            "saturated": outcomes.saturated.load(Ordering::Relaxed),
            "admission_deadline": outcomes.admission_deadline.load(Ordering::Relaxed),
            "slot_deadline": outcomes.slot_deadline.load(Ordering::Relaxed),
            "cancelled": outcomes.cancelled.load(Ordering::Relaxed),
            "wall_ms": wall_ms,
            "p50_ms": pct(0.50),
            "p99_ms": pct(0.99),
            "max_ms": pct(1.0),
            "metrics_summary": summary,
        });
        print_json("ablate_wlm", record.clone());
        table_rows.push(vec![
            ab.name.to_string(),
            format!("{}", record["ok"]),
            format!("{}", record["saturated"]),
            format!(
                "{}",
                outcomes.admission_deadline.load(Ordering::Relaxed)
                    + outcomes.slot_deadline.load(Ordering::Relaxed)
            ),
            format!("{}", record["cancelled"]),
            format!("{:.1}", pct(0.50)),
            format!("{:.1}", pct(0.99)),
        ]);
        by_name.push((ab.name, record.clone()));
        config_json.push(record);
    }

    print_table(
        &format!("WLM ablation — {workers}×{sessions} sessions, S3 TTFB {latency:?}"),
        &["config", "ok", "saturated", "deadline", "cancelled", "p50 ms", "p99 ms"],
        &table_rows,
    );

    let find = |n: &str| {
        by_name
            .iter()
            .find(|(name, _)| *name == n)
            .map(|(_, v)| v.clone())
            .unwrap()
    };
    let strict = find("strict");
    let admission = find("admission");
    // The strict pool's deadline bounds every queued session: no
    // session may outlive spike + queue deadline + query time by much.
    let strict_bound_ms = 50.0 + 1_000.0 + 10_000.0;
    let acceptance = serde_json::json!({
        "all_sessions_resolved": true, // fatal assert above
        "no_slot_leak": true,          // fatal assert above
        "strict_saturated": strict["saturated"].as_u64().unwrap_or(0) > 0,
        "strict_p99_bounded": strict["p99_ms"].as_f64().unwrap() < strict_bound_ms,
        "admission_counts_match_metrics":
            admission["metrics_summary"]["admission_rejected"] == admission["saturated"]
            && strict["metrics_summary"]["admission_rejected"] == strict["saturated"],
    });
    print_json("ablate_wlm_acceptance", acceptance.clone());
    assert!(
        acceptance["strict_saturated"].as_bool() == Some(true),
        "strict pool never saturated — the spike should guarantee typed rejections"
    );
    assert!(
        acceptance["strict_p99_bounded"].as_bool() == Some(true),
        "strict p99 exceeded the deadline bound"
    );
    assert!(
        acceptance["admission_counts_match_metrics"].as_bool() == Some(true),
        "admission metrics disagree with observed outcomes"
    );

    update_bench_json_default(
        "BENCH_wlm.json",
        "ablate_wlm",
        serde_json::json!({
            "rows": rows,
            "workers": workers,
            "sessions_per_worker": sessions,
            "s3_latency_us": latency.as_micros() as u64,
            "nodes": NODES,
            "shards": SHARDS,
            "exec_slots": SLOTS,
            "configs": config_json,
            "acceptance": acceptance,
        }),
    );
}
