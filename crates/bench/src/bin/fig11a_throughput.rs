//! Figure 11a: "Scale-out performance of Eon through Elastic Throughput
//! Scaling" — queries per minute vs concurrent client threads
//! (10/30/50/70) for Eon clusters of 3/6/9 nodes at a fixed 3 shards,
//! and a 9-node Enterprise cluster.
//!
//! Time is virtual (see `eon_bench::vsim` — this host has one core),
//! but every scheduling decision is real: each simulated query calls
//! the live cluster's §4.1 participant selection, so the session-seeded
//! max-flow spreading is exactly what produces the scale-out. The
//! per-fragment service time models the paper's ~100ms dashboard query.
//!
//! Expected shape: Eon throughput grows near-linearly 3→6→9 nodes
//! (§4.2: a query takes S of N·E slots); Enterprise's fixed layout puts
//! every query on all 9 nodes, so it saturates at the per-node slot
//! limit — the paper notes the 9-node Enterprise cluster "exhibits
//! performance degradation because the additional compute resources are
//! not worth the overhead of assembling them".

use std::collections::HashMap;
use std::sync::Arc;

use eon_bench::vsim::{sim_per_minute, simulate, Fragment, OpSpec};
use eon_bench::{metrics_summary, print_json, print_table};
use eon_core::{EonConfig, EonDb, SessionOpts};
use eon_enterprise::{EnterpriseConfig, EnterpriseDb};
use eon_obs::Registry;
use eon_storage::{S3Config, S3SimFs};
use eon_workload::dashboard;

const SHARDS: usize = 3;
const SLOTS: usize = 4;
/// The paper's dashboard query "usually runs in about 100 milliseconds".
const FRAG_MS: u64 = 100;
const HORIZON_MS: u64 = 60_000;

/// Build one Eon cluster over an instant (zero-latency) simulated S3
/// with its own metrics registry, so each configuration's depot hit
/// ratio and S3 request mix can be dumped separately at the end.
fn eon_cluster(nodes: usize, data: &dashboard::DashboardData, registry: &Registry) -> Arc<EonDb> {
    let s3 = Arc::new(S3SimFs::with_metrics(S3Config::instant(), registry));
    let db = EonDb::create(
        s3,
        EonConfig::new(nodes, SHARDS)
            .exec_slots(SLOTS)
            .observability(registry.clone()),
    )
    .unwrap();
    dashboard::load_eon(&db, data).unwrap();
    db
}

fn eon_qpm(db: &EonDb, clients: usize) -> f64 {
    let caps: HashMap<u64, usize> = db
        .membership()
        .up_ids()
        .iter()
        .map(|n| (n.0, SLOTS))
        .collect();
    let out = simulate(clients, HORIZON_MS, &caps, 1, |_| {}, |_, _, _| {
        // Real participant selection against the live catalog (§4.1).
        let p = db.participation(&SessionOpts::default()).unwrap();
        OpSpec {
            fragments: p
                .workers
                .into_iter()
                .map(|(node, shards, _)| Fragment {
                    node: node.0,
                    slots: shards.len().max(1),
                    ms: FRAG_MS,
                })
                .collect(),
            serial_ms: 0,
        }
    });
    sim_per_minute(out.completed, HORIZON_MS)
}

fn enterprise_qpm(db: &EnterpriseDb, clients: usize) -> f64 {
    let caps: HashMap<u64, usize> = (0..db.nodes().len() as u64).map(|n| (n, SLOTS)).collect();
    let out = simulate(clients, HORIZON_MS, &caps, 1, |_| {}, |_, _, _| {
        // The fixed layout: every query runs on every up node, one slot
        // per segment it serves (§2.2).
        let servers = db.segment_servers().unwrap();
        let mut by_node: HashMap<u64, usize> = HashMap::new();
        for node in servers {
            *by_node.entry(node as u64).or_insert(0) += 1;
        }
        OpSpec {
            fragments: by_node
                .into_iter()
                .map(|(node, slots)| Fragment {
                    node,
                    slots,
                    ms: FRAG_MS,
                })
                .collect(),
            serial_ms: 0,
        }
    });
    sim_per_minute(out.completed, HORIZON_MS)
}

fn main() {
    let data = dashboard::generate(2_000, 0x11a);
    eprintln!("building clusters…");
    let regs: Vec<(&str, Registry)> = ["eon3", "eon6", "eon9"]
        .into_iter()
        .map(|l| (l, Registry::new()))
        .collect();
    let eon3 = eon_cluster(3, &data, &regs[0].1);
    let eon6 = eon_cluster(6, &data, &regs[1].1);
    let eon9 = eon_cluster(9, &data, &regs[2].1);
    let ent9 = EnterpriseDb::create(EnterpriseConfig {
        num_nodes: 9,
        exec_slots: SLOTS,
        wos_threshold: 1_000_000,
        fragment_ms: 0,
    });
    dashboard::load_enterprise(&ent9, &data).unwrap();

    let mut rows = Vec::new();
    for threads in [10usize, 30, 50, 70] {
        eprintln!("concurrency {threads}…");
        let e3 = eon_qpm(&eon3, threads);
        let e6 = eon_qpm(&eon6, threads);
        let e9 = eon_qpm(&eon9, threads);
        let en = enterprise_qpm(&ent9, threads);
        for (label, v) in [("eon3", e3), ("eon6", e6), ("eon9", e9), ("enterprise9", en)] {
            print_json(
                "fig11a",
                serde_json::json!({"config": label, "threads": threads, "qpm": v}),
            );
        }
        rows.push(vec![
            threads.to_string(),
            format!("{e3:.0}"),
            format!("{e6:.0}"),
            format!("{e9:.0}"),
            format!("{en:.0}"),
        ]);
    }
    // The simulated queries above only exercise participant selection;
    // run one real dashboard query per cluster so the depot read path
    // (hits/misses) shows up in the dump alongside the load-time puts.
    for db in [&eon3, &eon6, &eon9] {
        db.query(&dashboard::short_query(0)).unwrap();
        db.query(&dashboard::short_query(0)).unwrap();
    }

    // Per-configuration observability dump: the load and the queries
    // above drove the real depot and S3 paths, so each registry now
    // holds that cluster's request mix.
    for (label, reg) in &regs {
        let snapshot = reg.snapshot();
        print_json(
            "fig11a_metrics",
            serde_json::json!({
                "config": label,
                "summary": metrics_summary(&snapshot),
                "snapshot": snapshot,
            }),
        );
    }

    print_table(
        "Fig 11a — dashboard query throughput (queries/min, virtual-time)",
        &["threads", "eon 3n/3s", "eon 6n/3s", "eon 9n/3s", "enterprise 9n"],
        &rows,
    );
    println!(
        "\nshape check: eon9/eon3 at 70 threads = {:.2}x (paper: near-linear scale-out)",
        rows[3][3].parse::<f64>().unwrap() / rows[3][1].parse::<f64>().unwrap()
    );
}
