//! §6.1's recovery claim: "Worst case recovery performance is
//! proportional to the size of the cache in Eon, whereas Enterprise
//! recovery is proportional to the entire data-set stored on an
//! Enterprise node."
//!
//! Measured by restarting one node at growing data volumes: Eon
//! restart time should grow with the (capped) cache, Enterprise rebuild
//! time with the data.

use std::sync::Arc;

use eon_bench::{print_json, print_table, time_once};
use eon_core::{EonConfig, EonDb};
use eon_enterprise::{EnterpriseConfig, EnterpriseDb};
use eon_storage::MemFs;
use eon_types::{NodeId, Value};

fn rows(n: i64) -> Vec<Vec<Value>> {
    (0..n)
        .map(|i| vec![Value::Int(i), Value::Int(i % 97), Value::Str(format!("v{i}"))])
        .collect()
}

fn schema() -> eon_types::Schema {
    eon_types::schema![("id", Int), ("grp", Int), ("payload", Str)]
}

fn main() {
    // Cap Eon's depot so recovery cost plateaus while data grows.
    const CACHE_BYTES: u64 = 256 << 10;
    let mut table = Vec::new();
    for &n_rows in &[20_000i64, 40_000, 80_000] {
        // --- Eon: kill + restart (catalog catch-up + cache warm) ---
        let eon = EonDb::create(
            Arc::new(MemFs::new()),
            EonConfig::new(3, 3).cache_bytes(CACHE_BYTES),
        )
        .unwrap();
        let s = schema();
        eon.create_table(
            "t",
            s.clone(),
            vec![eon_columnar::Projection::super_projection("p", &s, &[0], &[0])],
        )
        .unwrap();
        eon.copy_into("t", rows(n_rows)).unwrap();
        eon.kill_node(NodeId(1)).unwrap();
        let t_eon = time_once(|| {
            eon.restart_node(NodeId(1)).unwrap();
        });
        let warmed = eon.membership().get(NodeId(1)).unwrap().cache.used_bytes();

        // --- Enterprise: kill + rebuild from buddies ---
        let ent = EnterpriseDb::create(EnterpriseConfig {
            num_nodes: 3,
            exec_slots: 4,
            wos_threshold: 1024,
            fragment_ms: 0,
        });
        ent.create_table(
            "t",
            s.clone(),
            eon_columnar::Projection::super_projection("p", &s, &[0], &[0]),
        )
        .unwrap();
        ent.copy_into("t", rows(n_rows)).unwrap();
        ent.node(1).kill();
        let mut copied = 0;
        let t_ent = time_once(|| {
            copied = ent.recover_node(1).unwrap();
        });

        print_json(
            "recovery",
            serde_json::json!({
                "rows": n_rows,
                "eon_restart_ms": t_eon.as_secs_f64() * 1e3,
                "eon_cache_bytes": warmed,
                "enterprise_rebuild_ms": t_ent.as_secs_f64() * 1e3,
                "enterprise_copied_bytes": copied,
            }),
        );
        table.push(vec![
            n_rows.to_string(),
            format!("{:.1}", t_eon.as_secs_f64() * 1e3),
            format!("{}", warmed / 1024),
            format!("{:.1}", t_ent.as_secs_f64() * 1e3),
            format!("{}", copied / 1024),
        ]);
    }
    print_table(
        "Recovery cost (§6.1) — node restart vs data volume",
        &[
            "rows",
            "eon restart ms",
            "eon warmed KiB (capped)",
            "enterprise rebuild ms",
            "enterprise copied KiB",
        ],
        &table,
    );
    println!("\nEon's moved bytes plateau at the depot cap; Enterprise's grow with the dataset.");
}
