//! Figure 10: "Performance of Eon compared to Enterprise, showing
//! in-cache performance and reading from S3" — TPC-H Q1–Q20 runtime on
//! a 4-node cluster, three configurations:
//!
//! * Enterprise (node-local disks),
//! * Eon with a warm depot (in-cache),
//! * Eon forced to read from (simulated) S3 on every access.
//!
//! Expected shape, per the paper: Eon in-cache matches or beats
//! Enterprise on most queries; Eon-from-S3 is significantly slower but
//! "response times are still reasonable".

use std::sync::Arc;

use eon_bench::{
    metrics_summary, print_json, print_table, scale_factor, time_best_of, update_bench_json,
};
use eon_core::{EonConfig, EonDb, SessionOpts};
use eon_enterprise::{EnterpriseConfig, EnterpriseDb};
use eon_obs::Registry;
use eon_storage::{S3Config, S3SimFs};
use eon_workload::tpch::{load_tpch_enterprise, load_tpch_eon, TpchData};
use eon_workload::{tpch_query, TPCH_QUERY_COUNT};

fn main() {
    let sf = scale_factor();
    eprintln!("generating TPC-H data at SF {sf}…");
    let data = TpchData::generate(sf, 0x7c1);

    eprintln!("loading Enterprise (4 nodes)…");
    let ent = EnterpriseDb::create(EnterpriseConfig {
        num_nodes: 4,
        exec_slots: 8,
        wos_threshold: 1024,
        fragment_ms: 0,
    });
    load_tpch_enterprise(&ent, &data).unwrap();

    eprintln!("loading Eon (4 nodes, 4 shards, simulated S3)…");
    let registry = Registry::new();
    let s3 = Arc::new(S3SimFs::with_metrics(S3Config::default(), &registry));
    let eon = EonDb::create(
        s3,
        EonConfig::new(4, 4)
            .exec_slots(8)
            .observability(registry.clone()),
    )
    .unwrap();
    load_tpch_eon(&eon, &data).unwrap();

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for q in 1..=TPCH_QUERY_COUNT {
        let plan = tpch_query(q);
        let t_ent = time_best_of(2, || {
            ent.query(&plan).unwrap();
        });
        // Warm pass populates depots, then measure in-cache.
        eon.query(&plan).unwrap();
        let t_eon_cache = time_best_of(2, || {
            eon.query(&plan).unwrap();
        });
        let bypass = SessionOpts {
            bypass_cache: true,
            ..Default::default()
        };
        let t_eon_s3 = time_best_of(1, || {
            eon.query_with(&plan, &bypass).unwrap();
        });
        let record = serde_json::json!({
            "query": q,
            "enterprise_ms": t_ent.as_secs_f64() * 1e3,
            "eon_cache_ms": t_eon_cache.as_secs_f64() * 1e3,
            "eon_s3_ms": t_eon_s3.as_secs_f64() * 1e3,
        });
        print_json("fig10", record.clone());
        json_rows.push(record);
        rows.push(vec![
            format!("Q{q}"),
            format!("{:.1}", t_ent.as_secs_f64() * 1e3),
            format!("{:.1}", t_eon_cache.as_secs_f64() * 1e3),
            format!("{:.1}", t_eon_s3.as_secs_f64() * 1e3),
        ]);
        eprintln!("Q{q} done");
    }
    // Whole-run observability dump: the in-cache/from-S3 split above
    // is visible here as depot hits vs bypasses, and the S3 column's
    // cost as GET counts. The Prometheus text goes to stderr so the
    // stdout JSON stream stays machine-parseable.
    let snapshot = registry.snapshot();
    print_json(
        "fig10_metrics",
        serde_json::json!({
            "summary": metrics_summary(&snapshot),
            "snapshot": snapshot,
        }),
    );
    eprintln!("\n-- metrics (prometheus text) --\n{}", registry.prometheus_text());

    // Machine-readable perf baseline: one section per bench bin in
    // BENCH_scan.json so trajectory tooling can diff runs.
    update_bench_json(
        "fig10",
        serde_json::json!({
            "scale_factor": sf,
            "queries": json_rows,
            "metrics_summary": metrics_summary(&snapshot),
        }),
    );

    print_table(
        &format!("Fig 10 — TPC-H (SF {sf}) query runtime, ms"),
        &["query", "enterprise", "eon in-cache", "eon from S3"],
        &rows,
    );

    // Shape summary the paper claims: count of queries where Eon
    // in-cache matches-or-beats Enterprise (within 20%).
    let wins = rows
        .iter()
        .filter(|r| {
            let ent: f64 = r[1].parse().unwrap();
            let eon: f64 = r[2].parse().unwrap();
            eon <= ent * 1.2
        })
        .count();
    println!("\nEon in-cache matches/beats Enterprise (±20%) on {wins}/{TPCH_QUERY_COUNT} queries");
}
