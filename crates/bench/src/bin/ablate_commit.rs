//! Group-commit ablation: serial vs batched catalog-log commits under
//! many small concurrent writers (DESIGN.md "Group commit").
//!
//! Configurations over the same 16-writer single-row COPY workload:
//!
//! * `serial` — `commit_group_window = 0`, one durable log append and
//!   one distribution round-trip per statement (the pre-batch shape),
//! * `window2` — a 2-tick accumulation window,
//! * `window8` — an 8-tick window (the shipping default shape).
//!
//! Every statement pays the simulated per-append fsync cost
//! (`EonConfig::commit_append_us`) on the coordinator *and* on every
//! peer, serialized under the global commit lock — exactly the fixed
//! cost group commit exists to amortize. The batched configurations
//! must:
//!
//! * commit **byte-identical** catalog state to serial under a
//!   sequenced arrival schedule (the determinism gate, asserted before
//!   any timing is reported);
//! * answer the same row count from the free-running throughput phase;
//! * issue **strictly fewer** coordinator log appends than committed
//!   statements (the amortization gate);
//! * beat serial statements/sec (the throughput gate; the recorded
//!   `speedup` should be ≥ 2× at default knobs).
//!
//! Knobs: `EON_BENCH_COMMIT_WRITERS` (default 16),
//! `EON_BENCH_COMMIT_STMTS` (statements per writer, default 12),
//! `EON_BENCH_COMMIT_APPEND_US` (simulated per-append fsync, default
//! 200), `EON_BENCH_COMMIT_MIN_SPEEDUP` (throughput gate, default
//! 1.0), `EON_BENCH_JSON` (output path, default `BENCH_commit.json`).

use std::sync::Arc;

use eon_bench::{print_json, print_table, time_once, update_bench_json_default};
use eon_columnar::Projection;
use eon_core::{EonConfig, EonDb};
use eon_exec::{AggSpec, Plan, ScanSpec};
use eon_obs::Registry;
use eon_storage::{S3Config, S3SimFs};
use eon_types::{schema, Value};

const NODES: usize = 3;
const SHARDS: usize = 3;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

struct Ablation {
    name: &'static str,
    /// Accumulation window in deterministic ticks; `0` = serial.
    window: u64,
}

const CONFIGS: &[Ablation] = &[
    Ablation { name: "serial", window: 0 },
    Ablation { name: "window2", window: 2 },
    Ablation { name: "window8", window: 8 },
];

fn build_db(window: u64, group_max: usize, append_us: u64) -> (Arc<EonDb>, Registry) {
    let registry = Registry::new();
    let s3 = Arc::new(S3SimFs::with_metrics(S3Config::instant(), &registry));
    // The window is enabled *after* bootstrap (via the dynamic knob) so
    // the quiet setup DDL does not wait out accumulation windows alone.
    let db = EonDb::create(
        s3,
        EonConfig::new(NODES, SHARDS)
            .observability(registry.clone())
            .commit_group_max(group_max)
            .commit_append_us(append_us)
            .load_workers(1),
    )
    .unwrap();
    let s = schema![("id", Int), ("val", Int)];
    db.create_table(
        "t",
        s.clone(),
        vec![Projection::super_projection("p", &s, &[0], &[0])],
    )
    .unwrap();
    db.set_commit_group_window(window);
    (db, registry)
}

/// Committed write-path state, keys included: the batched path must
/// reproduce the serial path byte for byte under sequenced arrivals.
fn catalog_fingerprint(db: &EonDb) -> Vec<String> {
    let snap = db.snapshot().unwrap();
    let mut out: Vec<String> = snap
        .containers
        .values()
        .map(|c| {
            format!(
                "c:{}:{}:{}:{}:{}",
                c.oid.0, c.key, c.shard, c.rows, c.size_bytes
            )
        })
        .collect();
    out.sort();
    out.push(format!("v:{}", db.version().0));
    out
}

fn counter(registry: &Registry, name: &str) -> u64 {
    registry
        .snapshot()
        .get(&format!("{name}{{subsystem=\"commit\"}}"))
        .and_then(|v| v.as_u64())
        .unwrap_or(0)
}

/// Determinism gate: the same sequenced single-row COPYs through the
/// serial path and through one full batch must commit identical state.
fn fingerprint_gate(writers: usize) -> bool {
    let (serial, _) = build_db(0, writers, 0);
    for i in 0..writers {
        serial
            .copy_into("t", vec![vec![Value::Int(i as i64), Value::Int(7)]])
            .unwrap();
    }
    let (grouped, _) = build_db(500_000, writers, 0);
    std::thread::scope(|scope| {
        for i in 0..writers {
            let db = grouped.clone();
            scope.spawn(move || {
                while db.commit_group_queued() < i {
                    std::thread::yield_now();
                }
                db.copy_into("t", vec![vec![Value::Int(i as i64), Value::Int(7)]])
                    .unwrap();
            });
        }
    });
    let (sfp, gfp) = (catalog_fingerprint(&serial), catalog_fingerprint(&grouped));
    assert_eq!(sfp, gfp, "grouped commit changed committed catalog state");
    true
}

fn main() {
    let writers = env_u64("EON_BENCH_COMMIT_WRITERS", 16) as usize;
    let per = env_u64("EON_BENCH_COMMIT_STMTS", 12) as usize;
    let append_us = env_u64("EON_BENCH_COMMIT_APPEND_US", 200);
    let min_speedup = env_f64("EON_BENCH_COMMIT_MIN_SPEEDUP", 1.0);
    eprintln!(
        "ablate_commit: {writers} writers × {per} single-row COPYs, \
         append cost {append_us}µs/node, {NODES} nodes / {SHARDS} shards"
    );

    let state_identical = fingerprint_gate(writers.min(8));

    let count_plan =
        Plan::scan(ScanSpec::new("t")).aggregate(vec![], vec![AggSpec::count_star()]);
    let mut table_rows = Vec::new();
    let mut config_json = Vec::new();
    let mut by_name: Vec<(&'static str, serde_json::Value)> = Vec::new();

    for ab in CONFIGS {
        eprintln!("config {} …", ab.name);
        let (db, registry) = build_db(ab.window, 16, append_us);
        let (appends0, stmts0, waits0) = (
            counter(&registry, "commit_appends_total"),
            counter(&registry, "commit_statements_total"),
            counter(&registry, "commit_group_waits_total"),
        );

        // Free-running writers: each commits `per` single-row COPYs as
        // fast as the commit protocol admits them.
        let elapsed = time_once(|| {
            std::thread::scope(|scope| {
                for w in 0..writers {
                    let db = db.clone();
                    scope.spawn(move || {
                        for k in 0..per {
                            let id = (w * per + k) as i64;
                            db.copy_into("t", vec![vec![Value::Int(id), Value::Int(1)]])
                                .unwrap();
                        }
                    });
                }
            });
        });

        let statements = counter(&registry, "commit_statements_total") - stmts0;
        let appends = counter(&registry, "commit_appends_total") - appends0;
        let waits = counter(&registry, "commit_group_waits_total") - waits0;
        assert_eq!(statements as usize, writers * per, "lost statements");
        let rows = db.query(&count_plan).unwrap()[0][0].as_int().unwrap();
        assert_eq!(rows as usize, writers * per, "config {}: lost rows", ab.name);
        if ab.window > 0 {
            assert!(
                appends < statements,
                "config {}: {appends} appends for {statements} statements — nothing amortized",
                ab.name
            );
        }

        let stmts_per_sec = statements as f64 / elapsed.as_secs_f64();
        let record = serde_json::json!({
            "config": ab.name,
            "window_ticks": ab.window,
            "elapsed_ms": elapsed.as_secs_f64() * 1e3,
            "stmts_per_sec": stmts_per_sec,
            "statements": statements,
            "log_appends": appends,
            "group_waits": waits,
        });
        print_json("ablate_commit", record.clone());
        table_rows.push(vec![
            ab.name.to_string(),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
            format!("{stmts_per_sec:.0}"),
            appends.to_string(),
            statements.to_string(),
        ]);
        by_name.push((ab.name, record.clone()));
        config_json.push(record);
    }

    print_table(
        &format!("Group-commit ablation — {writers} writers × {per} COPYs"),
        &["config", "elapsed ms", "stmts/s", "log appends", "statements"],
        &table_rows,
    );

    let find = |n: &str| {
        by_name
            .iter()
            .find(|(name, _)| *name == n)
            .map(|(_, v)| v.clone())
            .unwrap()
    };
    let serial = find("serial");
    let batched = find("window8");
    let speedup = batched["stmts_per_sec"].as_f64().unwrap()
        / serial["stmts_per_sec"].as_f64().unwrap();
    let acceptance = serde_json::json!({
        "batched_faster": speedup >= min_speedup,
        "speedup": speedup,
        "speedup_2x": speedup >= 2.0,
        "fewer_appends_than_statements":
            batched["log_appends"].as_u64() < batched["statements"].as_u64(),
        "state_identical": state_identical, // asserted above, fatal on mismatch
    });
    print_json("ablate_commit_acceptance", acceptance.clone());
    assert!(
        acceptance["batched_faster"].as_bool() == Some(true),
        "batched commit did not reach {min_speedup}× serial throughput ({speedup:.2}×)"
    );
    assert!(
        acceptance["fewer_appends_than_statements"].as_bool() == Some(true),
        "batched commit did not amortize log appends"
    );

    update_bench_json_default(
        "BENCH_commit.json",
        "ablate_commit",
        serde_json::json!({
            "writers": writers,
            "stmts_per_writer": per,
            "append_cost_us": append_us,
            "nodes": NODES,
            "shards": SHARDS,
            "configs": config_json,
            "acceptance": acceptance,
        }),
    );
}
