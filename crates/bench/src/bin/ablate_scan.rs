//! Scan-pipeline ablation: toggle each optimisation in the pipelined
//! parallel scan path and measure what it buys, so the win is measured
//! rather than asserted.
//!
//! Seven configurations over the same deterministic table and query:
//!
//! * `serial` — one scan worker, no single-flight, no coalescing, no
//!   late materialization (the pre-pipeline shape),
//! * `parallel` — adds the intra-node scan pool (workers = exec slots),
//! * `singleflight` — serial plus single-flight depot fills,
//! * `coalesce` — serial plus coalesced ranged reads,
//! * `full` — everything on (the shipping default),
//! * `decode_first` — `full` with compression-aware execution forced
//!   off: every block decodes to rows before predicates run,
//! * `encoded_exec` — `full` with encoded views on (the default), named
//!   so the A/B against `decode_first` reads directly off the table.
//!
//! Per configuration we time a depot-cold query, a warm query, and a
//! cache-bypass query (every block read is a simulated-S3 ranged GET, so
//! coalescing and the scan pool show up directly in GET counts and
//! wall-clock). The `decode_first`/`encoded_exec` pair is additionally
//! timed on an encoded-heavy query — a predicate on a long-run string
//! column feeding a group-by on a low-cardinality one, where RLE runs
//! and dictionary codes do the work — so the bypass-mode win of
//! evaluating once per run/dictionary entry is measured, not asserted.
//! A final phase clears the depots and fires the same query from many
//! threads at once: with single-flight on, concurrent misses on one key
//! must produce exactly one backing GET and a nonzero
//! `depot_singleflight_waits_total`.
//!
//! Knobs: `EON_BENCH_SCAN_ROWS` (default 60000), `EON_BENCH_S3_LAT_US`
//! (default 2000), `EON_BENCH_JSON` (output path, default
//! `BENCH_scan.json`).

use std::sync::{Arc, Barrier};
use std::time::Duration;

use eon_bench::{metrics_summary, print_json, print_table, time_best_of, update_bench_json};
use eon_core::{EonConfig, EonDb, SessionOpts};
use eon_exec::{AggSpec, Expr, Plan, ScanSpec, SortKey};
use eon_columnar::pruning::CmpOp;
use eon_columnar::{Predicate, Projection};
use eon_obs::Registry;
use eon_storage::{S3Config, S3SimFs};
use eon_types::{schema, Value};

const NODES: usize = 4;
const SHARDS: usize = 4;
const SLOTS: usize = 8;
const CONCURRENT_THREADS: usize = 6;

fn scan_rows() -> usize {
    std::env::var("EON_BENCH_SCAN_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000)
}

fn s3_latency() -> Duration {
    let us = std::env::var("EON_BENCH_S3_LAT_US")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    Duration::from_micros(us)
}

struct Ablation {
    name: &'static str,
    workers: usize, // 0 = auto (exec-slot budget)
    single_flight: bool,
    coalesce: Option<u64>,
    late_materialization: bool,
    decode_first: bool,
}

const CONFIGS: &[Ablation] = &[
    Ablation { name: "serial", workers: 1, single_flight: false, coalesce: None, late_materialization: false, decode_first: true },
    Ablation { name: "parallel", workers: 0, single_flight: false, coalesce: None, late_materialization: false, decode_first: true },
    Ablation { name: "singleflight", workers: 1, single_flight: true, coalesce: None, late_materialization: false, decode_first: true },
    Ablation { name: "coalesce", workers: 1, single_flight: false, coalesce: Some(64 * 1024), late_materialization: false, decode_first: true },
    Ablation { name: "full", workers: 0, single_flight: true, coalesce: Some(64 * 1024), late_materialization: true, decode_first: false },
    Ablation { name: "decode_first", workers: 0, single_flight: true, coalesce: Some(64 * 1024), late_materialization: true, decode_first: true },
    Ablation { name: "encoded_exec", workers: 0, single_flight: true, coalesce: Some(64 * 1024), late_materialization: true, decode_first: false },
];

/// Build a fresh Eon cluster over simulated S3 with the given ablation
/// toggles and load the benchmark table.
fn build_db(ab: &Ablation, rows: usize, latency: Duration) -> (Arc<EonDb>, Registry) {
    let registry = Registry::new();
    let s3 = Arc::new(S3SimFs::with_metrics(
        S3Config {
            request_latency: latency,
            ..S3Config::default()
        },
        &registry,
    ));
    let db = EonDb::create(
        s3,
        EonConfig::new(NODES, SHARDS)
            .exec_slots(SLOTS)
            .observability(registry.clone())
            .scan_workers(if ab.workers == 0 { 0 } else { ab.workers })
            .scan_coalesce_gap(ab.coalesce)
            .scan_late_materialization(ab.late_materialization)
            .scan_decode_first(ab.decode_first)
            .depot_single_flight(ab.single_flight),
    )
    .unwrap();
    // Columns 3 and 4 are the compression-aware-execution targets: `cat`
    // changes value a handful of times across the whole table (long RLE
    // runs), `tag` cycles a seven-word vocabulary (dictionary codes).
    let s = schema![
        ("id", Int),
        ("grp", Int),
        ("val", Int),
        ("cat", Str),
        ("tag", Str)
    ];
    db.create_table(
        "scan_t",
        s.clone(),
        vec![Projection::super_projection("sp", &s, &[0], &[0])],
    )
    .unwrap();
    // Two COPY batches so each shard holds two multi-block containers:
    // enough blocks per column for footer pruning and run coalescing to
    // have something to chew on, enough containers for the scan pool to
    // fan out.
    const TAGS: [&str; 7] = ["ads", "api", "batch", "etl", "ml", "ui", "web"];
    let half = rows / 2;
    for batch in 0..2 {
        let data: Vec<Vec<Value>> = (batch * half..(batch + 1) * half)
            .map(|i| {
                let cat = format!("c{}", i * 6 / rows.max(1));
                let tag = TAGS[i % TAGS.len()];
                let i = i as i64;
                vec![
                    Value::Int(i),
                    Value::Int(i % 8),
                    Value::Int(i * 37 % 1000),
                    Value::Str(cat),
                    Value::Str(tag.to_string()),
                ]
            })
            .collect();
        db.copy_into("scan_t", data).unwrap();
    }
    (db, registry)
}

/// The benchmark query: a selective window on the sort column (so block
/// stats prune) feeding a grouped aggregate over the other columns.
fn bench_plan(rows: usize) -> Plan {
    let lo = (rows / 4) as i64;
    let hi = (3 * rows / 4) as i64;
    Plan::scan(
        ScanSpec::new("scan_t").predicate(Predicate::and(vec![
            Predicate::cmp(0, CmpOp::Ge, lo),
            Predicate::cmp(0, CmpOp::Lt, hi),
        ])),
    )
    .aggregate(
        vec![1],
        vec![AggSpec::sum(Expr::col(2)), AggSpec::count_star()],
    )
    .sort(vec![SortKey::asc(0)])
}

/// The encoded-heavy query: a predicate on the long-run `cat` column
/// (one test per RLE run instead of per row) feeding a group-by on the
/// dictionary-coded `tag` column. This is where compression-aware
/// execution earns its keep; the int window in [`bench_plan`] mostly
/// measures the rest of the pipeline.
fn encoded_plan() -> Plan {
    Plan::scan(ScanSpec::new("scan_t").predicate(Predicate::Or(vec![
        Predicate::cmp(3, CmpOp::Eq, "c1"),
        Predicate::cmp(3, CmpOp::Eq, "c4"),
    ])))
    .aggregate(
        vec![4],
        vec![AggSpec::sum(Expr::col(2)), AggSpec::count_star()],
    )
    .sort(vec![SortKey::asc(0)])
}

fn clear_depots(db: &EonDb) {
    for node in db.membership().all() {
        node.cache.clear().unwrap();
    }
}

fn s3_gets(registry: &Registry) -> u64 {
    metrics_summary(&registry.snapshot())["s3_get"]
        .as_u64()
        .unwrap_or(0)
}

fn singleflight_waits(registry: &Registry) -> u64 {
    metrics_summary(&registry.snapshot())["depot_singleflight_waits"]
        .as_u64()
        .unwrap_or(0)
}

fn main() {
    let rows = scan_rows();
    let latency = s3_latency();
    let plan = bench_plan(rows);
    eprintln!(
        "ablate_scan: {rows} rows, S3 latency {:?}, {NODES} nodes / {SHARDS} shards",
        latency
    );

    let mut table_rows = Vec::new();
    let mut config_json = Vec::new();
    let mut reference: Option<Vec<Vec<Value>>> = None;
    let mut by_name: Vec<(&'static str, serde_json::Value)> = Vec::new();
    let mut dbs: Vec<(&'static str, Arc<EonDb>, Registry, u64)> = Vec::new();

    for ab in CONFIGS {
        eprintln!("config {} …", ab.name);
        let (db, registry) = build_db(ab, rows, latency);

        // Every ablation must produce identical query results.
        let result = db.query(&plan).unwrap();
        match &reference {
            None => reference = Some(result),
            Some(r) => assert_eq!(r, &result, "config {} changed query output", ab.name),
        }

        // Depot-cold wall clock (whole-file depot fills from S3). Two
        // trials, best-of, clearing the depots before each.
        let mut cold = Duration::MAX;
        let mut cold_gets = 0;
        for _ in 0..2 {
            clear_depots(&db);
            let g0 = s3_gets(&registry);
            let t = eon_bench::time_once(|| {
                db.query(&plan).unwrap();
            });
            cold_gets = s3_gets(&registry) - g0;
            cold = cold.min(t);
        }

        // Warm: everything in depot, no S3 traffic on the read path.
        let warm = time_best_of(2, || {
            db.query(&plan).unwrap();
        });

        // Bypass: every surviving block is a ranged S3 GET, so the scan
        // pool and read coalescing show up in both time and GET count.
        let bypass_opts = SessionOpts {
            bypass_cache: true,
            ..Default::default()
        };
        let g0 = s3_gets(&registry);
        let bypass = time_best_of(2, || {
            db.query_with(&plan, &bypass_opts).unwrap();
        });
        let bypass_gets = (s3_gets(&registry) - g0) / 2; // two timed runs

        let summary = metrics_summary(&registry.snapshot());
        let record = serde_json::json!({
            "config": ab.name,
            "cold_ms": cold.as_secs_f64() * 1e3,
            "warm_ms": warm.as_secs_f64() * 1e3,
            "bypass_ms": bypass.as_secs_f64() * 1e3,
            "cold_s3_gets": cold_gets,
            "bypass_s3_gets": bypass_gets,
            "metrics_summary": summary,
        });
        print_json("ablate_scan", record.clone());
        table_rows.push(vec![
            ab.name.to_string(),
            format!("{:.1}", cold.as_secs_f64() * 1e3),
            format!("{:.1}", warm.as_secs_f64() * 1e3),
            format!("{:.1}", bypass.as_secs_f64() * 1e3),
            format!("{bypass_gets}"),
            record["metrics_summary"]["scan_requests_saved"].to_string(),
        ]);
        by_name.push((ab.name, record.clone()));
        config_json.push(record);
        dbs.push((ab.name, db, registry, cold_gets));
    }

    // Encoded-heavy A/B: the same RLE/dict-targeted query on the
    // decode-first and encoded-exec databases. Warm runs isolate the
    // CPU cost of decoding (no S3 on the read path); bypass runs show
    // the win still holds when every block is a ranged GET. Both sides
    // must return identical rows — the speedup may not buy a single
    // changed answer.
    let eplan = encoded_plan();
    let mut encoded_json = Vec::new();
    let mut encoded_ref: Option<Vec<Vec<Value>>> = None;
    for (name, db, registry, _) in dbs
        .iter()
        .filter(|(n, ..)| *n == "decode_first" || *n == "encoded_exec")
    {
        eprintln!("encoded phase: {name}");
        let result = db.query(&eplan).unwrap();
        match &encoded_ref {
            None => encoded_ref = Some(result),
            Some(r) => assert_eq!(r, &result, "encoded plan answers diverged on {name}"),
        }
        let warm = time_best_of(3, || {
            db.query(&eplan).unwrap();
        });
        let bypass_opts = SessionOpts {
            bypass_cache: true,
            ..Default::default()
        };
        let bypass = time_best_of(2, || {
            db.query_with(&eplan, &bypass_opts).unwrap();
        });
        let summary = metrics_summary(&registry.snapshot());
        let record = serde_json::json!({
            "config": *name,
            "warm_ms": warm.as_secs_f64() * 1e3,
            "bypass_ms": bypass.as_secs_f64() * 1e3,
            "encoded_blocks": summary["scan_encoded_blocks"],
            "rows_short_circuited": summary["scan_rows_short_circuited"],
        });
        print_json("ablate_scan_encoded", record.clone());
        encoded_json.push(record);
    }

    // Concurrent-miss phases. Single-flight dedups within one node's
    // depot, so the sharp acceptance check targets one depot directly:
    // many threads miss on the same key at once and shared storage must
    // see exactly one GET, with the losers counted as waits. The
    // query-level phase then shows the same effect end-to-end —
    // participation may rotate shards across nodes between queries
    // (separate depots each fill once, legitimately), so there the
    // comparison is single-flight on vs off, not an exact GET count.
    let mut singleflight_json = Vec::new();
    for (name, db, registry, cold_gets) in dbs
        .iter()
        .filter(|(n, ..)| *n == "full" || *n == "parallel")
    {
        eprintln!("concurrent phase: {name}");
        clear_depots(db);
        let key = db
            .snapshot()
            .unwrap()
            .containers
            .values()
            .next()
            .unwrap()
            .key
            .clone();
        let node = db.membership().all().into_iter().next().unwrap();
        let g0 = s3_gets(registry);
        let w0 = singleflight_waits(registry);
        let barrier = Barrier::new(CONCURRENT_THREADS);
        std::thread::scope(|scope| {
            for _ in 0..CONCURRENT_THREADS {
                scope.spawn(|| {
                    barrier.wait();
                    eon_storage::FileSystem::read(&*node.cache, &key).unwrap();
                });
            }
        });
        let depot_gets = s3_gets(registry) - g0;
        let depot_waits = singleflight_waits(registry) - w0;

        clear_depots(db);
        let g0 = s3_gets(registry);
        let w0 = singleflight_waits(registry);
        let barrier = Barrier::new(CONCURRENT_THREADS);
        std::thread::scope(|scope| {
            for _ in 0..CONCURRENT_THREADS {
                scope.spawn(|| {
                    barrier.wait();
                    db.query(&plan).unwrap();
                });
            }
        });
        let query_gets = s3_gets(registry) - g0;
        let query_waits = singleflight_waits(registry) - w0;
        let record = serde_json::json!({
            "config": name,
            "threads": CONCURRENT_THREADS,
            "same_key_s3_gets": depot_gets,
            "same_key_waits": depot_waits,
            "cold_s3_gets": cold_gets,
            "concurrent_query_s3_gets": query_gets,
            "concurrent_query_waits": query_waits,
        });
        print_json("ablate_scan_singleflight", record.clone());
        singleflight_json.push(record);
    }

    print_table(
        &format!("Scan ablation — {rows} rows, S3 TTFB {:?}", latency),
        &["config", "cold ms", "warm ms", "bypass ms", "bypass GETs", "reqs saved"],
        &table_rows,
    );

    let find = |n: &str| {
        by_name
            .iter()
            .find(|(name, _)| *name == n)
            .map(|(_, v)| v.clone())
            .unwrap()
    };
    let serial = find("serial");
    let parallel = find("parallel");
    let coalesce = find("coalesce");
    let sf_find = |n: &str| {
        singleflight_json
            .iter()
            .find(|r| r["config"].as_str() == Some(n))
            .cloned()
            .unwrap_or_default()
    };
    let sf_full = sf_find("full");
    let sf_off = sf_find("parallel");
    let enc_find = |n: &str| {
        encoded_json
            .iter()
            .find(|r| r["config"].as_str() == Some(n))
            .cloned()
            .unwrap_or_default()
    };
    let enc = enc_find("encoded_exec");
    let dec = enc_find("decode_first");
    let acceptance = serde_json::json!({
        "parallel_faster_bypass": parallel["bypass_ms"].as_f64() < serial["bypass_ms"].as_f64(),
        "parallel_faster_cold": parallel["cold_ms"].as_f64() < serial["cold_ms"].as_f64(),
        "coalesce_fewer_gets": coalesce["bypass_s3_gets"].as_u64() < serial["bypass_s3_gets"].as_u64(),
        "singleflight_waits_positive": sf_full["same_key_waits"].as_u64().unwrap_or(0) > 0,
        "singleflight_no_duplicate_fetches": sf_full["same_key_s3_gets"].as_u64() == Some(1),
        "singleflight_reduces_concurrent_gets":
            sf_full["concurrent_query_s3_gets"].as_u64() < sf_off["concurrent_query_s3_gets"].as_u64(),
        "encoded_faster_warm": enc["warm_ms"].as_f64() < dec["warm_ms"].as_f64(),
        "encoded_faster_bypass": enc["bypass_ms"].as_f64() < dec["bypass_ms"].as_f64(),
        "encoded_short_circuits_rows": enc["rows_short_circuited"].as_u64().unwrap_or(0) > 0,
        "decode_first_no_encoded_blocks": dec["encoded_blocks"].as_u64() == Some(0),
    });
    print_json("ablate_scan_acceptance", acceptance.clone());

    update_bench_json(
        "ablate_scan",
        serde_json::json!({
            "rows": rows,
            "s3_latency_us": latency.as_micros() as u64,
            "nodes": NODES,
            "shards": SHARDS,
            "configs": config_json,
            "encoded": encoded_json,
            "singleflight": singleflight_json,
            "acceptance": acceptance,
        }),
    );
}
