//! Crash-schedule chaos sweep (DESIGN.md "Fault model").
//!
//! Phase 1 arms every named fault site in turn (`FaultPlan::at(site,
//! 0)`) and runs the crash schedule — each site must crash, recover,
//! and leave the database answering exactly. Phase 2 sweeps seeded
//! fault plans (`--seeds N`, default 32) in both plain and
//! ambiguous-PUT S3 modes. Prints a one-line JSON verdict and exits
//! non-zero if any run violated an invariant.
//!
//!     cargo run --release --bin chaos_sweep -- --seeds 32

use eon_bench::chaos::{crash_schedule, seeded_crash_schedule};
use eon_bench::{metrics_summary, print_json};
use eon_storage::fault::{FaultPlan, SITES};

fn main() {
    let mut seeds: u64 = 32;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                seeds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seeds takes a number");
            }
            other => panic!("unknown argument {other} (usage: chaos_sweep [--seeds N])"),
        }
    }

    let mut runs = 0usize;
    let mut passed = 0usize;
    let mut crashes = 0usize;
    let mut reclaimed = 0usize;
    let mut failures: Vec<serde_json::Value> = Vec::new();
    // Deterministic metrics snapshot of the first passing run — same
    // seed, same snapshot, byte for byte (see tests/crash_chaos.rs).
    let mut metrics_sample: Option<String> = None;

    // Phase 1: every named site, deterministically.
    for site in SITES {
        runs += 1;
        match crash_schedule(FaultPlan::at(site, 0), 0xc4a05, false) {
            Ok(r) => {
                passed += 1;
                crashes += r.crashes;
                reclaimed += r.reclaimed;
                metrics_sample.get_or_insert(r.metrics);
                if !r.fired.iter().any(|s| s == site) {
                    // The schedule is supposed to reach every site.
                    passed -= 1;
                    failures.push(serde_json::json!({
                        "mode": "site", "site": site, "error": "site never fired",
                    }));
                }
            }
            Err(e) => failures.push(serde_json::json!({
                "mode": "site", "site": site, "error": e,
            })),
        }
    }

    // Phase 2: seeded plans, plain and ambiguous S3.
    for seed in 0..seeds {
        for ambiguous in [false, true] {
            runs += 1;
            match seeded_crash_schedule(seed, ambiguous) {
                Ok(r) => {
                    passed += 1;
                    crashes += r.crashes;
                    reclaimed += r.reclaimed;
                }
                Err(e) => failures.push(serde_json::json!({
                    "mode": if ambiguous { "seeded+ambiguous" } else { "seeded" },
                    "seed": seed,
                    "error": e,
                })),
            }
        }
    }

    if let Some(text) = &metrics_sample {
        let snapshot: serde_json::Value =
            serde_json::from_str(text).expect("snapshot is valid JSON");
        print_json(
            "chaos_metrics",
            serde_json::json!({
                "summary": metrics_summary(&snapshot),
                "snapshot": snapshot,
            }),
        );
    }

    let failed = runs - passed;
    println!(
        "{}",
        serde_json::json!({
            "bench": "chaos_sweep",
            "sites": SITES.len(),
            "seeds": seeds,
            "runs": runs,
            "passed": passed,
            "failed": failed,
            "crashes_injected": crashes,
            "orphans_reclaimed": reclaimed,
            "failures": failures,
        })
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
