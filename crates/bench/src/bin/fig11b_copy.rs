//! Figure 11b: "Throughput of COPY of data file on S3" — concurrent
//! small bulk loads per minute vs client threads (10/30/50) for Eon
//! clusters of 3/6/9 nodes at 3 shards.
//!
//! Virtual-time simulation (one-core host; see `eon_bench::vsim`) over
//! the *real* writer assignment: each simulated COPY asks the live
//! cluster which node writes each shard (§4.5), occupies one slot per
//! written shard on those writers for the encode+upload service time,
//! then passes through the global commit critical section.
//!
//! Expected shape: load throughput grows with node count — writers
//! spread over more machines — with sub-linear gains as the shared
//! commit point starts to matter, matching the paper's 3→6→9 curves.
//!
//! A second, real-execution phase runs actual COPY batches through the
//! parallel write pipeline (serial vs full-width write pool) over
//! simulated S3 with per-request latency, and records the measured
//! throughput into `BENCH_copy.json` alongside the virtual-time curves
//! (`EON_BENCH_JSON` overrides the path).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use eon_bench::vsim::{sim_per_minute, simulate, Fragment, OpSpec};
use eon_bench::{print_json, print_table, time_once, update_bench_json_default};
use eon_core::{EonConfig, EonDb};
use eon_obs::Registry;
use eon_storage::{MemFs, S3Config, S3SimFs};
use eon_workload::copyload;

const SHARDS: usize = 3;
const SLOTS: usize = 4;
/// Per-shard encode + S3 upload service time for one small COPY (the
/// paper's 50MB file, scaled).
const WRITE_MS: u64 = 120;
/// Commit critical section (metadata distribution + validation).
const COMMIT_MS: u64 = 8;
const HORIZON_MS: u64 = 60_000;

fn cluster(nodes: usize) -> Arc<EonDb> {
    let db = EonDb::create(
        Arc::new(MemFs::new()),
        EonConfig::new(nodes, SHARDS).exec_slots(SLOTS),
    )
    .unwrap();
    copyload::create_telemetry_table(&db).unwrap();
    // A little real data so writer assignment runs against a realistic
    // catalog.
    db.copy_into("telemetry", copyload::batch(300, 7, 0)).unwrap();
    db
}

fn copies_per_min(db: &EonDb, clients: usize) -> f64 {
    let caps: HashMap<u64, usize> = db
        .membership()
        .up_ids()
        .iter()
        .map(|n| (n.0, SLOTS))
        .collect();
    let out = simulate(clients, HORIZON_MS, &caps, 1, |_| {}, |_, _, _| {
        // Real §4.5 writer assignment against the live catalog.
        let snapshot = db.snapshot().unwrap();
        let assignment = db.writer_assignment(&snapshot).unwrap();
        let mut by_node: HashMap<u64, usize> = HashMap::new();
        for (_, node) in assignment {
            *by_node.entry(node.0).or_insert(0) += 1;
        }
        OpSpec {
            fragments: by_node
                .into_iter()
                .map(|(node, shards)| Fragment {
                    node,
                    slots: shards,
                    ms: WRITE_MS,
                })
                .collect(),
            serial_ms: COMMIT_MS,
        }
    });
    sim_per_minute(out.completed, HORIZON_MS)
}

/// Real-execution COPY throughput: actual `copy_into` batches through
/// the write pipeline over latency-bearing simulated S3, serial write
/// pool vs full width. This is the measured counterpart of the
/// virtual-time curves above and the source of `BENCH_copy.json`'s
/// `fig11b_real` section.
fn real_copy_phase() -> serde_json::Value {
    const NODES: usize = 6;
    const REAL_SHARDS: usize = 6;
    const BATCHES: usize = 4;
    let rows: usize = std::env::var("EON_BENCH_LOAD_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let latency = Duration::from_micros(
        std::env::var("EON_BENCH_S3_LAT_US")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(2_000),
    );

    let mut out = std::collections::BTreeMap::new();
    for (name, workers) in [("serial", 1usize), ("parallel", 0)] {
        let registry = Registry::new();
        let s3 = Arc::new(S3SimFs::with_metrics(
            S3Config { request_latency: latency, ..S3Config::default() },
            &registry,
        ));
        let db = EonDb::create(
            s3,
            EonConfig::new(NODES, REAL_SHARDS)
                .exec_slots(SLOTS)
                .observability(registry)
                .load_workers(workers),
        )
        .unwrap();
        copyload::create_telemetry_table(&db).unwrap();
        let total = time_once(|| {
            for b in 0..BATCHES {
                db.copy_into("telemetry", copyload::batch(rows, 7, b as u64))
                    .unwrap();
            }
        });
        let per_min = BATCHES as f64 * 60.0 / total.as_secs_f64();
        print_json(
            "fig11b_real",
            serde_json::json!({
                "config": name, "batches": BATCHES, "rows_per_batch": rows,
                "total_ms": total.as_secs_f64() * 1e3, "copies_per_min": per_min,
            }),
        );
        out.insert(
            name.to_string(),
            serde_json::json!({
                "total_ms": total.as_secs_f64() * 1e3,
                "copies_per_min": per_min,
            }),
        );
    }
    let speedup = out["serial"]["total_ms"].as_f64().unwrap()
        / out["parallel"]["total_ms"].as_f64().unwrap();
    out.insert("parallel_speedup".into(), serde_json::json!(speedup));
    out.insert("rows_per_batch".into(), serde_json::json!(rows));
    out.insert("s3_latency_us".into(), serde_json::json!(latency.as_micros() as u64));
    println!("\nreal COPY phase: parallel/serial speedup = {speedup:.2}x");
    serde_json::Value::Object(out)
}

fn main() {
    eprintln!("building clusters…");
    let clusters = [(3usize, cluster(3)), (6, cluster(6)), (9, cluster(9))];

    let mut rows = Vec::new();
    for threads in [10usize, 30, 50] {
        eprintln!("concurrency {threads}…");
        let mut cells = vec![threads.to_string()];
        for (n, db) in &clusters {
            let v = copies_per_min(db, threads);
            print_json(
                "fig11b",
                serde_json::json!({"nodes": n, "threads": threads, "copies_per_min": v}),
            );
            cells.push(format!("{v:.0}"));
        }
        rows.push(cells);
    }
    print_table(
        "Fig 11b — COPY throughput (batches/min, virtual-time)",
        &["threads", "eon 3n/3s", "eon 6n/3s", "eon 9n/3s"],
        &rows,
    );
    println!(
        "\nshape check: eon9/eon3 at 50 threads = {:.2}x (paper: grows with nodes, sub-linear)",
        rows[2][3].parse::<f64>().unwrap() / rows[2][1].parse::<f64>().unwrap()
    );

    eprintln!("real COPY phase…");
    let real = real_copy_phase();
    update_bench_json_default(
        "BENCH_copy.json",
        "fig11b_real",
        serde_json::json!({
            "vsim_table": rows,
            "real": real,
        }),
    );
}
