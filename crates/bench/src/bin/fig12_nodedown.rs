//! Figure 12: "Throughput, Eon Mode, 4 nodes, kill 1 node" — a query
//! stream's throughput over a timeline; one node is killed mid-run.
//!
//! Virtual-time simulation (one-core host; see `eon_bench::vsim`) over
//! the *real* cluster: the kill happens to the live membership at the
//! marked interval, and every subsequent query's participant selection
//! (§4.1) sees the real post-failure subscription state. The Enterprise
//! series uses the real buddy failover (§2.2).
//!
//! Expected shape: Eon (4 nodes, 3 shards) degrades smoothly — the
//! remaining three nodes still cover all shards one-to-one. Enterprise
//! (4 nodes = 4 segments) cliffs: the buddy serves two segments, every
//! query needs two slots on it, and the whole cluster queues behind
//! that node.

use std::collections::HashMap;
use std::sync::Arc;

use eon_bench::vsim::{sim_per_minute, simulate, Fragment, OpSpec};
use eon_bench::{print_json, print_table};
use eon_core::{EonConfig, EonDb, SessionOpts};
use eon_enterprise::{EnterpriseConfig, EnterpriseDb};
use eon_storage::MemFs;
use eon_workload::dashboard;

const SLOTS: usize = 4;
const FRAG_MS: u64 = 100;
const CLIENTS: usize = 12;
const INTERVALS: usize = 10;
const KILL_AT: usize = 4;
const HORIZON_MS: u64 = 120_000;

fn main() {
    let data = dashboard::generate(2_000, 0x12);

    eprintln!("Eon 4 nodes / 3 shards…");
    let eon = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(4, 3).exec_slots(SLOTS)).unwrap();
    dashboard::load_eon(&eon, &data).unwrap();
    let caps: HashMap<u64, usize> = (0..4u64).map(|n| (n, SLOTS)).collect();
    let eon_out = simulate(
        CLIENTS,
        HORIZON_MS,
        &caps,
        INTERVALS,
        |i| {
            if i == KILL_AT {
                eprintln!("  killing eon node 1");
                eon.kill_node(eon_types::NodeId(1)).unwrap();
            }
        },
        |_, _, _| {
            let p = eon.participation(&SessionOpts::default()).unwrap();
            OpSpec {
                fragments: p
                    .workers
                    .into_iter()
                    .map(|(node, shards, _)| Fragment {
                        node: node.0,
                        slots: shards.len().max(1),
                        ms: FRAG_MS,
                    })
                    .collect(),
                serial_ms: 0,
            }
        },
    );

    eprintln!("Enterprise 4 nodes / 4 segments…");
    let ent = EnterpriseDb::create(EnterpriseConfig {
        num_nodes: 4,
        exec_slots: SLOTS,
        wos_threshold: 1_000_000,
        fragment_ms: 0,
    });
    dashboard::load_enterprise(&ent, &data).unwrap();
    let ent_out = simulate(
        CLIENTS,
        HORIZON_MS,
        &caps,
        INTERVALS,
        |i| {
            if i == KILL_AT {
                eprintln!("  killing enterprise node 1");
                ent.node(1).kill();
            }
        },
        |_, _, _| {
            let servers = ent.segment_servers().unwrap();
            let mut by_node: HashMap<u64, usize> = HashMap::new();
            for node in servers {
                *by_node.entry(node as u64).or_insert(0) += 1;
            }
            OpSpec {
                fragments: by_node
                    .into_iter()
                    .map(|(node, slots)| Fragment {
                        node,
                        slots,
                        ms: FRAG_MS,
                    })
                    .collect(),
                serial_ms: 0,
            }
        },
    );

    let interval_ms = HORIZON_MS / INTERVALS as u64;
    let to_qpm =
        |s: &[u64]| -> Vec<f64> { s.iter().map(|&c| sim_per_minute(c, interval_ms)).collect() };
    let eon_series = to_qpm(&eon_out.per_interval);
    let ent_series = to_qpm(&ent_out.per_interval);

    let rows: Vec<Vec<String>> = (0..INTERVALS)
        .map(|i| {
            vec![
                format!("t{i}{}", if i == KILL_AT { " (kill)" } else { "" }),
                format!("{:.0}", eon_series[i]),
                format!("{:.0}", ent_series[i]),
            ]
        })
        .collect();
    print_table(
        "Fig 12 — throughput timeline, kill 1 of 4 nodes (queries/min, virtual-time)",
        &["interval", "eon 4n/3s", "enterprise 4n"],
        &rows,
    );
    print_json(
        "fig12",
        serde_json::json!({"eon": eon_series, "enterprise": ent_series}),
    );

    let retain = |s: &[f64]| {
        let before = s[..KILL_AT].iter().sum::<f64>() / KILL_AT as f64;
        let after =
            s[KILL_AT + 1..].iter().sum::<f64>() / (INTERVALS - KILL_AT - 1) as f64;
        after / before
    };
    println!(
        "\nthroughput retained after node kill: eon {:.0}%  enterprise {:.0}% (paper: eon smooth, enterprise cliff)",
        retain(&eon_series) * 100.0,
        retain(&ent_series) * 100.0
    );
}
