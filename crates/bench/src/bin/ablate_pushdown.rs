//! Pushdown ablation: run the same queries with S3-Select-style
//! pushdown on and off and measure what executing below the GET buys,
//! so the win is measured rather than asserted.
//!
//! Two configurations over the same deterministic table:
//!
//! * `pushdown_off` — every scan fetches whole column ranges and
//!   filters node-side (the pre-pushdown shape),
//! * `pushdown_on` — the shipping default: eligible scans send a
//!   `SelectRequest` below the GET and receive only survivors or
//!   partial aggregate states.
//!
//! Phases:
//!
//! * **selective rows** — a ~5%-selective predicate on an unsorted
//!   column (footer pruning can't help; pushdown can), run in bypass
//!   mode so every byte crosses the simulated wire. The acceptance gate
//!   demands ≥5× fewer store bytes returned and a wall-clock win.
//! * **partial aggregates** — a full-table GROUP BY SUM/COUNT; the
//!   store folds each container and ships states, not rows.
//! * **depot-cold** — the same selective query in normal cache mode
//!   with cleared depots: pushdown must engage (selects > 0) and must
//!   leave the depot cold (selects never fault whole files in).
//! * **crossover sweep** — the predicate widened step by step; the
//!   deterministic cost model must switch from selects to plain GETs
//!   exactly when the estimated selectivity crosses
//!   `pushdown_max_selectivity`, with the fallback counted.
//!
//! Every phase asserts pushdown-on and pushdown-off answers are
//! identical. Knobs: `EON_BENCH_PUSHDOWN_ROWS` (default 60000),
//! `EON_BENCH_S3_LAT_US` (default 2000), `EON_BENCH_JSON` (output
//! path, default `BENCH_pushdown.json`).

use std::sync::Arc;
use std::time::Duration;

use eon_bench::{
    metrics_summary, print_json, print_table, time_best_of, update_bench_json_default,
};
use eon_core::{EonConfig, EonDb, SessionOpts};
use eon_columnar::pruning::CmpOp;
use eon_columnar::{Predicate, Projection};
use eon_exec::{AggSpec, Expr, Plan, ScanSpec, SortKey};
use eon_obs::Registry;
use eon_storage::{FileSystem, S3Config, S3SimFs};
use eon_types::{schema, Value};

const NODES: usize = 4;
const SHARDS: usize = 4;
const SLOTS: usize = 8;
/// `val` cycles 0..VAL_SPAN uniformly, so a predicate `val < f*VAL_SPAN`
/// has true selectivity ~f on every block — the estimator sees the same
/// fraction from block min/max, making the crossover sweep exact.
const VAL_SPAN: i64 = 1000;

fn bench_rows() -> usize {
    std::env::var("EON_BENCH_PUSHDOWN_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000)
}

fn s3_latency() -> Duration {
    let us = std::env::var("EON_BENCH_S3_LAT_US")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    Duration::from_micros(us)
}

struct Ablation {
    name: &'static str,
    pushdown: bool,
}

const CONFIGS: &[Ablation] = &[
    Ablation { name: "pushdown_off", pushdown: false },
    Ablation { name: "pushdown_on", pushdown: true },
];

/// Fresh cluster over simulated S3; the payload column makes containers
/// wide enough that byte savings dominate request overhead.
fn build_db(ab: &Ablation, rows: usize, latency: Duration) -> (Arc<EonDb>, Registry, Arc<S3SimFs>) {
    let registry = Registry::new();
    let s3 = Arc::new(S3SimFs::with_metrics(
        S3Config {
            request_latency: latency,
            ..S3Config::default()
        },
        &registry,
    ));
    let db = EonDb::create(
        s3.clone(),
        EonConfig::new(NODES, SHARDS)
            .exec_slots(SLOTS)
            .observability(registry.clone())
            .pushdown(ab.pushdown),
    )
    .unwrap();
    let s = schema![("id", Int), ("grp", Int), ("val", Int), ("payload", Str)];
    db.create_table(
        "pd_t",
        s.clone(),
        vec![Projection::super_projection("sp", &s, &[0], &[0])],
    )
    .unwrap();
    let half = rows / 2;
    for batch in 0..2 {
        let data: Vec<Vec<Value>> = (batch * half..(batch + 1) * half)
            .map(|i| {
                let i = i as i64;
                vec![
                    Value::Int(i),
                    Value::Int(i % 8),
                    Value::Int(i * 37 % VAL_SPAN),
                    Value::Str(format!("payload-{i:08}-{:024}", i * 271)),
                ]
            })
            .collect();
        db.copy_into("pd_t", data).unwrap();
    }
    (db, registry, s3)
}

/// Selective rows query: `val` is uniform and unsorted, so footer stats
/// keep every block and only pushdown can cut the bytes fetched.
fn rows_plan(frac: f64) -> Plan {
    let cut = (frac * VAL_SPAN as f64) as i64;
    Plan::scan(
        ScanSpec::new("pd_t")
            .columns(vec![0, 2, 3])
            .predicate(Predicate::cmp(2, CmpOp::Lt, cut)),
    )
    .sort(vec![SortKey::asc(0)])
}

/// Full-table grouped aggregate: int sums only, so the per-container
/// fold merges byte-identically and the store ships states, not rows.
fn agg_plan() -> Plan {
    Plan::scan(ScanSpec::new("pd_t")).aggregate(
        vec![1],
        vec![AggSpec::sum(Expr::col(2)), AggSpec::count_star()],
    )
}

fn clear_depots(db: &EonDb) {
    for node in db.membership().all() {
        node.cache.clear().unwrap();
    }
}

/// Bytes the store shipped to nodes: plain GET bytes plus SELECT
/// response bytes (the two ways data crosses the simulated wire).
fn wire_bytes(s3: &S3SimFs, registry: &Registry) -> u64 {
    let returned = metrics_summary(&registry.snapshot())["s3_select_returned_bytes"]
        .as_u64()
        .unwrap_or(0);
    s3.stats().bytes_read + returned
}

fn counter(registry: &Registry, key: &str) -> u64 {
    metrics_summary(&registry.snapshot())[key].as_u64().unwrap_or(0)
}

fn main() {
    let rows = bench_rows();
    let latency = s3_latency();
    eprintln!(
        "ablate_pushdown: {rows} rows, S3 latency {latency:?}, {NODES} nodes / {SHARDS} shards"
    );
    let selective = rows_plan(0.05);
    let aggregate = agg_plan();
    let bypass_opts = SessionOpts {
        bypass_cache: true,
        ..Default::default()
    };

    let mut table_rows = Vec::new();
    let mut config_json = Vec::new();
    let mut rows_ref: Option<Vec<Vec<Value>>> = None;
    let mut agg_ref: Option<Vec<Vec<Value>>> = None;
    let mut by_name: Vec<(&'static str, serde_json::Value)> = Vec::new();
    let mut dbs: Vec<(&'static str, Arc<EonDb>, Registry, Arc<S3SimFs>)> = Vec::new();

    for ab in CONFIGS {
        eprintln!("config {} …", ab.name);
        let (db, registry, s3) = build_db(ab, rows, latency);

        // Pushdown may never change an answer.
        let result = db.query_with(&selective, &bypass_opts).unwrap();
        match &rows_ref {
            None => rows_ref = Some(result),
            Some(r) => assert_eq!(r, &result, "{}: selective rows diverged", ab.name),
        }
        let agg_result = db.query_with(&aggregate, &bypass_opts).unwrap();
        match &agg_ref {
            None => agg_ref = Some(agg_result),
            Some(r) => assert_eq!(r, &agg_result, "{}: aggregate diverged", ab.name),
        }

        // Selective rows, bypass mode: every byte crosses the wire.
        let b0 = wire_bytes(&s3, &registry);
        let g0 = counter(&registry, "s3_get");
        let rows_ms = time_best_of(2, || {
            db.query_with(&selective, &bypass_opts).unwrap();
        });
        let rows_wire = (wire_bytes(&s3, &registry) - b0) / 2;
        let rows_gets = (counter(&registry, "s3_get") - g0) / 2;

        // Full-table aggregate, bypass mode.
        let b0 = wire_bytes(&s3, &registry);
        let agg_ms = time_best_of(2, || {
            db.query_with(&aggregate, &bypass_opts).unwrap();
        });
        let agg_wire = (wire_bytes(&s3, &registry) - b0) / 2;

        // Depot-cold, normal cache mode: with pushdown on, the select
        // must answer below the GET and leave the depot cold.
        clear_depots(&db);
        let b0 = wire_bytes(&s3, &registry);
        let s0 = counter(&registry, "scan_pushdown_selects");
        let w0 = counter(&registry, "depot_writes");
        let cold_ms = eon_bench::time_once(|| {
            db.query(&selective).unwrap();
        });
        let cold_wire = wire_bytes(&s3, &registry) - b0;
        let cold_selects = counter(&registry, "scan_pushdown_selects") - s0;
        let cold_depot_writes = counter(&registry, "depot_writes") - w0;

        let summary = metrics_summary(&registry.snapshot());
        let record = serde_json::json!({
            "config": ab.name,
            "rows_ms": rows_ms.as_secs_f64() * 1e3,
            "rows_wire_bytes": rows_wire,
            "rows_s3_gets": rows_gets,
            "agg_ms": agg_ms.as_secs_f64() * 1e3,
            "agg_wire_bytes": agg_wire,
            "cold_ms": cold_ms.as_secs_f64() * 1e3,
            "cold_wire_bytes": cold_wire,
            "cold_selects": cold_selects,
            "cold_depot_writes": cold_depot_writes,
            "metrics_summary": summary,
        });
        print_json("ablate_pushdown", record.clone());
        table_rows.push(vec![
            ab.name.to_string(),
            format!("{:.1}", rows_ms.as_secs_f64() * 1e3),
            format!("{rows_wire}"),
            format!("{:.1}", agg_ms.as_secs_f64() * 1e3),
            format!("{agg_wire}"),
            record["metrics_summary"]["scan_pushdown_selects"].to_string(),
            record["metrics_summary"]["scan_pushdown_fallbacks"].to_string(),
        ]);
        by_name.push((ab.name, record.clone()));
        config_json.push(record);
        dbs.push((ab.name, db, registry, s3));
    }

    // Crossover sweep on the pushdown-on database: widen the predicate
    // and watch the deterministic cost model hand back to plain GETs.
    let (_, db, registry, s3) = dbs.iter().find(|(n, ..)| *n == "pushdown_on").unwrap();
    let (_, db_off, ..) = dbs.iter().find(|(n, ..)| *n == "pushdown_off").unwrap();
    let mut sweep_json = Vec::new();
    for frac in [0.01, 0.05, 0.10, 0.20, 0.50, 0.90] {
        let plan = rows_plan(frac);
        let on = db.query_with(&plan, &bypass_opts).unwrap();
        let off = db_off.query_with(&plan, &bypass_opts).unwrap();
        assert_eq!(on, off, "sweep frac {frac}: answers diverged");
        let s0 = counter(registry, "scan_pushdown_selects");
        let f0 = counter(registry, "scan_pushdown_fallbacks");
        let b0 = wire_bytes(s3, registry);
        db.query_with(&plan, &bypass_opts).unwrap();
        let record = serde_json::json!({
            "selectivity": frac,
            "selects": counter(registry, "scan_pushdown_selects") - s0,
            "fallbacks": counter(registry, "scan_pushdown_fallbacks") - f0,
            "wire_bytes": wire_bytes(s3, registry) - b0,
        });
        print_json("ablate_pushdown_sweep", record.clone());
        sweep_json.push(record);
    }

    print_table(
        &format!("Pushdown ablation — {rows} rows, S3 TTFB {latency:?}"),
        &[
            "config",
            "rows ms",
            "rows wire B",
            "agg ms",
            "agg wire B",
            "selects",
            "fallbacks",
        ],
        &table_rows,
    );

    let find = |n: &str| {
        by_name
            .iter()
            .find(|(name, _)| *name == n)
            .map(|(_, v)| v.clone())
            .unwrap()
    };
    let off = find("pushdown_off");
    let on = find("pushdown_on");
    let ratio = |k: &str| {
        off[k].as_u64().unwrap_or(0) as f64 / on[k].as_u64().unwrap_or(1).max(1) as f64
    };
    let narrow = &sweep_json[0]; // 1% — must push down
    let wide = sweep_json.last().unwrap(); // 90% — must fall back
    let acceptance = serde_json::json!({
        "rows_wire_reduction": ratio("rows_wire_bytes"),
        "rows_wire_reduction_5x": ratio("rows_wire_bytes") >= 5.0,
        "agg_wire_reduction": ratio("agg_wire_bytes"),
        "agg_wire_reduction_5x": ratio("agg_wire_bytes") >= 5.0,
        "pushdown_faster_bypass": on["rows_ms"].as_f64() < off["rows_ms"].as_f64(),
        "cold_pushdown_engages": on["cold_selects"].as_u64().unwrap_or(0) > 0,
        "cold_depot_stays_cold": on["cold_depot_writes"].as_u64() == Some(0),
        "narrow_predicate_pushes_down": narrow["selects"].as_u64().unwrap_or(0) > 0
            && narrow["fallbacks"].as_u64() == Some(0),
        "wide_predicate_falls_back": wide["selects"].as_u64() == Some(0)
            && wide["fallbacks"].as_u64().unwrap_or(0) > 0,
    });
    print_json("ablate_pushdown_acceptance", acceptance.clone());
    for (gate, v) in acceptance.as_object().unwrap() {
        if let Some(ok) = v.as_bool() {
            assert!(ok, "acceptance gate failed: {gate}");
        }
    }

    update_bench_json_default(
        "BENCH_pushdown.json",
        "ablate_pushdown",
        serde_json::json!({
            "rows": rows,
            "s3_latency_us": latency.as_micros() as u64,
            "nodes": NODES,
            "shards": SHARDS,
            "configs": config_json,
            "sweep": sweep_json,
            "acceptance": acceptance,
        }),
    );
}
