//! Ablation (§4.4): crunch scaling. When nodes outnumber shards,
//! Elastic Throughput Scaling helps concurrency but "does not improve
//! the running time of an individual query". Crunch scaling spreads
//! each shard across several workers via a hash-filter predicate.
//!
//! This harness measures single-query latency with and without crunch
//! on a 6-node / 2-shard cluster, plus the hash-filter vs
//! container-split row-partitioning cost on raw data.

use std::sync::Arc;

use eon_bench::{print_json, print_table, time_best_of};
use eon_core::{EonConfig, EonDb, SessionOpts};
use eon_exec::crunch::CrunchSlice;
use eon_exec::{AggSpec, Expr, Plan, ScanSpec};
use eon_storage::MemFs;
use eon_types::Value;

fn main() {
    // A deliberately heavy aggregation so per-row work dominates.
    let db = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(6, 2).exec_slots(8)).unwrap();
    let s = eon_types::schema![("id", Int), ("grp", Int), ("v", Float)];
    db.create_table(
        "big",
        s.clone(),
        vec![eon_columnar::Projection::super_projection("p", &s, &[0], &[0])],
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..400_000i64)
        .map(|i| vec![Value::Int(i), Value::Int(i % 1000), Value::Float(i as f64 * 0.5)])
        .collect();
    eprintln!("loading 400k rows…");
    db.copy_into("big", rows).unwrap();

    let plan = Plan::scan(ScanSpec::new("big")).aggregate(
        vec![1],
        vec![AggSpec::sum(Expr::col(2)), AggSpec::count_star()],
    );
    db.query(&plan).unwrap(); // warm

    let t_plain = time_best_of(3, || {
        db.query(&plan).unwrap();
    });
    let crunch = SessionOpts {
        crunch: true,
        ..Default::default()
    };
    db.query_with(&plan, &crunch).unwrap(); // warm remaining depots
    let t_crunch = time_best_of(3, || {
        db.query_with(&plan, &crunch).unwrap();
    });

    // Micro-comparison of the two §4.4 splitting mechanisms over raw
    // rows: hash-filter pays a per-row hash; container-split pays
    // nothing per row but loses the segmentation property.
    let sample: Vec<Vec<Value>> = (0..200_000i64).map(|i| vec![Value::Int(i)]).collect();
    let slice = CrunchSlice::new(0, 3);
    let t_hash = time_best_of(3, || {
        let kept = sample.iter().filter(|r| slice.keeps_row(r, &[0])).count();
        assert!(kept > 0);
    });
    let t_split = time_best_of(3, || {
        let idx = slice.container_indices(sample.len());
        assert!(!idx.is_empty());
    });

    print_table(
        "Ablation §4.4 — crunch scaling (6 nodes / 2 shards, 400k rows)",
        &["configuration", "latency ms"],
        &[
            vec![
                "plain (2 workers, 1 per shard)".into(),
                format!("{:.1}", t_plain.as_secs_f64() * 1e3),
            ],
            vec![
                "crunch hash-filter (all subscribers share shards)".into(),
                format!("{:.1}", t_crunch.as_secs_f64() * 1e3),
            ],
        ],
    );
    print_table(
        "Row-partitioning mechanism cost (200k rows, worker 0 of 3)",
        &["mechanism", "time ms"],
        &[
            vec![
                "hash-filter (keeps segmentation)".into(),
                format!("{:.2}", t_hash.as_secs_f64() * 1e3),
            ],
            vec![
                "container-split (loses segmentation)".into(),
                format!("{:.3}", t_split.as_secs_f64() * 1e3),
            ],
        ],
    );
    print_json(
        "ablate_crunch",
        serde_json::json!({
            "plain_ms": t_plain.as_secs_f64() * 1e3,
            "crunch_ms": t_crunch.as_secs_f64() * 1e3,
            "hash_filter_ms": t_hash.as_secs_f64() * 1e3,
            "container_split_ms": t_split.as_secs_f64() * 1e3,
        }),
    );
    println!(
        "\ncrunch wall-clock ratio on one query: {:.2}x",
        t_plain.as_secs_f64() / t_crunch.as_secs_f64()
    );
    println!(
        "note: on a multi-core host the 3x-wider worker set turns into latency; on this\n         single-core benchmark machine the split shows up as per-worker work reduction\n         (each worker scans ~1/3 of its shard) plus the hash-filter overhead measured above."
    );
}
