//! Self-healing ablation: the same node flap and S3 brownout driven
//! against three configurations, so the failure detector's and circuit
//! breaker's contracts are measured rather than asserted (DESIGN.md
//! "Failure detection & degraded modes").
//!
//! Configurations over the same deterministic workload:
//!
//! * `no_detector` — the pre-supervisor shape: a killed node stays
//!   down until an **operator** restarts it, and every brownout write
//!   burns its full retry budget against the dark store;
//! * `detector` — tick-driven failure detection plus automatic
//!   subscription takeover and restart; writes still burn retries
//!   during the brownout (no breaker);
//! * `detector_breaker` — detection plus the S3 circuit breaker:
//!   after `failure_threshold` exhausted budgets the breaker opens and
//!   the remaining writes fast-fail with typed `StoreUnavailable`.
//!
//! Every configuration must serve **exact** scans through the whole
//! schedule — node down, mid-takeover, and brownout (depot-only) — and
//! must end healthy with all data intact. All of that is asserted
//! before any number is reported. Gates: auto-recovery completes with
//! zero operator interventions for the detector configs, fail-fast
//! latency is bounded (and far under a retry burn), and the breaker
//! keeps brownout store traffic strictly below the no-breaker configs
//! (no retry storm).
//!
//! Knobs: `EON_BENCH_HEALTH_ROWS` (default 4000),
//! `EON_BENCH_HEALTH_WRITES` (brownout write attempts, default 6, min
//! 4), `EON_BENCH_HEALTH_TICKS` (flap-phase ticks, default 10),
//! `EON_BENCH_JSON` (output path, default `BENCH_health.json`).

use std::sync::Arc;
use std::time::Instant;

use eon_bench::{metrics_summary, print_json, print_table, update_bench_json_default};
use eon_columnar::Projection;
use eon_core::{ClusterHealth, EonConfig, EonDb};
use eon_exec::{Plan, ScanSpec};
use eon_obs::Registry;
use eon_storage::{BreakerState, FileSystem, S3Config, S3SimFs};
use eon_types::{schema, EonError, NodeId, Value};

const NODES: usize = 3;
const SHARDS: usize = 3;
/// Breaker tuning shared by the breaker config: trip after 2 exhausted
/// budgets, fast-fail 3 admissions, then probe with 1 success to close.
const BREAKER: (u32, u32, u32) = (2, 3, 1);

fn knob(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

struct Ablation {
    name: &'static str,
    detector: bool,
    breaker: bool,
}

const CONFIGS: &[Ablation] = &[
    Ablation { name: "no_detector", detector: false, breaker: false },
    Ablation { name: "detector", detector: true, breaker: false },
    Ablation { name: "detector_breaker", detector: true, breaker: true },
];

fn int_rows(range: std::ops::Range<i64>) -> Vec<Vec<Value>> {
    range.map(|i| vec![Value::Int(i), Value::Int(i * 3)]).collect()
}

fn build_db(ab: &Ablation, rows: usize) -> (Arc<EonDb>, Registry, Arc<S3SimFs>) {
    let registry = Registry::new();
    let s3 = Arc::new(S3SimFs::with_metrics(S3Config::instant(), &registry));
    let mut config = EonConfig::new(NODES, SHARDS)
        .observability(registry.clone())
        .load_workers(1); // serial uploads: deterministic breaker accounting
    if ab.detector {
        config = config.health_ticks(1, 2, 2).supervisor_restart_ticks(3);
    }
    if ab.breaker {
        config = config.breaker(BREAKER.0, BREAKER.1, BREAKER.2);
    }
    let db = EonDb::create(s3.clone(), config).unwrap();
    let s = schema![("id", Int), ("v", Int)];
    db.create_table(
        "t",
        s.clone(),
        vec![Projection::super_projection("p", &s, &[0], &[0])],
    )
    .unwrap();
    db.copy_into("t", int_rows(0..rows as i64)).unwrap();
    (db, registry, s3)
}

fn scan_sorted(db: &Arc<EonDb>) -> Vec<Vec<Value>> {
    let mut rows = db.query(&Plan::scan(ScanSpec::new("t"))).unwrap();
    rows.sort();
    rows
}

fn pct(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

fn main() {
    let rows = knob("EON_BENCH_HEALTH_ROWS", 4_000);
    let writes = knob("EON_BENCH_HEALTH_WRITES", 6).max(4);
    let ticks = knob("EON_BENCH_HEALTH_TICKS", 10).max(8);
    eprintln!(
        "ablate_health: {rows} rows, {writes} brownout writes, {ticks} flap ticks, \
         {NODES} nodes / {SHARDS} shards, breaker {BREAKER:?}"
    );

    let victim = NodeId(1);
    let mut table_rows = Vec::new();
    let mut config_json = Vec::new();
    let mut by_name: Vec<(&'static str, serde_json::Value)> = Vec::new();

    for ab in CONFIGS {
        eprintln!("config {} …", ab.name);
        let (db, registry, s3) = build_db(ab, rows);
        let brownout_hits =
            registry.counter("s3_faults_injected_total", &[("subsystem", "s3"), ("kind", "brownout")]);
        let mut want = int_rows(0..rows as i64);
        want.sort();
        assert_eq!(scan_sorted(&db), want, "{}: warm scan inexact", ab.name);

        let wall = Instant::now();

        // ── Phase 1: node flap ─────────────────────────────────────
        // Kill a node; the detector configs must heal it by ticking
        // alone, the baseline needs the operator. Every tick's scan
        // must stay exact (failover, then the healed layout).
        db.kill_node(victim).unwrap();
        let mut restarts = 0usize;
        let mut takeover_ops = 0usize;
        let mut scan_ms = Vec::new();
        for _ in 0..ticks {
            if ab.detector {
                let r = db.supervise_tick();
                assert!(r.errors.is_empty(), "{}: supervisor errors {:?}", ab.name, r.errors);
                restarts += r.restarted.len();
                takeover_ops += r.takeover_ops;
            }
            let t0 = Instant::now();
            assert_eq!(scan_sorted(&db), want, "{}: service gap during flap", ab.name);
            scan_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        let mut operator_interventions = 0usize;
        if ab.detector {
            assert!(restarts >= 1, "{}: dead node never auto-restarted", ab.name);
            assert!(takeover_ops >= 1, "{}: no subscription takeover", ab.name);
            assert_eq!(db.cluster_health(), ClusterHealth::Healthy, "{}", ab.name);
        } else {
            // The baseline proves the counterfactual: without the
            // supervisor the node is still down and stays down until
            // an operator acts.
            assert!(
                !db.membership().get(victim).unwrap().is_up(),
                "{}: node recovered without a detector?",
                ab.name
            );
            db.restart_node(victim).unwrap();
            operator_interventions += 1;
        }
        // Re-warm every depot (the rejoiner included) so the brownout
        // phase measures depot-only reads, not cold misses.
        for _ in 0..2 {
            assert_eq!(scan_sorted(&db), want, "{}: post-heal scan inexact", ab.name);
        }

        // ── Phase 2: S3 brownout ───────────────────────────────────
        let hits_before = brownout_hits.get();
        let cost_before = s3.stats().cost_nanodollars;
        s3.set_brownout(true);
        for _ in 0..3 {
            assert_eq!(scan_sorted(&db), want, "{}: depot-only read failed", ab.name);
        }
        assert_eq!(
            s3.stats().cost_nanodollars,
            cost_before,
            "{}: brownout reads touched the store",
            ab.name
        );
        let batch = int_rows(rows as i64..rows as i64 + 100);
        let mut fast_fails = 0usize;
        let mut slow_fails = 0usize;
        let mut fast_ms = Vec::new();
        let mut slow_ms = Vec::new();
        for i in 0..writes {
            let t0 = Instant::now();
            let r = db.copy_into("t", batch.clone());
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            match r {
                Ok(_) => panic!("{}: write {i} succeeded during brownout", ab.name),
                Err(EonError::StoreUnavailable(_)) => {
                    fast_fails += 1;
                    fast_ms.push(ms);
                }
                Err(EonError::Storage(_)) => {
                    slow_fails += 1;
                    slow_ms.push(ms);
                }
                Err(e) => panic!("{}: write {i}: unexpected error {e}", ab.name),
            }
        }
        let brownout_store_hits = brownout_hits.get() - hits_before;
        s3.set_brownout(false);

        // ── Phase 3: recovery ──────────────────────────────────────
        // The open breaker must drain its cooldown, probe, and close
        // by itself; the no-breaker configs succeed immediately.
        let mut recovery_attempts = 0usize;
        let mut recovered = false;
        for _ in 0..10 {
            recovery_attempts += 1;
            match db.copy_into("t", batch.clone()) {
                Ok(_) => {
                    recovered = true;
                    break;
                }
                Err(EonError::StoreUnavailable(_)) => continue, // cooldown
                Err(e) => panic!("{}: post-brownout write: {e}", ab.name),
            }
        }
        assert!(recovered, "{}: writes never recovered after the brownout", ab.name);
        if let Some(b) = db.breaker() {
            assert_eq!(b.state(), BreakerState::Closed, "{}: breaker stuck", ab.name);
        }
        assert_eq!(db.cluster_health(), ClusterHealth::Healthy, "{}: not healthy", ab.name);
        want.extend(batch.clone());
        want.sort();
        assert_eq!(scan_sorted(&db), want, "{}: final state inexact", ab.name);
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

        fast_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        slow_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        scan_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let record = serde_json::json!({
            "config": ab.name,
            "operator_interventions": operator_interventions,
            "restarts": restarts,
            "takeover_ops": takeover_ops,
            "flap_scan_p50_ms": pct(&scan_ms, 0.50),
            "brownout_writes": writes,
            "fast_fails": fast_fails,
            "slow_fails": slow_fails,
            "brownout_store_hits": brownout_store_hits,
            "fastfail_max_ms": pct(&fast_ms, 1.0),
            "slowfail_p50_ms": pct(&slow_ms, 0.50),
            "recovery_attempts": recovery_attempts,
            "wall_ms": wall_ms,
            "metrics_summary": metrics_summary(&registry.snapshot()),
        });
        print_json("ablate_health", record.clone());
        table_rows.push(vec![
            ab.name.to_string(),
            format!("{operator_interventions}"),
            format!("{restarts}"),
            format!("{takeover_ops}"),
            format!("{fast_fails}/{slow_fails}"),
            format!("{brownout_store_hits}"),
            format!("{:.3}", pct(&fast_ms, 1.0)),
            format!("{:.3}", pct(&slow_ms, 0.50)),
        ]);
        by_name.push((ab.name, record.clone()));
        config_json.push(record);
    }

    print_table(
        &format!("Self-healing ablation — {rows} rows, {writes} brownout writes"),
        &[
            "config",
            "operator",
            "restarts",
            "takeovers",
            "fast/slow",
            "store hits",
            "fastfail max ms",
            "slowfail p50 ms",
        ],
        &table_rows,
    );

    let find = |n: &str| {
        by_name.iter().find(|(name, _)| *name == n).map(|(_, v)| v.clone()).unwrap()
    };
    let baseline = find("no_detector");
    let detector = find("detector");
    let breaker = find("detector_breaker");
    let u = |v: &serde_json::Value, k: &str| v[k].as_u64().unwrap_or(0);
    let f = |v: &serde_json::Value, k: &str| v[k].as_f64().unwrap_or(f64::NAN);

    // Gate 1: auto-recovery completes — detector configs heal the flap
    // with zero operator interventions; the baseline needed one.
    let auto_recovery = u(&detector, "operator_interventions") == 0
        && u(&breaker, "operator_interventions") == 0
        && u(&detector, "restarts") >= 1
        && u(&breaker, "restarts") >= 1
        && u(&baseline, "operator_interventions") == 1;
    // Gate 2: fail-fast latency bounded — a breaker rejection is far
    // cheaper than a retry burn (and absolutely bounded).
    let fail_fast = u(&breaker, "fast_fails") >= 1
        && f(&breaker, "fastfail_max_ms") < 50.0
        && f(&breaker, "fastfail_max_ms") < f(&baseline, "slowfail_p50_ms");
    // Gate 3: no retry storm — the breaker trips after its threshold
    // plus at most one dark probe, and keeps brownout store traffic
    // strictly below the no-breaker configs.
    let trip_budget = (BREAKER.0 + BREAKER.2) as u64;
    let no_storm = u(&breaker, "slow_fails") <= trip_budget
        && u(&breaker, "brownout_store_hits") < u(&baseline, "brownout_store_hits")
        && u(&breaker, "brownout_store_hits") < u(&detector, "brownout_store_hits");
    let acceptance = serde_json::json!({
        "exact_through_flap_and_brownout": true, // fatal asserts above
        "auto_recovery_completes": auto_recovery,
        "fail_fast_latency_bounded": fail_fast,
        "no_retry_storm": no_storm,
    });
    print_json("ablate_health_acceptance", acceptance.clone());
    assert!(auto_recovery, "auto-recovery gate failed: {baseline} {detector} {breaker}");
    assert!(fail_fast, "fail-fast latency gate failed: {breaker} vs {baseline}");
    assert!(no_storm, "retry-storm gate failed: {breaker} vs {baseline}");

    let breaker_cfg = serde_json::json!({
        "failure_threshold": (BREAKER.0),
        "cooldown": (BREAKER.1),
        "half_open_probes": (BREAKER.2),
    });
    update_bench_json_default(
        "BENCH_health.json",
        "ablate_health",
        serde_json::json!({
            "rows": rows,
            "brownout_writes": writes,
            "flap_ticks": ticks,
            "nodes": NODES,
            "shards": SHARDS,
            "breaker": breaker_cfg,
            "configs": config_json,
            "acceptance": acceptance,
        }),
    );
}
