//! §8's elasticity claim: "Elasticity in Eon mode is a function of
//! cache size since the majority of the time is spent moving data …
//! Without cache fill, the process takes minutes. Performance
//! comparisons with Enterprise are unfair as Enterprise must
//! redistribute the entire data set."
//!
//! This harness measures, under a concurrent query workload:
//!   * Eon add-node time *with* peer cache warming,
//!   * Eon add-node metadata-only time (cache warming skipped by using
//!     a cold peer),
//!   * the Enterprise equivalent — bytes that a full resegmentation
//!     must rewrite (every container).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use eon_bench::{print_json, print_table, scale_factor, time_once};
use eon_core::{EonConfig, EonDb};
use eon_enterprise::{EnterpriseConfig, EnterpriseDb};
use eon_storage::MemFs;
use eon_workload::tpch::{load_tpch_enterprise, load_tpch_eon, TpchData};
use eon_workload::tpch_query;

fn main() {
    let sf = scale_factor();
    let data = TpchData::generate(sf, 0xe1a);

    eprintln!("loading Eon (3 nodes, 3 shards)…");
    let eon = EonDb::create(Arc::new(MemFs::new()), EonConfig::new(3, 3).exec_slots(8)).unwrap();
    load_tpch_eon(&eon, &data).unwrap();
    // Warm caches with a few queries.
    for q in [1, 3, 6] {
        eon.query(&tpch_query(q)).unwrap();
    }

    // Add a node while a workload runs (the paper's "concurrently
    // running a full workload" scenario).
    let stop = AtomicBool::new(false);
    let (add_time, warmed) = std::thread::scope(|scope| {
        for _ in 0..4 {
            let (eon, stop) = (&eon, &stop);
            scope.spawn(move || {
                let plan = tpch_query(6);
                while !stop.load(Ordering::Relaxed) {
                    eon.query(&plan).unwrap();
                }
            });
        }
        let mut id = None;
        let t = time_once(|| {
            id = Some(eon.add_node().unwrap());
        });
        stop.store(true, Ordering::Relaxed);
        let node = eon.membership().get(id.unwrap()).unwrap();
        (t, node.cache.used_bytes())
    });

    eprintln!("loading Enterprise (3 nodes)…");
    let ent = EnterpriseDb::create(EnterpriseConfig {
        num_nodes: 3,
        exec_slots: 8,
        wos_threshold: 1024,
        fragment_ms: 0,
    });
    load_tpch_enterprise(&ent, &data).unwrap();
    // Enterprise elasticity cost: the fixed layout means adding a node
    // resegments everything — measure the bytes a full rewrite touches.
    let reseg_bytes: u64 = ent.nodes().iter().map(|n| n.disk_bytes()).sum();
    let reseg_time = time_once(|| {
        // Simulate the rewrite: read every container once (the lower
        // bound of redistribution work; real resegmentation also
        // re-sorts, splits, and rewrites).
        for node in ent.nodes() {
            for key in node.disk.list("").unwrap() {
                let _ = node.disk.read(&key).unwrap();
            }
        }
    });

    let rows = vec![
        vec![
            "eon add_node (metadata + cache warm)".to_string(),
            format!("{:.0} ms", add_time.as_secs_f64() * 1e3),
            format!("{} KiB warmed", warmed / 1024),
        ],
        vec![
            "enterprise resegmentation (read-only lower bound)".to_string(),
            format!("{:.0} ms", reseg_time.as_secs_f64() * 1e3),
            format!("{} KiB rewritten", reseg_bytes / 1024),
        ],
    ];
    print_table(
        &format!("Elasticity (§8) — scale 3→4 nodes under workload, TPC-H SF {sf}"),
        &["operation", "time", "data moved"],
        &rows,
    );
    print_json(
        "elasticity",
        serde_json::json!({
            "eon_add_node_ms": add_time.as_secs_f64() * 1e3,
            "eon_cache_warm_bytes": warmed,
            "enterprise_reseg_ms": reseg_time.as_secs_f64() * 1e3,
            "enterprise_reseg_bytes": reseg_bytes,
        }),
    );
    println!(
        "\nEon moves only cache-sized data; Enterprise must touch the whole dataset ({}x more bytes)",
        if warmed > 0 { reseg_bytes / warmed.max(1) } else { 0 }
    );
}
