//! Ablation (§4.1): "To promote even usage of each shard to node
//! mapping, we vary the order the graph edges are created, so as to
//! vary the output. The result is a more even distribution of nodes
//! selected to serve shards, increasing query throughput."
//!
//! We run participant selection for many sessions twice — once with a
//! fresh seed per session (the paper's scheme) and once with a frozen
//! seed (deterministic max-flow) — and report how per-node selection
//! counts spread. Lower max/mean skew = better load spreading.

use std::collections::HashMap;

use eon_bench::{print_json, print_table};
use eon_shard::{select_participants, AssignmentProblem};
use eon_types::{NodeId, ShardId};

const NODES: u64 = 9;
const SHARDS: u64 = 3;
const SESSIONS: u64 = 300;

fn problem() -> AssignmentProblem {
    let nodes: Vec<NodeId> = (0..NODES).map(NodeId).collect();
    let shards: Vec<ShardId> = (0..SHARDS).map(ShardId).collect();
    let can_serve = nodes
        .iter()
        .flat_map(|&n| shards.iter().map(move |&s| (n, s)))
        .collect();
    AssignmentProblem::flat(shards, nodes, can_serve)
}

fn run(vary_seed: bool) -> HashMap<NodeId, u64> {
    let p = problem();
    let mut counts: HashMap<NodeId, u64> = HashMap::new();
    for session in 0..SESSIONS {
        let seed = if vary_seed { session } else { 42 };
        for (_, node) in select_participants(&p, seed).unwrap() {
            *counts.entry(node).or_insert(0) += 1;
        }
    }
    counts
}

fn skew(counts: &HashMap<NodeId, u64>) -> (u64, f64, f64) {
    let total: u64 = counts.values().sum();
    let mean = total as f64 / NODES as f64;
    let max = (0..NODES)
        .map(|n| counts.get(&NodeId(n)).copied().unwrap_or(0))
        .max()
        .unwrap();
    (max, mean, max as f64 / mean.max(1.0))
}

fn main() {
    let varied = run(true);
    let frozen = run(false);
    let (vmax, vmean, vskew) = skew(&varied);
    let (fmax, fmean, fskew) = skew(&frozen);

    let mut rows = Vec::new();
    for n in 0..NODES {
        rows.push(vec![
            format!("node{n}"),
            varied.get(&NodeId(n)).copied().unwrap_or(0).to_string(),
            frozen.get(&NodeId(n)).copied().unwrap_or(0).to_string(),
        ]);
    }
    rows.push(vec![
        "max/mean skew".into(),
        format!("{vskew:.2} (max {vmax}, mean {vmean:.0})"),
        format!("{fskew:.2} (max {fmax}, mean {fmean:.0})"),
    ]);
    print_table(
        &format!(
            "Ablation §4.1 — shard-serving selections over {SESSIONS} sessions ({NODES} nodes, {SHARDS} shards)"
        ),
        &["node", "edge-order varied", "deterministic"],
        &rows,
    );
    print_json(
        "ablate_maxflow",
        serde_json::json!({"varied_skew": vskew, "frozen_skew": fskew}),
    );
    println!(
        "\nvaried-edge-order skew {vskew:.2} vs deterministic {fskew:.2} — lower is better"
    );
}
