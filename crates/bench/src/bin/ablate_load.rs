//! Write-pipeline ablation: serial vs parallel COPY (and DELETE) over
//! simulated S3, so the parallel write pipeline's win is measured
//! rather than asserted (DESIGN.md "Write pipeline").
//!
//! Configurations over the same deterministic batches and multi-shard
//! layout:
//!
//! * `serial` — one write-pool worker (the pre-pipeline shape),
//! * `parallel2` — two workers,
//! * `parallel` — workers = exec slots (the shipping default).
//!
//! Each COPY fans one upload job per (projection, shard) bucket; with
//! per-request S3 latency the serial path pays the PUTs back-to-back
//! while the pool overlaps sort+encode+upload across writers, so the
//! difference lands directly in COPY wall-clock. A DELETE phase then
//! exercises the same pool on delete-vector uploads.
//!
//! Every configuration must commit byte-identical catalog state —
//! container OIDs, keys, rows, sizes — which this bin asserts before
//! reporting any timing (the determinism rule that makes the pool safe
//! to ship on by default).
//!
//! Knobs: `EON_BENCH_LOAD_ROWS` (rows per COPY batch, default 30000),
//! `EON_BENCH_S3_LAT_US` (default 2000), `EON_BENCH_JSON` (output
//! path, default `BENCH_copy.json`).

use std::sync::Arc;
use std::time::Duration;

use eon_bench::{
    metrics_summary, print_json, print_table, time_once, update_bench_json_default,
};
use eon_columnar::pruning::CmpOp;
use eon_columnar::{Predicate, Projection};
use eon_core::{EonConfig, EonDb};
use eon_exec::{AggSpec, Expr, Plan, ScanSpec, SortKey};
use eon_obs::Registry;
use eon_storage::{S3Config, S3SimFs};
use eon_types::{schema, Value};

const NODES: usize = 4;
const SHARDS: usize = 8;
const SLOTS: usize = 8;
const BATCHES: usize = 3;

fn load_rows() -> usize {
    std::env::var("EON_BENCH_LOAD_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000)
}

fn s3_latency() -> Duration {
    let us = std::env::var("EON_BENCH_S3_LAT_US")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    Duration::from_micros(us)
}

struct Ablation {
    name: &'static str,
    /// `0` = auto (one worker per exec slot).
    load_workers: usize,
}

const CONFIGS: &[Ablation] = &[
    Ablation { name: "serial", load_workers: 1 },
    Ablation { name: "parallel2", load_workers: 2 },
    Ablation { name: "parallel", load_workers: 0 },
];

fn build_db(ab: &Ablation, latency: Duration) -> (Arc<EonDb>, Registry) {
    let registry = Registry::new();
    let s3 = Arc::new(S3SimFs::with_metrics(
        S3Config {
            request_latency: latency,
            ..S3Config::default()
        },
        &registry,
    ));
    let db = EonDb::create(
        s3,
        EonConfig::new(NODES, SHARDS)
            .exec_slots(SLOTS)
            .observability(registry.clone())
            .load_workers(ab.load_workers),
    )
    .unwrap();
    let s = schema![("id", Int), ("grp", Int), ("val", Int)];
    db.create_table(
        "load_t",
        s.clone(),
        vec![Projection::super_projection("lp", &s, &[0], &[0])],
    )
    .unwrap();
    (db, registry)
}

fn batch(rows: usize, b: usize) -> Vec<Vec<Value>> {
    (b * rows..(b + 1) * rows)
        .map(|i| {
            let i = i as i64;
            vec![Value::Int(i), Value::Int(i % 8), Value::Int(i * 37 % 1000)]
        })
        .collect()
}

/// The committed write-path state, keys included: (oid, key, shard,
/// rows, size) per container plus every delete vector. The pool must
/// reproduce the serial path byte for byte.
fn catalog_fingerprint(db: &EonDb) -> Vec<String> {
    let snap = db.snapshot().unwrap();
    let mut out: Vec<String> = snap
        .containers
        .values()
        .map(|c| {
            format!(
                "c:{}:{}:{}:{}:{}",
                c.oid.0, c.key, c.shard, c.rows, c.size_bytes
            )
        })
        .chain(snap.delete_vectors.values().map(|d| {
            format!("d:{}:{}:{}:{}", d.oid.0, d.key, d.container.0, d.deleted_rows)
        }))
        .collect();
    out.sort();
    out
}

fn main() {
    let rows = load_rows();
    let latency = s3_latency();
    eprintln!(
        "ablate_load: {BATCHES}×{rows} rows, S3 latency {latency:?}, {NODES} nodes / {SHARDS} shards"
    );

    let mut table_rows = Vec::new();
    let mut config_json = Vec::new();
    let mut by_name: Vec<(&'static str, serde_json::Value)> = Vec::new();
    let mut reference: Option<(Vec<String>, Vec<Vec<Value>>)> = None;

    let check_plan = Plan::scan(ScanSpec::new("load_t").predicate(Predicate::cmp(
        0,
        CmpOp::Lt,
        (BATCHES * rows / 2) as i64,
    )))
    .aggregate(vec![1], vec![AggSpec::sum(Expr::col(2)), AggSpec::count_star()])
    .sort(vec![SortKey::asc(0)]);

    for ab in CONFIGS {
        eprintln!("config {} …", ab.name);
        let (db, registry) = build_db(ab, latency);

        // Timed COPY batches (cold writer caches each run would need a
        // rebuild; COPY cost is upload-bound, not cache-bound, so the
        // batches time consistently).
        let mut copy_ms = Vec::new();
        for b in 0..BATCHES {
            let data = batch(rows, b);
            let t = time_once(|| {
                db.copy_into("load_t", data).unwrap();
            });
            copy_ms.push(t.as_secs_f64() * 1e3);
        }
        let copy_best = copy_ms.iter().cloned().fold(f64::MAX, f64::min);

        // DELETE phase: one delete vector per hit container, uploaded
        // on the same pool.
        let delete = time_once(|| {
            db.delete_where("load_t", &Predicate::cmp(0, CmpOp::Lt, (rows / 2) as i64))
                .unwrap();
        });

        // Equivalence gate: committed state and query answers must be
        // identical across pool widths before timings mean anything.
        let fp = catalog_fingerprint(&db);
        let answer = db.query(&check_plan).unwrap();
        match &reference {
            None => reference = Some((fp, answer)),
            Some((rfp, ranswer)) => {
                assert_eq!(rfp, &fp, "config {} changed committed catalog state", ab.name);
                assert_eq!(ranswer, &answer, "config {} changed query answers", ab.name);
            }
        }

        let summary = metrics_summary(&registry.snapshot());
        let record = serde_json::json!({
            "config": ab.name,
            "copy_ms": copy_ms,
            "copy_best_ms": copy_best,
            "delete_ms": delete.as_secs_f64() * 1e3,
            "metrics_summary": summary,
        });
        print_json("ablate_load", record.clone());
        table_rows.push(vec![
            ab.name.to_string(),
            format!("{copy_best:.1}"),
            format!("{:.1}", delete.as_secs_f64() * 1e3),
            record["metrics_summary"]["load_pool_tasks"].to_string(),
            record["metrics_summary"]["load_peer_ships"].to_string(),
            record["metrics_summary"]["s3_put"].to_string(),
        ]);
        by_name.push((ab.name, record.clone()));
        config_json.push(record);
    }

    print_table(
        &format!("Load ablation — {BATCHES}×{rows} rows, S3 TTFB {latency:?}"),
        &["config", "copy ms", "delete ms", "pool tasks", "peer ships", "s3 PUTs"],
        &table_rows,
    );

    let find = |n: &str| {
        by_name
            .iter()
            .find(|(name, _)| *name == n)
            .map(|(_, v)| v.clone())
            .unwrap()
    };
    let serial = find("serial");
    let parallel = find("parallel");
    let acceptance = serde_json::json!({
        "parallel_faster": parallel["copy_best_ms"].as_f64() < serial["copy_best_ms"].as_f64(),
        "parallel_copy_speedup":
            serial["copy_best_ms"].as_f64().unwrap() / parallel["copy_best_ms"].as_f64().unwrap(),
        "same_s3_puts":
            parallel["metrics_summary"]["s3_put"] == serial["metrics_summary"]["s3_put"],
        "state_identical": true, // asserted above, fatal on mismatch
    });
    print_json("ablate_load_acceptance", acceptance.clone());
    assert!(
        acceptance["parallel_faster"].as_bool() == Some(true),
        "parallel COPY did not beat serial"
    );

    update_bench_json_default(
        "BENCH_copy.json",
        "ablate_load",
        serde_json::json!({
            "rows_per_batch": rows,
            "batches": BATCHES,
            "s3_latency_us": latency.as_micros() as u64,
            "nodes": NODES,
            "shards": SHARDS,
            "configs": config_json,
            "acceptance": acceptance,
        }),
    );
}
