//! Network front-door stress: hundreds of concurrent TCP clients
//! hammering one in-process `eon-server` (DESIGN.md "Network service
//! layer").
//!
//! Configurations over the same deterministic table:
//!
//! * `open` — no admission control: every connection's queries go
//!   straight to the slot semaphores and drain there;
//! * `admission` — a per-subcluster pool (running ≤ 8, queue ≤ 16,
//!   5s deadline): everything still resolves, backpressure queues;
//! * `strict_spike` — an undersized pool (2 / 2, 1s) behind a 50ms
//!   slot spike, so the overflow must bounce with **typed `SATURATED`
//!   wire errors** instead of parking the connections;
//! * `disconnect` — a 150ms slot spike while every third client sends
//!   a query and then drops the connection without reading: the
//!   server's reader must fire the session `CancelToken` and the
//!   parked query must release its holds instead of running to
//!   completion for nobody.
//!
//! Gates (fatal before any timing is reported):
//!
//! * **all-sessions-resolve** — every client thread joins and every
//!   outcome is typed (ok / `Saturated` / `DeadlineExceeded`), never
//!   hung, never an untyped failure;
//! * **no-leaked-slots** — after quiesce, `available == capacity` on
//!   every node's slot semaphore, the admission pool reads `(0, 0)`,
//!   and the server's live-session count reaches zero;
//! * **disconnect-cancels-query** — the `disconnect` configuration
//!   must observe `server_disconnect_cancels_total > 0` and still
//!   quiesce within the watchdog (the 30s slot budget would blow it
//!   if cancellation didn't fire).
//!
//! Results land in `BENCH_server.json`. Knobs:
//! `EON_BENCH_SERVER_ROWS` (default 20000), `EON_BENCH_SERVER_CONNS`
//! (concurrent connections, default 300), `EON_BENCH_SERVER_QUERIES`
//! (queries per connection, default 2), `EON_BENCH_S3_LAT_US`
//! (default 200), `EON_BENCH_JSON` (output path).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use eon_bench::{metrics_summary, print_json, print_table, update_bench_json_default};
use eon_columnar::Projection;
use eon_core::{EonConfig, EonDb};
use eon_net::wire::{read_frame, write_frame};
use eon_net::{
    EonClient, EonServer, Request, Response, ServerHandle, ServerOpts, SqlOutcome,
    MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use eon_obs::Registry;
use eon_storage::{S3Config, S3SimFs};
use eon_types::{schema, EonError, Value};

const NODES: usize = 3;
const SHARDS: usize = 3;
const SLOTS: usize = 4;
const QUERY: &str = "SELECT SUM(val) FROM t";

fn knob(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

struct Ablation {
    name: &'static str,
    max_concurrent: usize,
    max_queue: usize,
    timeout_ms: u64,
    /// Hold every execution slot for this long at the start so the
    /// pool/queue fill (or parked queries exist to cancel).
    spike_ms: u64,
    /// Every Nth connection sends a query and vanishes without
    /// reading the response (0 = nobody does).
    drop_every: usize,
}

const CONFIGS: &[Ablation] = &[
    Ablation { name: "open", max_concurrent: 0, max_queue: 0, timeout_ms: 0, spike_ms: 0, drop_every: 0 },
    Ablation { name: "admission", max_concurrent: 8, max_queue: 16, timeout_ms: 5_000, spike_ms: 0, drop_every: 0 },
    Ablation { name: "strict_spike", max_concurrent: 2, max_queue: 2, timeout_ms: 1_000, spike_ms: 50, drop_every: 0 },
    Ablation { name: "disconnect", max_concurrent: 0, max_queue: 0, timeout_ms: 0, spike_ms: 150, drop_every: 3 },
];

/// Per-config tally. Every connection must land in exactly one bucket.
#[derive(Default)]
struct Outcomes {
    ok: AtomicU64,
    saturated: AtomicU64,
    deadline: AtomicU64,
    dropped: AtomicU64,
    connect_err: AtomicU64,
    other: AtomicU64,
}

fn build_db(ab: &Ablation, rows: usize, latency: Duration) -> (Arc<EonDb>, Registry) {
    let registry = Registry::new();
    let s3 = Arc::new(S3SimFs::with_metrics(
        S3Config {
            request_latency: latency,
            ..S3Config::default()
        },
        &registry,
    ));
    let db = EonDb::create(
        s3,
        EonConfig::new(NODES, SHARDS)
            .exec_slots(SLOTS)
            .observability(registry.clone())
            .admission_max_concurrent(ab.max_concurrent)
            .admission_max_queue(ab.max_queue)
            .admission_timeout_ms(ab.timeout_ms)
            .slot_wait_ms(30_000),
    )
    .unwrap();
    let s = schema![("id", Int), ("grp", Int), ("val", Int)];
    db.create_table(
        "t",
        s.clone(),
        vec![Projection::super_projection("p", &s, &[0], &[0])],
    )
    .unwrap();
    db.copy_into(
        "t",
        (0..rows as i64)
            .map(|i| vec![Value::Int(i), Value::Int(i % 7), Value::Int(i * 37 % 1000)])
            .collect(),
    )
    .unwrap();
    (db, registry)
}

/// Handshake, send one SQL request, and vanish: the abandoned query is
/// the server's problem — its reader must cancel it.
fn connect_and_drop(addr: std::net::SocketAddr) -> Result<(), EonError> {
    let stream = std::net::TcpStream::connect(addr)?;
    let mut w = stream.try_clone()?;
    let mut r = stream;
    write_frame(
        &mut w,
        &Request::Hello {
            protocol_version: PROTOCOL_VERSION,
            subcluster: None,
            bypass_cache: false,
            crunch: false,
        }
        .encode(),
    )?;
    let ack = read_frame(&mut r, MAX_FRAME_BYTES)?
        .ok_or_else(|| EonError::NodeDown("server closed during handshake".into()))?;
    Response::decode(&ack)?;
    write_frame(&mut w, &Request::Sql { sql: QUERY.into() }.encode())?;
    Ok(()) // both halves drop here: EOF at the server
}

/// Wait for the server's live-session count to reach zero, then assert
/// the no-leak invariants.
fn assert_quiesced(name: &str, db: &Arc<EonDb>, handle: &ServerHandle) -> f64 {
    let t0 = Instant::now();
    while handle.active_sessions() > 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "config {name}: {} sessions never quiesced",
            handle.active_sessions()
        );
        thread::sleep(Duration::from_millis(2));
    }
    for node in db.membership().up_nodes() {
        assert_eq!(
            node.slots.available(),
            node.slots.capacity(),
            "config {name}: node {} leaked execution slots",
            node.id
        );
    }
    assert_eq!(
        db.admission().pool_depths(0),
        (0, 0),
        "config {name}: admission pool did not drain"
    );
    t0.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let rows = knob("EON_BENCH_SERVER_ROWS", 20_000);
    let conns = knob("EON_BENCH_SERVER_CONNS", 300);
    let queries = knob("EON_BENCH_SERVER_QUERIES", 2);
    let latency = Duration::from_micros(knob("EON_BENCH_S3_LAT_US", 200) as u64);
    eprintln!(
        "ablate_server: {conns} concurrent connections × {queries} queries over {rows} rows, \
         S3 latency {latency:?}, {NODES} nodes / {SHARDS} shards / {SLOTS} slots"
    );

    let expect: i64 = (0..rows as i64).map(|i| i * 37 % 1000).sum();

    let mut table_rows = Vec::new();
    let mut config_json = Vec::new();
    let mut by_name: Vec<(&'static str, serde_json::Value)> = Vec::new();

    for ab in CONFIGS {
        eprintln!("config {} …", ab.name);
        let (db, registry) = build_db(ab, rows, latency);
        let handle = EonServer::bind(db.clone(), "127.0.0.1:0", ServerOpts::default())
            .unwrap()
            .spawn();
        let addr = handle.addr();
        let outcomes = Arc::new(Outcomes::default());
        let latencies = Arc::new(parking_lot::Mutex::new(Vec::<f64>::new()));

        let spike_guards = (ab.spike_ms > 0).then(|| {
            db.membership()
                .up_nodes()
                .iter()
                .map(|n| n.slots.acquire(n.slots.capacity()).unwrap())
                .collect::<Vec<_>>()
        });

        let wall = Instant::now();
        let mut clients = Vec::new();
        for c in 0..conns {
            let outcomes = outcomes.clone();
            let latencies = latencies.clone();
            let drop_this = ab.drop_every > 0 && c % ab.drop_every == 0;
            clients.push(thread::spawn(move || {
                if drop_this {
                    match connect_and_drop(addr) {
                        Ok(()) => outcomes.dropped.fetch_add(1, Ordering::Relaxed),
                        Err(_) => outcomes.connect_err.fetch_add(1, Ordering::Relaxed),
                    };
                    return;
                }
                let mut client = match EonClient::connect(addr) {
                    Ok(c) => c,
                    Err(_) => {
                        outcomes.connect_err.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                for _ in 0..queries {
                    let t0 = Instant::now();
                    let r = client.sql(QUERY);
                    latencies.lock().push(t0.elapsed().as_secs_f64() * 1e3);
                    match r {
                        Ok(SqlOutcome::Rows { rows, .. }) => {
                            assert_eq!(
                                rows,
                                vec![vec![Value::Int(expect)]],
                                "wrong answer under load"
                            );
                            outcomes.ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            outcomes.other.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(EonError::Saturated { .. }) => {
                            outcomes.saturated.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(EonError::DeadlineExceeded(_)) => {
                            outcomes.deadline.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("  untyped session outcome: {e}");
                            outcomes.other.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }));
        }
        if let Some(guards) = spike_guards {
            thread::sleep(Duration::from_millis(ab.spike_ms));
            drop(guards);
        }
        for c in clients {
            c.join().unwrap();
        }
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        let quiesce_ms = assert_quiesced(ab.name, &db, &handle);

        // All-sessions-resolve gate: every connection accounted for,
        // every outcome typed.
        assert_eq!(
            outcomes.connect_err.load(Ordering::Relaxed),
            0,
            "config {}: connections failed outright",
            ab.name
        );
        assert_eq!(
            outcomes.other.load(Ordering::Relaxed),
            0,
            "config {}: untyped session failures",
            ab.name
        );
        let expected_drops =
            if ab.drop_every > 0 { conns.div_ceil(ab.drop_every) } else { 0 };
        assert_eq!(
            outcomes.dropped.load(Ordering::Relaxed) as usize,
            expected_drops,
            "config {}: vanishing clients went missing",
            ab.name
        );
        let counted = outcomes.ok.load(Ordering::Relaxed)
            + outcomes.saturated.load(Ordering::Relaxed)
            + outcomes.deadline.load(Ordering::Relaxed);
        let normal_conns = conns - expected_drops;
        assert_eq!(
            counted as usize,
            normal_conns * queries,
            "config {}: sessions went missing",
            ab.name
        );

        let disconnect_cancels = registry
            .counter("server_disconnect_cancels_total", &[("subsystem", "server")])
            .get();

        let mut lat = latencies.lock().clone();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| if lat.is_empty() { 0.0 } else { lat[((lat.len() - 1) as f64 * p) as usize] };
        let summary = metrics_summary(&registry.snapshot());
        let record = serde_json::json!({
            "config": ab.name,
            "connections": conns,
            "queries": normal_conns * queries,
            "ok": outcomes.ok.load(Ordering::Relaxed),
            "saturated": outcomes.saturated.load(Ordering::Relaxed),
            "deadline": outcomes.deadline.load(Ordering::Relaxed),
            "dropped_conns": outcomes.dropped.load(Ordering::Relaxed),
            "disconnect_cancels": disconnect_cancels,
            "wall_ms": wall_ms,
            "quiesce_ms": quiesce_ms,
            "p50_ms": pct(0.50),
            "p99_ms": pct(0.99),
            "max_ms": pct(1.0),
            "metrics_summary": summary,
        });
        print_json("ablate_server", record.clone());
        table_rows.push(vec![
            ab.name.to_string(),
            format!("{}", record["ok"]),
            format!("{}", record["saturated"]),
            format!("{}", record["deadline"]),
            format!("{}", record["dropped_conns"]),
            format!("{}", record["disconnect_cancels"]),
            format!("{:.1}", pct(0.50)),
            format!("{:.1}", pct(0.99)),
        ]);
        by_name.push((ab.name, record.clone()));
        config_json.push(record);
    }

    print_table(
        &format!("server ablation — {conns} conns × {queries} queries, S3 TTFB {latency:?}"),
        &["config", "ok", "saturated", "deadline", "dropped", "cancels", "p50 ms", "p99 ms"],
        &table_rows,
    );

    let find = |n: &str| {
        by_name
            .iter()
            .find(|(name, _)| *name == n)
            .map(|(_, v)| v.clone())
            .unwrap()
    };
    let open = find("open");
    let strict = find("strict_spike");
    let disconnect = find("disconnect");
    let acceptance = serde_json::json!({
        // Fatal asserts above: joined threads, typed outcomes only,
        // `available == capacity` + empty pools + zero live sessions.
        "all_sessions_resolved": true,
        "no_leaked_slots": true,
        "open_all_ok": open["ok"] == open["queries"],
        "strict_saturated": strict["saturated"].as_u64().unwrap_or(0) > 0,
        "disconnect_cancels_query": disconnect["disconnect_cancels"].as_u64().unwrap_or(0) > 0,
        // Cancellation must beat the 30s slot budget by a wide margin.
        "disconnect_quiesce_bounded": disconnect["quiesce_ms"].as_f64().unwrap() < 5_000.0,
    });
    print_json("ablate_server_acceptance", acceptance.clone());
    for gate in [
        "open_all_ok",
        "strict_saturated",
        "disconnect_cancels_query",
        "disconnect_quiesce_bounded",
    ] {
        assert!(
            acceptance[gate].as_bool() == Some(true),
            "acceptance gate failed: {gate}"
        );
    }

    update_bench_json_default(
        "BENCH_server.json",
        "ablate_server",
        serde_json::json!({
            "rows": rows,
            "connections": conns,
            "queries_per_connection": queries,
            "s3_latency_us": latency.as_micros() as u64,
            "nodes": NODES,
            "shards": SHARDS,
            "exec_slots": SLOTS,
            "configs": config_json,
            "acceptance": acceptance,
        }),
    );
}
