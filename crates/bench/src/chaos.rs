//! Crash-schedule chaos harness (DESIGN.md "Fault model").
//!
//! Drives a fixed workload schedule — loads, a parallel query, DML,
//! mergeout, metadata sync, restart of every node, and a full §3.5
//! revive — against a cluster whose [`FaultPlan`] is armed to crash at
//! one named site. After every injected crash the harness restarts the
//! dead nodes and re-runs the failed step (the plan is one-shot, so the
//! retry runs clean), then verifies the crash-consistency invariants
//! via [`eon_core::check_crash_invariants`]:
//!
//! * committed data answers **exactly** (nothing lost, nothing
//!   duplicated, no uncommitted rows visible);
//! * every catalog reference resolves on shared storage;
//! * the leak scan reclaims every crash-orphaned upload.
//!
//! The whole run is deterministic for a given `(seed, ambiguous)`
//! pair: the fault plan, the S3 simulator's failure dice, participant
//! selection, and mergeout all draw from seeded RNGs, so two runs fire
//! the same crashes and converge to the same final state. The
//! [`CrashRunReport::digest`] folds the fired sites, the final table
//! contents, and the surviving `data/` keys into one value the
//! determinism tests (and `chaos_sweep --seeds N`) compare across runs.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use eon_columnar::pruning::CmpOp;
use eon_columnar::{Predicate, Projection};
use eon_core::{check_crash_invariants, EonConfig, EonDb, TableModel};
use eon_exec::{AggSpec, Expr, Plan, ScanSpec};
use eon_obs::Registry;
use eon_storage::fault::{site, SITES};
use eon_storage::{FaultInjector, FaultPlan, S3Config, S3SimFs};
use eon_types::{schema, EonError, NodeId, Value};

/// Nodes (= shards) in the chaos cluster. Small enough to keep a
/// 32-seed sweep fast, large enough that one dead node leaves the
/// cluster viable (k-safety 1) and failover has somewhere to go.
const NODES: usize = 3;

/// Ambiguous-outcome probability when the sweep runs in `ambiguous`
/// mode: one in twenty PUT/DELETEs is applied but reports an error.
const AMBIGUOUS_RATE: f64 = 0.05;

/// Outcome of one crash-schedule run that upheld every invariant.
#[derive(Debug, Clone)]
pub struct CrashRunReport {
    /// Site names of the injected crashes, in firing order.
    pub fired: Vec<String>,
    /// Injected crashes observed by the driver (a crash during
    /// recovery itself also counts).
    pub crashes: usize,
    /// Orphaned objects the post-crash leak scans reclaimed.
    pub reclaimed: usize,
    /// Rows the table holds at the end of the schedule.
    pub rows: usize,
    /// Order-insensitive fingerprint of (fired sites, final rows,
    /// surviving `data/` keys) for cross-run determinism checks.
    pub digest: u64,
    /// Deterministic metrics snapshot (JSON text) covering the whole
    /// run: depot counters, S3 requests by verb, injected faults,
    /// retries, mergeout totals. Byte-identical across same-seed runs.
    pub metrics: String,
}

/// Arm a seeded plan over every named site and run the schedule.
pub fn seeded_crash_schedule(seed: u64, ambiguous: bool) -> Result<CrashRunReport, String> {
    crash_schedule(FaultPlan::seeded(seed, SITES, NODES as u64), seed, ambiguous)
}

/// Kill-and-restart every node in turn. Cycling even healthy nodes
/// gives each a fresh instance id, so uploads orphaned by an earlier
/// crash stop looking like a live node's in-flight work and the leak
/// scan may reclaim them. A fault firing *during* recovery (e.g. a
/// checkpoint site reached while catching up) counts as one more crash
/// and the restart is retried — the plan is one-shot, so the second
/// attempt runs clean.
fn restart_all(db: &Arc<EonDb>, crashes: &mut usize) -> Result<(), String> {
    for id in 0..NODES as u64 {
        let mut attempts = 0;
        loop {
            if let Some(node) = db.membership().get(NodeId(id)) {
                if node.is_up() {
                    db.kill_node(NodeId(id))
                        .map_err(|e| format!("kill node{id}: {e}"))?;
                }
            }
            match db.restart_node(NodeId(id)) {
                Ok(_) => break,
                Err(EonError::FaultInjected(_)) if attempts == 0 => {
                    attempts += 1;
                    *crashes += 1;
                }
                Err(e) => return Err(format!("restart node{id}: {e}")),
            }
        }
    }
    Ok(())
}

/// Run one schedule step. An injected crash "kills the process": the
/// driver restarts every node (fresh instances, local recovery from
/// shared storage) and re-runs the step, which must then succeed —
/// every fault site sits *before* its commit, so a crashed step left
/// no committed trace and the retry is a plain re-execution.
fn step<F>(db: &Arc<EonDb>, crashes: &mut usize, what: &str, f: F) -> Result<(), String>
where
    F: Fn(&Arc<EonDb>) -> eon_types::Result<()>,
{
    match f(db) {
        Ok(()) => Ok(()),
        Err(EonError::FaultInjected(site)) => {
            *crashes += 1;
            restart_all(db, crashes)?;
            f(db).map_err(|e| format!("{what}: retry after crash at {site} failed: {e}"))
        }
        Err(e) => Err(format!("{what}: {e}")),
    }
}

fn int_rows(range: std::ops::Range<i64>) -> Vec<Vec<Value>> {
    range.map(|i| vec![Value::Int(i), Value::Int(i * 7)]).collect()
}

fn scan_sorted(db: &Arc<EonDb>) -> Result<Vec<Vec<Value>>, String> {
    let mut rows = db
        .query(&Plan::scan(ScanSpec::new("t")))
        .map_err(|e| format!("scan: {e}"))?;
    rows.sort();
    Ok(rows)
}

/// Outcome of one flap-and-brownout schedule (DESIGN.md "Failure
/// detection & degraded modes") that upheld every invariant.
#[derive(Debug, Clone)]
pub struct HealthRunReport {
    /// The failure detector's declaration trace
    /// (`t<tick> <node> SUSPECT|DOWN|RECOVERED` per line) — the primary
    /// determinism artifact: same seed ⇒ byte-identical trace.
    pub trace: String,
    /// Supervisor auto-restarts (must be ≥ 1: the dead node came back
    /// with zero operator intervention).
    pub restarts: usize,
    /// Subscription-takeover catalog ops the supervisor committed.
    pub takeover_ops: usize,
    /// Queries served *during* the S3 brownout (depot-only reads).
    pub brownout_reads: usize,
    /// Writes the open breaker rejected fast with `StoreUnavailable`.
    pub write_fast_fails: usize,
    /// Writes that burned a full retry budget during the brownout
    /// (before the breaker opened; bounds the retry storm).
    pub write_slow_fails: usize,
    /// Rows the table holds at the end of the schedule.
    pub rows: usize,
    /// Fingerprint of (trace, final rows, surviving `data/` keys).
    pub digest: u64,
    /// Deterministic metrics snapshot (JSON text) for the whole run.
    pub metrics: String,
}

/// Seeded self-healing schedule: a node flap (kill, brief return, kill
/// again — hysteresis must declare DOWN exactly once), automatic
/// subscription takeover and auto-restart, then an S3 brownout window
/// during which depot-only reads keep serving while writes fast-fail,
/// with automatic breaker recovery after the brownout clears. The
/// driver never repairs anything itself — every recovery action comes
/// from `supervise_tick` or the breaker. Deterministic per seed.
pub fn flap_brownout_schedule(seed: u64) -> Result<HealthRunReport, String> {
    let registry = Registry::new();
    let s3 = Arc::new(S3SimFs::with_metrics(
        S3Config {
            seed,
            ..S3Config::instant()
        },
        &registry,
    ));
    // Serial writes: parallel uploads would race the breaker's failure
    // accounting and break byte-identical same-seed metrics.
    let config = EonConfig::new(NODES, NODES)
        .observability(registry.clone())
        .health_ticks(1, 2, 2)
        .supervisor_restart_ticks(3)
        .breaker(2, 3, 1)
        .load_workers(1);
    let db = EonDb::create(s3.clone(), config).map_err(|e| format!("create: {e}"))?;
    let s = schema![("id", Int), ("v", Int)];
    db.create_table(
        "t",
        s.clone(),
        vec![Projection::super_projection("p", &s, &[0], &[0])],
    )
    .map_err(|e| format!("create_table: {e}"))?;

    let mut model = TableModel::new("t");
    let batch = int_rows(0..600);
    db.copy_into("t", batch.clone())
        .map_err(|e| format!("copy: {e}"))?;
    model.rows.extend(batch);
    // Warm every depot so brownout reads are pure cache hits.
    scan_sorted(&db)?;

    let mut report = HealthRunReport {
        trace: String::new(),
        restarts: 0,
        takeover_ops: 0,
        brownout_reads: 0,
        write_fast_fails: 0,
        write_slow_fails: 0,
        rows: 0,
        digest: 0,
        metrics: String::new(),
    };

    // ---- Phase 1: node flap -------------------------------------
    // The victim is seed-derived; the schedule of kills/returns is
    // fixed in ticks. kill → miss (SUSPECT) → brief return (one hit:
    // below the recover_after=2 hysteresis, misses keep accumulating)
    // → kill → miss (DOWN, exactly once). Takeover and auto-restart
    // then run with zero operator involvement.
    let victim = NodeId(seed % NODES as u64);
    let mut want = model.rows.clone();
    want.sort();
    db.kill_node(victim).map_err(|e| format!("kill: {e}"))?;
    for tick in 1..=14u64 {
        if tick == 2 {
            // Flap up: the node blips back for one tick...
            db.restart_node(victim).map_err(|e| format!("flap up: {e}"))?;
        }
        if tick == 3 {
            // ...and dies again before hysteresis clears its misses.
            db.kill_node(victim).map_err(|e| format!("flap down: {e}"))?;
        }
        let r = db.supervise_tick();
        report.takeover_ops += r.takeover_ops;
        report.restarts += r.restarted.len();
        if !r.errors.is_empty() {
            return Err(format!("supervisor tick {tick}: {:?}", r.errors));
        }
        // Service continues throughout: exact answers on every tick.
        let got = scan_sorted(&db)?;
        if got != want {
            return Err(format!(
                "tick {tick}: inexact scan during outage ({} rows, want {})",
                got.len(),
                want.len()
            ));
        }
    }
    if report.restarts == 0 {
        return Err("supervisor never auto-restarted the flapped node".into());
    }
    if !matches!(db.cluster_health(), eon_core::ClusterHealth::Healthy) {
        return Err(format!(
            "cluster not healthy after self-heal: {}",
            db.cluster_health()
        ));
    }

    // ---- Phase 2: S3 brownout -----------------------------------
    s3.set_brownout(true);
    for _ in 0..3 {
        let got = scan_sorted(&db)?;
        if got != want {
            return Err("depot-only read inexact during brownout".into());
        }
        report.brownout_reads += 1;
    }
    let brown_batch = int_rows(600..650);
    for i in 0..6 {
        match db.copy_into("t", brown_batch.clone()) {
            Ok(_) => return Err(format!("write {i} succeeded during brownout")),
            Err(EonError::StoreUnavailable(_)) => report.write_fast_fails += 1,
            Err(EonError::Storage(_)) => report.write_slow_fails += 1,
            Err(e) => return Err(format!("write {i}: unexpected error {e}")),
        }
    }
    if report.write_fast_fails == 0 {
        return Err("breaker never fast-failed a write during brownout".into());
    }
    // The retry storm is bounded: only the writes that tripped the
    // breaker plus the post-cooldown probe burn a backoff budget
    // (without the breaker all six would). 2 to trip + 1 probe = 3.
    if report.write_slow_fails > 3 {
        return Err(format!(
            "retry storm: {} writes burned a full backoff budget",
            report.write_slow_fails
        ));
    }

    // ---- Phase 3: brownout clears, breaker self-recovers --------
    s3.set_brownout(false);
    let recover_batch = int_rows(650..700);
    let mut recovered = false;
    for _ in 0..8 {
        match db.copy_into("t", recover_batch.clone()) {
            Ok(_) => {
                model.rows.extend(recover_batch.clone());
                recovered = true;
                break;
            }
            Err(EonError::StoreUnavailable(_)) => continue, // cooldown
            Err(e) => return Err(format!("post-brownout write: {e}")),
        }
    }
    if !recovered {
        return Err("breaker never recovered after the brownout cleared".into());
    }

    // Invariants: committed data exact, catalog references resolve,
    // aborted brownout uploads reclaimed.
    check_crash_invariants(&db, std::slice::from_ref(&model))
        .map_err(|e| format!("invariants: {e}"))?;

    report.trace = db.health_trace();
    let rows = scan_sorted(&db)?;
    report.rows = rows.len();
    let mut keys = db
        .shared()
        .list("data/")
        .map_err(|e| format!("list: {e}"))?;
    keys.sort();
    let mut h = DefaultHasher::new();
    report.trace.hash(&mut h);
    format!("{rows:?}").hash(&mut h);
    keys.hash(&mut h);
    report.digest = h.finish();
    report.metrics = registry.deterministic_snapshot().to_string();
    Ok(report)
}

/// The group-commit crash sites, in the order the seed cycles them.
/// Deliberately separate from [`SITES`]: the serial schedule never
/// opens an accumulation window, so these are only reachable here.
const GROUP_SITES: &[&str] = &[
    site::COMMIT_LEADER_APPEND,
    site::COMMIT_MID_DISTRIBUTION,
    site::COMMIT_POST_APPEND,
];

/// Outcome of one group-commit crash schedule that upheld every
/// invariant.
#[derive(Debug, Clone)]
pub struct GroupCommitRunReport {
    /// The armed crash site (seed-selected from the group-commit
    /// sites).
    pub site: String,
    /// Whether the batch survived the crash — true exactly when the
    /// crash hit after the coordinator's durable batch append.
    pub batch_durable: bool,
    /// Orphaned objects the post-crash leak scan reclaimed.
    pub reclaimed: usize,
    /// Rows the table holds at the end of the schedule.
    pub rows: usize,
    /// Fingerprint of (site, final rows, surviving `data/` keys).
    pub digest: u64,
    /// Deterministic metrics snapshot (JSON text) for the whole run.
    pub metrics: String,
}

/// Group-commit crash schedule (DESIGN.md "Group commit"): park a full
/// batch of sequenced concurrent single-row COPYs in the accumulator,
/// crash the batch leader at a seed-selected point — before the
/// coordinator's durable append, mid-distribution, or after every
/// append but before waking the members — then cold-restart the whole
/// cluster (the leader's death loses every in-memory catalog) and
/// verify the batch-durability invariant:
///
/// * **prefix-or-nothing, never a gap**: every node's durable log
///   holds the whole batch or none of it — the batch is one atomic
///   multi-record file;
/// * a leader-append crash aborts the batch and the leak scan reclaims
///   every member's orphaned upload;
/// * a mid-distribution or post-append crash commits the batch — the
///   laggard peers converge from the most-advanced durable log;
/// * the cluster serves normal traffic afterwards, and the whole run
///   replays byte-identically for the same seed (sequenced arrivals
///   pin batch composition; `commit_group_max` closes the batch at
///   exactly the planned membership).
pub fn crash_schedule_group_commit(seed: u64) -> Result<GroupCommitRunReport, String> {
    const WRITERS: usize = 4;
    let armed = GROUP_SITES[(seed % GROUP_SITES.len() as u64) as usize];
    let registry = Registry::new();
    let s3 = Arc::new(S3SimFs::with_metrics(
        S3Config {
            seed,
            ..S3Config::instant()
        },
        &registry,
    ));
    let faults = FaultPlan::inert();
    let config = EonConfig::new(NODES, NODES)
        .faults(faults.clone())
        .observability(registry.clone())
        .commit_group_max(WRITERS)
        .load_workers(1);
    let db = EonDb::create(s3.clone(), config).map_err(|e| format!("create: {e}"))?;
    let s = schema![("id", Int), ("v", Int)];
    db.create_table(
        "t",
        s.clone(),
        vec![Projection::super_projection("p", &s, &[0], &[0])],
    )
    .map_err(|e| format!("create_table: {e}"))?;

    let mut model = TableModel::new("t");
    let base = int_rows(0..200);
    db.copy_into("t", base.clone())
        .map_err(|e| format!("base copy: {e}"))?;
    model.rows.extend(base);

    // Arm the crash and open the window only now: bootstrap ran serial
    // and quiet, so occurrence 0 of the armed site is the batch's.
    let v0 = db.version();
    faults.rearm(armed, 0, None);
    db.set_commit_group_window(500_000);

    // Sequenced arrivals: writer `i` starts once `i` statements are
    // parked, so batch composition (and upload order) is the plan's,
    // not the scheduler's. `commit_group_max == WRITERS` closes the
    // batch at exactly the planned membership.
    let batch_rows: Vec<Vec<Value>> = (0..WRITERS)
        .map(|i| vec![Value::Int(10_000 + i as i64), Value::Int(1)])
        .collect();
    let outcomes: Vec<eon_types::Result<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|i| {
                let db = db.clone();
                let row = batch_rows[i].clone();
                scope.spawn(move || {
                    while db.commit_group_queued() < i {
                        std::thread::yield_now();
                    }
                    db.copy_into("t", vec![row])
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, o) in outcomes.iter().enumerate() {
        match o {
            Err(EonError::FaultInjected(_)) => {}
            other => {
                return Err(format!(
                    "site {armed}: writer {i} expected a crash, got {other:?}"
                ))
            }
        }
    }

    // The leader process died: every in-memory catalog is gone. Each
    // node recovers from its local durable log alone, laggards replay
    // the most-advanced log's tail.
    let tip = db
        .cold_restart_all()
        .map_err(|e| format!("site {armed}: cold restart: {e}"))?;
    let expect_durable = armed != site::COMMIT_LEADER_APPEND;
    let batch_durable = tip.0 == v0.0 + WRITERS as u64;
    if batch_durable != expect_durable {
        return Err(format!(
            "site {armed}: batch durable={batch_durable}, expected {expect_durable} (v0 {} tip {})",
            v0.0, tip.0
        ));
    }
    // Prefix-or-nothing on every node: the whole batch or none of it,
    // never a partial suffix of members missing.
    let want = if expect_durable { WRITERS } else { 0 };
    for node in db.membership().up_nodes() {
        let got = node
            .store
            .read_records_after(v0)
            .map_err(|e| format!("read_records_after: {e}"))?
            .len();
        if got != want {
            return Err(format!(
                "site {armed}: {} holds {got} batch records durably, want {want}",
                node.id
            ));
        }
    }
    if expect_durable {
        model.rows.extend(batch_rows.iter().cloned());
    }

    // Normal service resumes (small window: a lone statement commits as
    // a singleton batch without waiting out the chaos window).
    db.set_commit_group_window(2);
    let extra = int_rows(200..260);
    db.copy_into("t", extra.clone())
        .map_err(|e| format!("site {armed}: post-crash copy: {e}"))?;
    model.rows.extend(extra);

    // Invariants: committed data answers exactly; an aborted batch's
    // uploads are crash orphans the leak scan must reclaim (the abort
    // path deliberately leaves them — the "process died").
    let report = check_crash_invariants(&db, std::slice::from_ref(&model))
        .map_err(|e| format!("site {armed}: invariants: {e}"))?;
    let reclaimed = report.reclaimed.len();
    if !expect_durable && reclaimed < WRITERS {
        return Err(format!(
            "site {armed}: aborted batch left only {reclaimed} reclaimable orphans, want >= {WRITERS}"
        ));
    }

    let rows = scan_sorted(&db)?;
    let mut keys = db
        .shared()
        .list("data/")
        .map_err(|e| format!("list: {e}"))?;
    keys.sort();
    let mut h = DefaultHasher::new();
    armed.hash(&mut h);
    format!("{rows:?}").hash(&mut h);
    keys.hash(&mut h);
    Ok(GroupCommitRunReport {
        site: armed.to_owned(),
        batch_durable,
        reclaimed,
        rows: rows.len(),
        digest: h.finish(),
        metrics: registry.deterministic_snapshot().to_string(),
    })
}

/// Run the full crash schedule with `plan` armed. Returns the report
/// if every step completed and every invariant held, else a
/// description of the first violation.
pub fn crash_schedule(
    plan: FaultInjector,
    s3_seed: u64,
    ambiguous: bool,
) -> Result<CrashRunReport, String> {
    crash_schedule_encoded(plan, s3_seed, ambiguous, None)
}

/// [`crash_schedule`] with every container force-encoded as `force`
/// (compression-aware execution under crashes): the schedule's scans
/// then run on RLE runs or dictionary codes rather than decoded rows,
/// and determinism must hold anyway — same seed, same force ⇒ same
/// fired sites, digest, and metrics snapshot.
pub fn crash_schedule_encoded(
    plan: FaultInjector,
    s3_seed: u64,
    ambiguous: bool,
    force: Option<eon_columnar::Encoding>,
) -> Result<CrashRunReport, String> {
    crash_schedule_with(plan, s3_seed, ambiguous, force, false)
}

/// [`crash_schedule`] with S3-Select pushdown forced eager (the
/// crossover knobs opened so the schedule's small containers qualify):
/// mid-schedule selective scans and partial aggregates then answer
/// below the GET — against delete-vectored containers, across injected
/// crashes — and determinism must hold anyway. Selects roll the same
/// keyed-hash fault dice as every other verb, so same seed ⇒ same
/// fired sites, digest, and metrics snapshot.
pub fn crash_schedule_pushdown(
    plan: FaultInjector,
    s3_seed: u64,
    ambiguous: bool,
) -> Result<CrashRunReport, String> {
    crash_schedule_with(plan, s3_seed, ambiguous, None, true)
}

fn crash_schedule_with(
    plan: FaultInjector,
    s3_seed: u64,
    ambiguous: bool,
    force: Option<eon_columnar::Encoding>,
    eager_pushdown: bool,
) -> Result<CrashRunReport, String> {
    let registry = Registry::new();
    let s3 = Arc::new(S3SimFs::with_metrics(
        S3Config {
            ambiguous_rate: if ambiguous { AMBIGUOUS_RATE } else { 0.0 },
            seed: s3_seed,
            ..S3Config::instant()
        },
        &registry,
    ));
    let mut config = EonConfig::new(NODES, NODES)
        .faults(plan.clone())
        .force_encoding(force)
        .observability(registry.clone());
    if eager_pushdown {
        config = config.pushdown_min_bytes(0).pushdown_max_selectivity(1.0);
    }
    // No fault site precedes the first commit, so creation cannot crash.
    let db = EonDb::create(s3.clone(), config.clone()).map_err(|e| format!("create: {e}"))?;
    let s = schema![("id", Int), ("v", Int)];
    db.create_table(
        "t",
        s.clone(),
        vec![Projection::super_projection("p", &s, &[0], &[0])],
    )
    .map_err(|e| format!("create_table: {e}"))?;

    let mut model = TableModel::new("t");
    let mut crashes = 0usize;
    let mut reclaimed = 0usize;

    // Two loads: exercises load.pre_upload / load.upload /
    // load.pre_commit, the second against a non-empty table.
    for batch in [int_rows(0..600), int_rows(600..1200)] {
        step(&db, &mut crashes, "copy", |db| {
            db.copy_into("t", batch.clone()).map(|_| ())
        })?;
        model.rows.extend(batch);
    }

    // Parallel scan: the query.worker.local site kills a participant
    // mid-query; failover must still return the exact answer.
    let got = scan_sorted(&db)?;
    let mut want = model.rows.clone();
    want.sort();
    if got != want {
        return Err(format!(
            "mid-schedule scan inexact: got {} rows, want {}",
            got.len(),
            want.len()
        ));
    }

    // DML: delete vectors via dml.upload / dml.pre_commit.
    step(&db, &mut crashes, "delete", |db| {
        db.delete_where("t", &Predicate::cmp(0, CmpOp::Lt, 200i64))
            .map(|_| ())
    })?;
    model.rows.retain(|r| !matches!(r[0], Value::Int(i) if i < 200));

    // With pushdown eager, a selective scan and a global partial
    // aggregate answer below the GET against the delete-vectored
    // containers — both must match the model exactly, mid-schedule.
    if eager_pushdown {
        let pred = Predicate::cmp(0, CmpOp::Ge, 900i64);
        let mut got = db
            .query(&Plan::scan(ScanSpec::new("t").predicate(pred.clone())))
            .map_err(|e| format!("pushdown scan: {e}"))?;
        got.sort();
        let mut want: Vec<Vec<Value>> = model
            .rows
            .iter()
            .filter(|r| matches!(r[0], Value::Int(i) if i >= 900))
            .cloned()
            .collect();
        want.sort();
        if got != want {
            return Err(format!(
                "pushdown scan inexact: got {} rows, want {}",
                got.len(),
                want.len()
            ));
        }
        let agg = db
            .query(
                &Plan::scan(ScanSpec::new("t").predicate(pred)).aggregate(
                    vec![],
                    vec![AggSpec::sum(Expr::col(1)), AggSpec::count_star()],
                ),
            )
            .map_err(|e| format!("pushdown agg: {e}"))?;
        let want_sum: i64 = want
            .iter()
            .map(|r| match r[1] {
                Value::Int(v) => v,
                _ => 0,
            })
            .sum();
        let want_agg = vec![vec![Value::Int(want_sum), Value::Int(want.len() as i64)]];
        if agg != want_agg {
            return Err(format!("pushdown agg inexact: got {agg:?}, want {want_agg:?}"));
        }
    }

    // Mergeout rewrites containers (mergeout.pre_write / pre_commit)
    // and parks the replaced files with the reaper.
    step(&db, &mut crashes, "mergeout", |db| {
        db.run_mergeout().map(|_| ())
    })?;

    // Metadata sync: checkpoints (catalog.ckpt.pre_write), per-node
    // uploads (catalog.sync.*), and cluster_info (sync.pre_info_write).
    step(&db, &mut crashes, "sync", |db| {
        db.sync_metadata(1_000).map(|_| ())
    })?;

    // One more load after the sync so revive has to recover past the
    // last checkpoint from the txn-log tail.
    let batch = int_rows(1200..1500);
    step(&db, &mut crashes, "copy", |db| {
        db.copy_into("t", batch.clone()).map(|_| ())
    })?;
    model.rows.extend(batch);

    // Unconditional full restart: whatever crashed above, every node
    // now recovers from disk + shared storage under a fresh instance.
    restart_all(&db, &mut crashes)?;

    // Final sync so the consensus truncation covers every commit —
    // revive must lose nothing.
    step(&db, &mut crashes, "final sync", |db| {
        db.sync_metadata(2_000).map(|_| ())
    })?;

    let report = check_crash_invariants(&db, std::slice::from_ref(&model))
        .map_err(|e| format!("post-restart invariants: {e}"))?;
    reclaimed += report.reclaimed.len();

    // Cluster death and §3.5 revive: drop the old cluster, wait out
    // the lease, and bring the database back from shared storage
    // alone. The revive sites crash after the lease check and before
    // the new cluster_info write; both leave shared storage revivable.
    drop(db);
    let revive_now = 5_000_000;
    let db = match EonDb::revive(s3.clone(), config.clone(), revive_now) {
        Ok(db) => db,
        Err(EonError::FaultInjected(_)) => {
            crashes += 1;
            EonDb::revive(s3.clone(), config.clone(), revive_now)
                .map_err(|e| format!("revive retry: {e}"))?
        }
        Err(e) => return Err(format!("revive: {e}")),
    };

    let report = check_crash_invariants(&db, std::slice::from_ref(&model))
        .map_err(|e| format!("post-revive invariants: {e}"))?;
    reclaimed += report.reclaimed.len();

    // Determinism fingerprint: what crashed, what the table holds, and
    // which objects survived on shared storage.
    let fired: Vec<String> = plan.fired().into_iter().map(|e| e.site).collect();
    let rows = scan_sorted(&db)?;
    let mut keys = db
        .shared()
        .list("data/")
        .map_err(|e| format!("list: {e}"))?;
    keys.sort();
    let mut h = DefaultHasher::new();
    fired.hash(&mut h);
    format!("{rows:?}").hash(&mut h);
    keys.hash(&mut h);

    Ok(CrashRunReport {
        fired,
        crashes,
        reclaimed,
        rows: rows.len(),
        digest: h.finish(),
        metrics: registry.deterministic_snapshot().to_string(),
    })
}
