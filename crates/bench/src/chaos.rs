//! Crash-schedule chaos harness (DESIGN.md "Fault model").
//!
//! Drives a fixed workload schedule — loads, a parallel query, DML,
//! mergeout, metadata sync, restart of every node, and a full §3.5
//! revive — against a cluster whose [`FaultPlan`] is armed to crash at
//! one named site. After every injected crash the harness restarts the
//! dead nodes and re-runs the failed step (the plan is one-shot, so the
//! retry runs clean), then verifies the crash-consistency invariants
//! via [`eon_core::check_crash_invariants`]:
//!
//! * committed data answers **exactly** (nothing lost, nothing
//!   duplicated, no uncommitted rows visible);
//! * every catalog reference resolves on shared storage;
//! * the leak scan reclaims every crash-orphaned upload.
//!
//! The whole run is deterministic for a given `(seed, ambiguous)`
//! pair: the fault plan, the S3 simulator's failure dice, participant
//! selection, and mergeout all draw from seeded RNGs, so two runs fire
//! the same crashes and converge to the same final state. The
//! [`CrashRunReport::digest`] folds the fired sites, the final table
//! contents, and the surviving `data/` keys into one value the
//! determinism tests (and `chaos_sweep --seeds N`) compare across runs.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use eon_columnar::pruning::CmpOp;
use eon_columnar::{Predicate, Projection};
use eon_core::{check_crash_invariants, EonConfig, EonDb, TableModel};
use eon_exec::{Plan, ScanSpec};
use eon_obs::Registry;
use eon_storage::fault::SITES;
use eon_storage::{FaultInjector, FaultPlan, S3Config, S3SimFs};
use eon_types::{schema, EonError, NodeId, Value};

/// Nodes (= shards) in the chaos cluster. Small enough to keep a
/// 32-seed sweep fast, large enough that one dead node leaves the
/// cluster viable (k-safety 1) and failover has somewhere to go.
const NODES: usize = 3;

/// Ambiguous-outcome probability when the sweep runs in `ambiguous`
/// mode: one in twenty PUT/DELETEs is applied but reports an error.
const AMBIGUOUS_RATE: f64 = 0.05;

/// Outcome of one crash-schedule run that upheld every invariant.
#[derive(Debug, Clone)]
pub struct CrashRunReport {
    /// Site names of the injected crashes, in firing order.
    pub fired: Vec<String>,
    /// Injected crashes observed by the driver (a crash during
    /// recovery itself also counts).
    pub crashes: usize,
    /// Orphaned objects the post-crash leak scans reclaimed.
    pub reclaimed: usize,
    /// Rows the table holds at the end of the schedule.
    pub rows: usize,
    /// Order-insensitive fingerprint of (fired sites, final rows,
    /// surviving `data/` keys) for cross-run determinism checks.
    pub digest: u64,
    /// Deterministic metrics snapshot (JSON text) covering the whole
    /// run: depot counters, S3 requests by verb, injected faults,
    /// retries, mergeout totals. Byte-identical across same-seed runs.
    pub metrics: String,
}

/// Arm a seeded plan over every named site and run the schedule.
pub fn seeded_crash_schedule(seed: u64, ambiguous: bool) -> Result<CrashRunReport, String> {
    crash_schedule(FaultPlan::seeded(seed, SITES, NODES as u64), seed, ambiguous)
}

/// Kill-and-restart every node in turn. Cycling even healthy nodes
/// gives each a fresh instance id, so uploads orphaned by an earlier
/// crash stop looking like a live node's in-flight work and the leak
/// scan may reclaim them. A fault firing *during* recovery (e.g. a
/// checkpoint site reached while catching up) counts as one more crash
/// and the restart is retried — the plan is one-shot, so the second
/// attempt runs clean.
fn restart_all(db: &Arc<EonDb>, crashes: &mut usize) -> Result<(), String> {
    for id in 0..NODES as u64 {
        let mut attempts = 0;
        loop {
            if let Some(node) = db.membership().get(NodeId(id)) {
                if node.is_up() {
                    db.kill_node(NodeId(id))
                        .map_err(|e| format!("kill node{id}: {e}"))?;
                }
            }
            match db.restart_node(NodeId(id)) {
                Ok(_) => break,
                Err(EonError::FaultInjected(_)) if attempts == 0 => {
                    attempts += 1;
                    *crashes += 1;
                }
                Err(e) => return Err(format!("restart node{id}: {e}")),
            }
        }
    }
    Ok(())
}

/// Run one schedule step. An injected crash "kills the process": the
/// driver restarts every node (fresh instances, local recovery from
/// shared storage) and re-runs the step, which must then succeed —
/// every fault site sits *before* its commit, so a crashed step left
/// no committed trace and the retry is a plain re-execution.
fn step<F>(db: &Arc<EonDb>, crashes: &mut usize, what: &str, f: F) -> Result<(), String>
where
    F: Fn(&Arc<EonDb>) -> eon_types::Result<()>,
{
    match f(db) {
        Ok(()) => Ok(()),
        Err(EonError::FaultInjected(site)) => {
            *crashes += 1;
            restart_all(db, crashes)?;
            f(db).map_err(|e| format!("{what}: retry after crash at {site} failed: {e}"))
        }
        Err(e) => Err(format!("{what}: {e}")),
    }
}

fn int_rows(range: std::ops::Range<i64>) -> Vec<Vec<Value>> {
    range.map(|i| vec![Value::Int(i), Value::Int(i * 7)]).collect()
}

fn scan_sorted(db: &Arc<EonDb>) -> Result<Vec<Vec<Value>>, String> {
    let mut rows = db
        .query(&Plan::scan(ScanSpec::new("t")))
        .map_err(|e| format!("scan: {e}"))?;
    rows.sort();
    Ok(rows)
}

/// Run the full crash schedule with `plan` armed. Returns the report
/// if every step completed and every invariant held, else a
/// description of the first violation.
pub fn crash_schedule(
    plan: FaultInjector,
    s3_seed: u64,
    ambiguous: bool,
) -> Result<CrashRunReport, String> {
    let registry = Registry::new();
    let s3 = Arc::new(S3SimFs::with_metrics(
        S3Config {
            ambiguous_rate: if ambiguous { AMBIGUOUS_RATE } else { 0.0 },
            seed: s3_seed,
            ..S3Config::instant()
        },
        &registry,
    ));
    let config = EonConfig::new(NODES, NODES)
        .faults(plan.clone())
        .observability(registry.clone());
    // No fault site precedes the first commit, so creation cannot crash.
    let db = EonDb::create(s3.clone(), config.clone()).map_err(|e| format!("create: {e}"))?;
    let s = schema![("id", Int), ("v", Int)];
    db.create_table(
        "t",
        s.clone(),
        vec![Projection::super_projection("p", &s, &[0], &[0])],
    )
    .map_err(|e| format!("create_table: {e}"))?;

    let mut model = TableModel::new("t");
    let mut crashes = 0usize;
    let mut reclaimed = 0usize;

    // Two loads: exercises load.pre_upload / load.upload /
    // load.pre_commit, the second against a non-empty table.
    for batch in [int_rows(0..600), int_rows(600..1200)] {
        step(&db, &mut crashes, "copy", |db| {
            db.copy_into("t", batch.clone()).map(|_| ())
        })?;
        model.rows.extend(batch);
    }

    // Parallel scan: the query.worker.local site kills a participant
    // mid-query; failover must still return the exact answer.
    let got = scan_sorted(&db)?;
    let mut want = model.rows.clone();
    want.sort();
    if got != want {
        return Err(format!(
            "mid-schedule scan inexact: got {} rows, want {}",
            got.len(),
            want.len()
        ));
    }

    // DML: delete vectors via dml.upload / dml.pre_commit.
    step(&db, &mut crashes, "delete", |db| {
        db.delete_where("t", &Predicate::cmp(0, CmpOp::Lt, 200i64))
            .map(|_| ())
    })?;
    model.rows.retain(|r| !matches!(r[0], Value::Int(i) if i < 200));

    // Mergeout rewrites containers (mergeout.pre_write / pre_commit)
    // and parks the replaced files with the reaper.
    step(&db, &mut crashes, "mergeout", |db| {
        db.run_mergeout().map(|_| ())
    })?;

    // Metadata sync: checkpoints (catalog.ckpt.pre_write), per-node
    // uploads (catalog.sync.*), and cluster_info (sync.pre_info_write).
    step(&db, &mut crashes, "sync", |db| {
        db.sync_metadata(1_000).map(|_| ())
    })?;

    // One more load after the sync so revive has to recover past the
    // last checkpoint from the txn-log tail.
    let batch = int_rows(1200..1500);
    step(&db, &mut crashes, "copy", |db| {
        db.copy_into("t", batch.clone()).map(|_| ())
    })?;
    model.rows.extend(batch);

    // Unconditional full restart: whatever crashed above, every node
    // now recovers from disk + shared storage under a fresh instance.
    restart_all(&db, &mut crashes)?;

    // Final sync so the consensus truncation covers every commit —
    // revive must lose nothing.
    step(&db, &mut crashes, "final sync", |db| {
        db.sync_metadata(2_000).map(|_| ())
    })?;

    let report = check_crash_invariants(&db, std::slice::from_ref(&model))
        .map_err(|e| format!("post-restart invariants: {e}"))?;
    reclaimed += report.reclaimed.len();

    // Cluster death and §3.5 revive: drop the old cluster, wait out
    // the lease, and bring the database back from shared storage
    // alone. The revive sites crash after the lease check and before
    // the new cluster_info write; both leave shared storage revivable.
    drop(db);
    let revive_now = 5_000_000;
    let db = match EonDb::revive(s3.clone(), config.clone(), revive_now) {
        Ok(db) => db,
        Err(EonError::FaultInjected(_)) => {
            crashes += 1;
            EonDb::revive(s3.clone(), config.clone(), revive_now)
                .map_err(|e| format!("revive retry: {e}"))?
        }
        Err(e) => return Err(format!("revive: {e}")),
    };

    let report = check_crash_invariants(&db, std::slice::from_ref(&model))
        .map_err(|e| format!("post-revive invariants: {e}"))?;
    reclaimed += report.reclaimed.len();

    // Determinism fingerprint: what crashed, what the table holds, and
    // which objects survived on shared storage.
    let fired: Vec<String> = plan.fired().into_iter().map(|e| e.site).collect();
    let rows = scan_sorted(&db)?;
    let mut keys = db
        .shared()
        .list("data/")
        .map_err(|e| format!("list: {e}"))?;
    keys.sort();
    let mut h = DefaultHasher::new();
    fired.hash(&mut h);
    format!("{rows:?}").hash(&mut h);
    keys.hash(&mut h);

    Ok(CrashRunReport {
        fired,
        crashes,
        reclaimed,
        rows: rows.len(),
        digest: h.finish(),
        metrics: registry.deterministic_snapshot().to_string(),
    })
}
