//! Plan builders for TPC-H Q1–Q20 (the Fig 10 x-axis).
//!
//! Queries keep TPC-H's operator shapes against the plan language of
//! `eon-exec`. Documented simplifications (we build plans by hand, not
//! through a SQL optimizer):
//!
//! * correlated subqueries become two-phase plans (Q2, Q15, Q17, Q18)
//!   or constant thresholds (Q11);
//! * queries whose aggregates sit *below* joins run with `Global`
//!   scans, i.e. single-node (Q13, Q15, Q17, Q18, Q20) — the
//!   distributed split only parallelizes topmost aggregates;
//! * substitution parameters are fixed at the spec defaults.
//!
//! Distribution rule: `lineitem`/`orders` scans are shard-local (they
//! are co-segmented on the order key, so their join is a §4 local
//! join); every other joined table is `Global` (broadcast), and
//! `nation`/`region` are replicated projections anyway.

use eon_columnar::pruning::CmpOp;
use eon_columnar::Predicate;
use eon_exec::{AggFunc, AggSpec, Expr, JoinKind, Plan, ScanSpec, SortKey};
use eon_types::value::ymd_to_days;
use eon_types::Value;

/// Number of TPC-H queries implemented (Fig 10 shows Q1–Q20).
pub const TPCH_QUERY_COUNT: usize = 20;

fn d(y: i32, m: u32, day: u32) -> Value {
    Value::Date(ymd_to_days(y, m, day))
}

fn col(i: usize) -> Expr {
    Expr::col(i)
}

fn lit(v: impl Into<Value>) -> Expr {
    Expr::lit(v)
}

/// `price * (1 - discount)` given the column offsets.
fn revenue(price: usize, discount: usize) -> Expr {
    Expr::mul(col(price), Expr::sub(lit(1.0), col(discount)))
}

fn scan(table: &str) -> ScanSpec {
    ScanSpec::new(table)
}

/// Build TPC-H query `q` (1-based). Panics if out of range.
pub fn tpch_query(q: usize) -> Plan {
    match q {
        1 => q1(),
        2 => q2(),
        3 => q3(),
        4 => q4(),
        5 => q5(),
        6 => q6(),
        7 => q7(),
        8 => q8(),
        9 => q9(),
        10 => q10(),
        11 => q11(),
        12 => q12(),
        13 => q13(),
        14 => q14(),
        15 => q15(),
        16 => q16(),
        17 => q17(),
        18 => q18(),
        19 => q19(),
        20 => q20(),
        _ => panic!("TPC-H Q{q} not implemented (1..=20)"),
    }
}

/// Q1: pricing summary report.
fn q1() -> Plan {
    Plan::scan(scan("lineitem").predicate(Predicate::cmp(10, CmpOp::Le, d(1998, 9, 2))))
        .aggregate(
            vec![8, 9], // returnflag, linestatus
            vec![
                AggSpec::sum(col(4)),
                AggSpec::sum(col(5)),
                AggSpec::sum(revenue(5, 6)),
                AggSpec::sum(Expr::mul(revenue(5, 6), Expr::add(lit(1.0), col(7)))),
                AggSpec::avg(col(4)),
                AggSpec::avg(col(5)),
                AggSpec::avg(col(6)),
                AggSpec::count_star(),
            ],
        )
        .sort(vec![SortKey::asc(0), SortKey::asc(1)])
}

/// Q2 (simplified): min supply cost per qualifying part in EUROPE; the
/// spec's correlated "equals the minimum" filter becomes the grouped
/// minimum itself.
fn q2() -> Plan {
    // partsupp(5) ⋈ supplier(7) ⋈ nation(4) ⋈ region(3) ⋈ part(9)
    Plan::scan(scan("partsupp"))
        .join(Plan::scan(scan("supplier").global()), vec![1], vec![0])
        .join(Plan::scan(scan("nation").global()), vec![8], vec![0])
        .join(
            Plan::scan(scan("region").global().predicate(Predicate::eq(1, "EUROPE"))),
            vec![14],
            vec![0],
        )
        .join(
            Plan::scan(scan("part").global().predicate(Predicate::eq(5, 15i64))),
            vec![0],
            vec![0],
        )
        .filter(Expr::like(col(23), "%BRASS"))
        .aggregate(
            vec![19, 21], // p_partkey, p_mfgr
            vec![AggSpec::min(col(3))],
        )
        .sort(vec![SortKey::asc(0)])
        .limit(100)
}

/// Q3: shipping priority.
fn q3() -> Plan {
    Plan::scan(scan("lineitem").predicate(Predicate::cmp(10, CmpOp::Gt, d(1995, 3, 15))))
        .join(
            Plan::scan(scan("orders").predicate(Predicate::cmp(4, CmpOp::Lt, d(1995, 3, 15)))),
            vec![0],
            vec![0],
        )
        .join(
            Plan::scan(scan("customer").global().predicate(Predicate::eq(6, "BUILDING"))),
            vec![17],
            vec![0],
        )
        .aggregate(
            vec![16, 20, 23], // o_orderkey, o_orderdate, o_shippriority
            vec![AggSpec::sum(revenue(5, 6))],
        )
        .sort(vec![SortKey::desc(3), SortKey::asc(1)])
        .limit(10)
}

/// Q4: order priority checking (semi join on late lineitems).
fn q4() -> Plan {
    let late_lines = Plan::scan(scan("lineitem"))
        .filter(Expr::cmp(CmpOp::Lt, col(11), col(12))); // commit < receipt
    Plan::scan(scan("orders").predicate(Predicate::And(vec![
        Predicate::cmp(4, CmpOp::Ge, d(1993, 7, 1)),
        Predicate::cmp(4, CmpOp::Lt, d(1993, 10, 1)),
    ])))
    .join_kind(late_lines, vec![0], vec![0], JoinKind::Semi)
    .aggregate(vec![5], vec![AggSpec::count_star()])
    .sort(vec![SortKey::asc(0)])
}

/// Q5: local supplier volume (ASIA).
fn q5() -> Plan {
    Plan::scan(scan("lineitem"))
        .join(
            Plan::scan(scan("orders").predicate(Predicate::And(vec![
                Predicate::cmp(4, CmpOp::Ge, d(1994, 1, 1)),
                Predicate::cmp(4, CmpOp::Lt, d(1995, 1, 1)),
            ]))),
            vec![0],
            vec![0],
        )
        .join(Plan::scan(scan("customer").global()), vec![17], vec![0])
        .join(Plan::scan(scan("supplier").global()), vec![2], vec![0])
        .filter(Expr::eq(col(28), col(36))) // c_nationkey = s_nationkey
        .join(Plan::scan(scan("nation").global()), vec![36], vec![0])
        .join(
            Plan::scan(scan("region").global().predicate(Predicate::eq(1, "ASIA"))),
            vec![42],
            vec![0],
        )
        .aggregate(vec![41], vec![AggSpec::sum(revenue(5, 6))]) // n_name
        .sort(vec![SortKey::desc(1)])
}

/// Q6: forecasting revenue change (pure pushdown scan).
fn q6() -> Plan {
    Plan::scan(scan("lineitem").predicate(Predicate::And(vec![
        Predicate::cmp(10, CmpOp::Ge, d(1994, 1, 1)),
        Predicate::cmp(10, CmpOp::Lt, d(1995, 1, 1)),
        Predicate::cmp(6, CmpOp::Ge, 0.05),
        Predicate::cmp(6, CmpOp::Le, 0.07),
        Predicate::cmp(4, CmpOp::Lt, 24.0),
    ])))
    .aggregate(vec![], vec![AggSpec::sum(Expr::mul(col(5), col(6)))])
}

/// Q7: volume shipping between FRANCE and GERMANY.
fn q7() -> Plan {
    let fr_de = |a: usize, b: usize| {
        Expr::Or(vec![
            Expr::And(vec![
                Expr::eq(col(a), lit("FRANCE")),
                Expr::eq(col(b), lit("GERMANY")),
            ]),
            Expr::And(vec![
                Expr::eq(col(a), lit("GERMANY")),
                Expr::eq(col(b), lit("FRANCE")),
            ]),
        ])
    };
    Plan::scan(scan("lineitem").predicate(Predicate::And(vec![
        Predicate::cmp(10, CmpOp::Ge, d(1995, 1, 1)),
        Predicate::cmp(10, CmpOp::Le, d(1996, 12, 31)),
    ])))
    .join(Plan::scan(scan("orders")), vec![0], vec![0])
    .join(Plan::scan(scan("customer").global()), vec![17], vec![0])
    .join(Plan::scan(scan("supplier").global()), vec![2], vec![0])
    .join(Plan::scan(scan("nation").global()), vec![36], vec![0]) // supp nation
    .join(Plan::scan(scan("nation").global()), vec![28], vec![0]) // cust nation
    .filter(fr_de(41, 45))
    .project(
        vec![
            col(41),
            col(45),
            Expr::ExtractYear(Box::new(col(10))),
            revenue(5, 6),
        ],
        vec!["supp_nation", "cust_nation", "l_year", "volume"],
    )
    .aggregate(vec![0, 1, 2], vec![AggSpec::sum(col(3))])
    .sort(vec![SortKey::asc(0), SortKey::asc(1), SortKey::asc(2)])
}

/// Q8: national market share (BRAZIL / AMERICA / ECONOMY ANODIZED
/// STEEL).
fn q8() -> Plan {
    Plan::scan(scan("lineitem"))
        .join(
            Plan::scan(scan("orders").predicate(Predicate::And(vec![
                Predicate::cmp(4, CmpOp::Ge, d(1995, 1, 1)),
                Predicate::cmp(4, CmpOp::Le, d(1996, 12, 31)),
            ]))),
            vec![0],
            vec![0],
        )
        .join(
            Plan::scan(
                scan("part")
                    .global()
                    .predicate(Predicate::eq(4, "ECONOMY ANODIZED STEEL")),
            ),
            vec![1],
            vec![0],
        )
        .join(Plan::scan(scan("customer").global()), vec![17], vec![0])
        .join(Plan::scan(scan("nation").global()), vec![37], vec![0]) // cust nation
        .join(
            Plan::scan(scan("region").global().predicate(Predicate::eq(1, "AMERICA"))),
            vec![44],
            vec![0],
        )
        .join(Plan::scan(scan("supplier").global()), vec![2], vec![0])
        .join(Plan::scan(scan("nation").global()), vec![52], vec![0]) // supp nation
        .project(
            vec![
                Expr::ExtractYear(Box::new(col(20))),
                Expr::Case {
                    whens: vec![(Expr::eq(col(57), lit("BRAZIL")), revenue(5, 6))],
                    otherwise: Box::new(lit(0.0)),
                },
                revenue(5, 6),
            ],
            vec!["o_year", "brazil_volume", "volume"],
        )
        .aggregate(vec![0], vec![AggSpec::sum(col(1)), AggSpec::sum(col(2))])
        .project(
            vec![col(0), Expr::div(col(1), col(2))],
            vec!["o_year", "mkt_share"],
        )
        .sort(vec![SortKey::asc(0)])
}

/// Q9: product type profit measure ("green" parts).
fn q9() -> Plan {
    Plan::scan(scan("lineitem"))
        .join(Plan::scan(scan("orders")), vec![0], vec![0])
        .join(Plan::scan(scan("part").global()), vec![1], vec![0])
        .filter(Expr::like(col(26), "%green%")) // p_name
        .join(Plan::scan(scan("supplier").global()), vec![2], vec![0])
        .join(Plan::scan(scan("nation").global()), vec![37], vec![0])
        .join(
            Plan::scan(scan("partsupp").global()),
            vec![1, 2],
            vec![0, 1],
        )
        .project(
            vec![
                col(42), // n_name
                Expr::ExtractYear(Box::new(col(20))),
                Expr::sub(revenue(5, 6), Expr::mul(col(48), col(4))),
            ],
            vec!["nation", "o_year", "amount"],
        )
        .aggregate(vec![0, 1], vec![AggSpec::sum(col(2))])
        .sort(vec![SortKey::asc(0), SortKey::desc(1)])
}

/// Q10: returned item reporting (top 20 customers).
fn q10() -> Plan {
    Plan::scan(scan("lineitem").predicate(Predicate::eq(8, "R")))
        .join(
            Plan::scan(scan("orders").predicate(Predicate::And(vec![
                Predicate::cmp(4, CmpOp::Ge, d(1993, 10, 1)),
                Predicate::cmp(4, CmpOp::Lt, d(1994, 1, 1)),
            ]))),
            vec![0],
            vec![0],
        )
        .join(Plan::scan(scan("customer").global()), vec![17], vec![0])
        .join(Plan::scan(scan("nation").global()), vec![28], vec![0])
        .aggregate(
            vec![25, 26, 30, 34], // c_custkey, c_name, c_acctbal, n_name
            vec![AggSpec::sum(revenue(5, 6))],
        )
        .sort(vec![SortKey::desc(4)])
        .limit(20)
}

/// Q11 (simplified): important stock in GERMANY; the spec's
/// "> fraction of total" subquery becomes a constant threshold.
fn q11() -> Plan {
    Plan::scan(scan("partsupp"))
        .join(Plan::scan(scan("supplier").global()), vec![1], vec![0])
        .join(
            Plan::scan(scan("nation").global().predicate(Predicate::eq(1, "GERMANY"))),
            vec![8],
            vec![0],
        )
        .aggregate(vec![0], vec![AggSpec::sum(Expr::mul(col(3), col(2)))])
        .filter(Expr::cmp(CmpOp::Gt, col(1), lit(75_000.0)))
        .sort(vec![SortKey::desc(1)])
}

/// Q12: shipping modes and order priority.
fn q12() -> Plan {
    let urgent = Expr::Or(vec![
        Expr::eq(col(21), lit("1-URGENT")),
        Expr::eq(col(21), lit("2-HIGH")),
    ]);
    Plan::scan(scan("lineitem").predicate(Predicate::And(vec![
        Predicate::Or(vec![Predicate::eq(14, "MAIL"), Predicate::eq(14, "SHIP")]),
        Predicate::cmp(12, CmpOp::Ge, d(1994, 1, 1)),
        Predicate::cmp(12, CmpOp::Lt, d(1995, 1, 1)),
    ])))
    .filter(Expr::And(vec![
        Expr::cmp(CmpOp::Lt, col(11), col(12)), // commit < receipt
        Expr::cmp(CmpOp::Lt, col(10), col(11)), // ship < commit
    ]))
    .join(Plan::scan(scan("orders")), vec![0], vec![0])
    .aggregate(
        vec![14], // l_shipmode
        vec![
            AggSpec::sum(Expr::Case {
                whens: vec![(urgent.clone(), lit(1i64))],
                otherwise: Box::new(lit(0i64)),
            }),
            AggSpec::sum(Expr::Case {
                whens: vec![(urgent, lit(0i64))],
                otherwise: Box::new(lit(1i64)),
            }),
        ],
    )
    .sort(vec![SortKey::asc(0)])
}

/// Q13: customer distribution (two-level aggregate ⇒ Global scans).
fn q13() -> Plan {
    Plan::scan(scan("customer").global())
        .join_kind(
            Plan::scan(scan("orders").global())
                .filter(Expr::Like {
                    expr: Box::new(col(8)),
                    pattern: "%special%requests%".into(),
                    negated: true,
                }),
            vec![0],
            vec![1],
            JoinKind::Left,
        )
        .aggregate(
            vec![0],
            vec![AggSpec::new(AggFunc::Count, col(8))], // count(o_orderkey), NULL-skipping
        )
        .aggregate(vec![1], vec![AggSpec::count_star()])
        .sort(vec![SortKey::desc(1), SortKey::desc(0)])
}

/// Q14: promotion effect.
fn q14() -> Plan {
    Plan::scan(scan("lineitem").predicate(Predicate::And(vec![
        Predicate::cmp(10, CmpOp::Ge, d(1995, 9, 1)),
        Predicate::cmp(10, CmpOp::Lt, d(1995, 10, 1)),
    ])))
    .join(Plan::scan(scan("part").global()), vec![1], vec![0])
    .project(
        vec![
            Expr::Case {
                whens: vec![(Expr::like(col(20), "PROMO%"), revenue(5, 6))],
                otherwise: Box::new(lit(0.0)),
            },
            revenue(5, 6),
        ],
        vec!["promo", "rev"],
    )
    .aggregate(vec![], vec![AggSpec::sum(col(0)), AggSpec::sum(col(1))])
    .project(
        vec![Expr::mul(lit(100.0), Expr::div(col(0), col(1)))],
        vec!["promo_revenue"],
    )
}

/// Q15 (simplified): top supplier by quarterly revenue; the spec's
/// "= max(total)" becomes ORDER BY … LIMIT 1. Aggregate feeds a join ⇒
/// Global scans.
fn q15() -> Plan {
    Plan::scan(scan("lineitem").global().predicate(Predicate::And(vec![
        Predicate::cmp(10, CmpOp::Ge, d(1996, 1, 1)),
        Predicate::cmp(10, CmpOp::Lt, d(1996, 4, 1)),
    ])))
    .aggregate(vec![2], vec![AggSpec::sum(revenue(5, 6))])
    .join(Plan::scan(scan("supplier").global()), vec![0], vec![0])
    .project(
        vec![col(0), col(3), col(1)],
        vec!["s_suppkey", "s_name", "total_revenue"],
    )
    .sort(vec![SortKey::desc(2), SortKey::asc(0)])
    .limit(1)
}

/// Q16: parts/supplier relationship (anti join + count distinct).
fn q16() -> Plan {
    let complainers = Plan::scan(scan("supplier").global())
        .filter(Expr::like(col(6), "%Customer%Complaints%"));
    Plan::scan(scan("partsupp"))
        .join(
            Plan::scan(scan("part").global().predicate(Predicate::cmp(
                3,
                CmpOp::Ne,
                "Brand#45",
            ))),
            vec![0],
            vec![0],
        )
        .filter(Expr::And(vec![
            Expr::Like {
                expr: Box::new(col(9)),
                pattern: "MEDIUM POLISHED%".into(),
                negated: true,
            },
            Expr::InList {
                expr: Box::new(col(10)),
                list: vec![
                    Value::Int(49),
                    Value::Int(14),
                    Value::Int(23),
                    Value::Int(45),
                    Value::Int(19),
                    Value::Int(3),
                    Value::Int(36),
                    Value::Int(9),
                ],
                negated: false,
            },
        ]))
        .join_kind(complainers, vec![1], vec![0], JoinKind::Anti)
        .aggregate(
            vec![8, 9, 10], // brand, type, size
            vec![AggSpec::new(AggFunc::CountDistinct, col(1))],
        )
        .sort(vec![
            SortKey::desc(3),
            SortKey::asc(0),
            SortKey::asc(1),
            SortKey::asc(2),
        ])
}

/// Q17 (two-phase avg ⇒ Global scans): small-quantity-order revenue.
fn q17() -> Plan {
    let avg_qty = Plan::scan(scan("lineitem").global())
        .aggregate(vec![1], vec![AggSpec::avg(col(4))]); // per partkey
    Plan::scan(scan("lineitem").global())
        .join(
            Plan::scan(scan("part").global().predicate(Predicate::And(vec![
                Predicate::eq(3, "Brand#23"),
                Predicate::eq(6, "MED BOX"),
            ]))),
            vec![1],
            vec![0],
        )
        .join(avg_qty, vec![1], vec![0])
        .filter(Expr::cmp(
            CmpOp::Lt,
            col(4),
            Expr::mul(lit(0.2), col(26)),
        ))
        .aggregate(vec![], vec![AggSpec::sum(col(5))])
        .project(vec![Expr::div(col(0), lit(7.0))], vec!["avg_yearly"])
}

/// Q18 (aggregate feeds joins ⇒ Global scans): large volume customers.
fn q18() -> Plan {
    Plan::scan(scan("lineitem").global())
        .aggregate(vec![0], vec![AggSpec::sum(col(4))])
        .filter(Expr::cmp(CmpOp::Gt, col(1), lit(300.0)))
        .join(Plan::scan(scan("orders").global()), vec![0], vec![0])
        .join(Plan::scan(scan("customer").global()), vec![3], vec![0])
        .project(
            vec![col(12), col(11), col(0), col(6), col(5), col(1)],
            vec![
                "c_name",
                "c_custkey",
                "o_orderkey",
                "o_orderdate",
                "o_totalprice",
                "sum_qty",
            ],
        )
        .sort(vec![SortKey::desc(4), SortKey::asc(3)])
        .limit(100)
}

/// Q19: discounted revenue (disjunctive predicates).
fn q19() -> Plan {
    let arm = |brand: &str, containers: &[&str], qlo: f64, qhi: f64, size_hi: i64| {
        Expr::And(vec![
            Expr::eq(col(19), lit(brand)),
            Expr::InList {
                expr: Box::new(col(22)),
                list: containers.iter().map(|c| Value::Str((*c).into())).collect(),
                negated: false,
            },
            Expr::cmp(CmpOp::Ge, col(4), lit(qlo)),
            Expr::cmp(CmpOp::Le, col(4), lit(qhi)),
            Expr::cmp(CmpOp::Le, col(21), lit(size_hi)),
            Expr::InList {
                expr: Box::new(col(14)),
                list: vec![Value::Str("AIR".into()), Value::Str("REG AIR".into())],
                negated: false,
            },
            Expr::eq(col(13), lit("DELIVER IN PERSON")),
        ])
    };
    Plan::scan(scan("lineitem"))
        .join(Plan::scan(scan("part").global()), vec![1], vec![0])
        .filter(Expr::Or(vec![
            arm("Brand#12", &["SM CASE", "SM BOX"], 1.0, 11.0, 5),
            arm("Brand#23", &["MED BAG", "MED BOX"], 10.0, 20.0, 10),
            arm("Brand#34", &["LG CASE", "LG BOX"], 20.0, 30.0, 15),
        ]))
        .aggregate(vec![], vec![AggSpec::sum(revenue(5, 6))])
}

/// Q20 (simplified semi-join chain ⇒ Global scans): potential part
/// promotion — CANADA suppliers of well-stocked "forest" parts.
fn q20() -> Plan {
    let forest_stock = Plan::scan(
        scan("partsupp")
            .global()
            .predicate(Predicate::cmp(2, CmpOp::Gt, 500i64)),
    )
    .join(Plan::scan(scan("part").global()), vec![0], vec![0])
    .filter(Expr::like(col(6), "forest%")) // p_name
    .project(vec![col(1)], vec!["ps_suppkey"]);
    Plan::scan(scan("supplier").global())
        .join(
            Plan::scan(scan("nation").global().predicate(Predicate::eq(1, "CANADA"))),
            vec![3],
            vec![0],
        )
        .join_kind(forest_stock, vec![0], vec![0], JoinKind::Semi)
        .project(vec![col(1), col(2)], vec!["s_name", "s_address"])
        .sort(vec![SortKey::asc(0)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_build() {
        for q in 1..=TPCH_QUERY_COUNT {
            let plan = tpch_query(q);
            assert!(!plan.tables().is_empty(), "Q{q} scans nothing");
        }
    }

    #[test]
    #[should_panic]
    fn q21_not_implemented() {
        tpch_query(21);
    }

    #[test]
    fn lineitem_queries_scan_lineitem() {
        for q in [1, 3, 6, 12, 14, 19] {
            assert!(
                tpch_query(q).tables().contains(&"lineitem"),
                "Q{q} missing lineitem"
            );
        }
    }
}
