//! TPC-H: schema, deterministic data generator, and Q1–Q20 plans.
//!
//! Substitution note (DESIGN.md §1): the paper runs official dbgen at
//! scale factor 200 on a 4-node cluster; we generate the same schema at
//! laptop scale. Row counts follow the spec's ratios: per unit of scale
//! factor — 150k customers, 1.5M orders, ~4.3 lineitems per order, 200k
//! parts, 10k suppliers, 800k partsupps, 25 nations, 5 regions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eon_columnar::Projection;
use eon_types::value::ymd_to_days;
use eon_types::{schema, Schema, Value};

pub mod queries;

pub use queries::{tpch_query, TPCH_QUERY_COUNT};

// ---------------------------------------------------------------- schema

pub fn region_schema() -> Schema {
    schema![("r_regionkey", Int), ("r_name", Str), ("r_comment", Str)]
}

pub fn nation_schema() -> Schema {
    schema![
        ("n_nationkey", Int),
        ("n_name", Str),
        ("n_regionkey", Int),
        ("n_comment", Str),
    ]
}

pub fn supplier_schema() -> Schema {
    schema![
        ("s_suppkey", Int),
        ("s_name", Str),
        ("s_address", Str),
        ("s_nationkey", Int),
        ("s_phone", Str),
        ("s_acctbal", Float),
        ("s_comment", Str),
    ]
}

pub fn customer_schema() -> Schema {
    schema![
        ("c_custkey", Int),
        ("c_name", Str),
        ("c_address", Str),
        ("c_nationkey", Int),
        ("c_phone", Str),
        ("c_acctbal", Float),
        ("c_mktsegment", Str),
        ("c_comment", Str),
    ]
}

pub fn part_schema() -> Schema {
    schema![
        ("p_partkey", Int),
        ("p_name", Str),
        ("p_mfgr", Str),
        ("p_brand", Str),
        ("p_type", Str),
        ("p_size", Int),
        ("p_container", Str),
        ("p_retailprice", Float),
        ("p_comment", Str),
    ]
}

pub fn partsupp_schema() -> Schema {
    schema![
        ("ps_partkey", Int),
        ("ps_suppkey", Int),
        ("ps_availqty", Int),
        ("ps_supplycost", Float),
        ("ps_comment", Str),
    ]
}

pub fn orders_schema() -> Schema {
    schema![
        ("o_orderkey", Int),
        ("o_custkey", Int),
        ("o_orderstatus", Str),
        ("o_totalprice", Float),
        ("o_orderdate", Date),
        ("o_orderpriority", Str),
        ("o_clerk", Str),
        ("o_shippriority", Int),
        ("o_comment", Str),
    ]
}

pub fn lineitem_schema() -> Schema {
    schema![
        ("l_orderkey", Int),
        ("l_partkey", Int),
        ("l_suppkey", Int),
        ("l_linenumber", Int),
        ("l_quantity", Float),
        ("l_extendedprice", Float),
        ("l_discount", Float),
        ("l_tax", Float),
        ("l_returnflag", Str),
        ("l_linestatus", Str),
        ("l_shipdate", Date),
        ("l_commitdate", Date),
        ("l_receiptdate", Date),
        ("l_shipinstruct", Str),
        ("l_shipmode", Str),
        ("l_comment", Str),
    ]
}

// ------------------------------------------------------------- generator

const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const INSTRUCTS: [&str; 4] = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];
const CONTAINERS: [&str; 8] = [
    "SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PKG", "WRAP JAR",
];
const TYPE_A: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_B: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_C: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const NAME_WORDS: [&str; 12] = [
    "almond", "antique", "aquamarine", "azure", "blanched", "blue", "chocolate", "forest",
    "green", "ivory", "linen", "navy",
];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1), ("EGYPT", 4),
    ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3), ("INDIA", 2), ("INDONESIA", 2),
    ("IRAN", 4), ("IRAQ", 4), ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0),
    ("MOROCCO", 0), ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// All eight tables, generated.
pub struct TpchData {
    pub region: Vec<Vec<Value>>,
    pub nation: Vec<Vec<Value>>,
    pub supplier: Vec<Vec<Value>>,
    pub customer: Vec<Vec<Value>>,
    pub part: Vec<Vec<Value>>,
    pub partsupp: Vec<Vec<Value>>,
    pub orders: Vec<Vec<Value>>,
    pub lineitem: Vec<Vec<Value>>,
}

fn s(v: &str) -> Value {
    Value::Str(v.to_owned())
}

impl TpchData {
    /// Generate at the given scale factor (1.0 = full spec ratios;
    /// figure reproduction uses 0.01–0.05). Deterministic per seed.
    pub fn generate(sf: f64, seed: u64) -> TpchData {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_customer = ((150_000.0 * sf) as i64).max(50);
        let n_orders = n_customer * 10;
        let n_part = ((200_000.0 * sf) as i64).max(80);
        let n_supplier = ((10_000.0 * sf) as i64).max(10);

        let region: Vec<Vec<Value>> = REGIONS
            .iter()
            .enumerate()
            .map(|(i, name)| vec![Value::Int(i as i64), s(name), s("about the region")])
            .collect();

        let nation: Vec<Vec<Value>> = NATIONS
            .iter()
            .enumerate()
            .map(|(i, (name, region))| {
                vec![Value::Int(i as i64), s(name), Value::Int(*region), s("nation notes")]
            })
            .collect();

        let supplier: Vec<Vec<Value>> = (0..n_supplier)
            .map(|k| {
                let complaint = rng.gen_bool(0.05);
                vec![
                    Value::Int(k),
                    Value::Str(format!("Supplier#{k:09}")),
                    Value::Str(format!("addr-{k}")),
                    Value::Int(rng.gen_range(0..25)),
                    Value::Str(format!("27-{k:07}")),
                    Value::Float((rng.gen_range(-99_999i64..999_999) as f64) / 100.0),
                    s(if complaint {
                        "careful Customer Complaints noted"
                    } else {
                        "dependable supplier"
                    }),
                ]
            })
            .collect();

        let customer: Vec<Vec<Value>> = (0..n_customer)
            .map(|k| {
                vec![
                    Value::Int(k),
                    Value::Str(format!("Customer#{k:09}")),
                    Value::Str(format!("addr-{k}")),
                    Value::Int(rng.gen_range(0..25)),
                    Value::Str(format!("13-{k:07}")),
                    Value::Float((rng.gen_range(-99_999i64..999_999) as f64) / 100.0),
                    s(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
                    s("customer comment"),
                ]
            })
            .collect();

        let part: Vec<Vec<Value>> = (0..n_part)
            .map(|k| {
                let ty = format!(
                    "{} {} {}",
                    TYPE_A[rng.gen_range(0..TYPE_A.len())],
                    TYPE_B[rng.gen_range(0..TYPE_B.len())],
                    TYPE_C[rng.gen_range(0..TYPE_C.len())]
                );
                let name = format!(
                    "{} {}",
                    NAME_WORDS[rng.gen_range(0..NAME_WORDS.len())],
                    NAME_WORDS[rng.gen_range(0..NAME_WORDS.len())]
                );
                vec![
                    Value::Int(k),
                    Value::Str(name),
                    Value::Str(format!("Manufacturer#{}", 1 + k % 5)),
                    Value::Str(format!("Brand#{}{}", 1 + k % 5, 1 + (k / 5) % 5)),
                    Value::Str(ty),
                    Value::Int(rng.gen_range(1..51)),
                    s(CONTAINERS[rng.gen_range(0..CONTAINERS.len())]),
                    Value::Float(900.0 + (k % 1000) as f64 / 10.0),
                    s("part comment"),
                ]
            })
            .collect();

        let partsupp: Vec<Vec<Value>> = (0..n_part)
            .flat_map(|p| {
                let mut rows = Vec::with_capacity(4);
                for i in 0..4 {
                    let sk = (p + i * (n_supplier / 4).max(1)) % n_supplier;
                    rows.push(vec![
                        Value::Int(p),
                        Value::Int(sk),
                        Value::Int(1 + (p * 7 + i * 13) % 9999),
                        Value::Float(1.0 + ((p * 31 + i * 17) % 99_900) as f64 / 100.0),
                        s("ps comment"),
                    ]);
                }
                rows
            })
            .collect();

        let start = ymd_to_days(1992, 1, 1);
        let span = ymd_to_days(1998, 8, 2) - start;

        let mut orders = Vec::with_capacity(n_orders as usize);
        let mut lineitem = Vec::new();
        for ok in 0..n_orders {
            let custkey = rng.gen_range(0..n_customer);
            let orderdate = start + rng.gen_range(0..span - 151);
            let special = rng.gen_bool(0.02);
            let n_lines = rng.gen_range(1..8);
            let mut total = 0.0f64;
            for ln in 0..n_lines {
                let partkey = rng.gen_range(0..n_part);
                let suppkey = rng.gen_range(0..n_supplier);
                let qty = rng.gen_range(1..51) as f64;
                let price = qty * (900.0 + (partkey % 1000) as f64 / 10.0) / 10.0;
                let discount = rng.gen_range(0..11) as f64 / 100.0;
                let tax = rng.gen_range(0..9) as f64 / 100.0;
                let shipdate = orderdate + rng.gen_range(1..122);
                let commitdate = orderdate + rng.gen_range(30..91);
                let receiptdate = shipdate + rng.gen_range(1..31);
                let today = ymd_to_days(1995, 6, 17);
                let (rf, ls) = if receiptdate <= today {
                    (if rng.gen_bool(0.5) { "R" } else { "A" }, "F")
                } else {
                    ("N", "O")
                };
                total += price * (1.0 - discount) * (1.0 + tax);
                lineitem.push(vec![
                    Value::Int(ok),
                    Value::Int(partkey),
                    Value::Int(suppkey),
                    Value::Int(ln),
                    Value::Float(qty),
                    Value::Float(price),
                    Value::Float(discount),
                    Value::Float(tax),
                    s(rf),
                    s(ls),
                    Value::Date(shipdate),
                    Value::Date(commitdate),
                    Value::Date(receiptdate),
                    s(INSTRUCTS[rng.gen_range(0..INSTRUCTS.len())]),
                    s(SHIPMODES[rng.gen_range(0..SHIPMODES.len())]),
                    s("lineitem comment"),
                ]);
            }
            orders.push(vec![
                Value::Int(ok),
                Value::Int(custkey),
                s(if rng.gen_bool(0.5) { "F" } else { "O" }),
                Value::Float(total),
                Value::Date(orderdate),
                s(PRIORITIES[rng.gen_range(0..PRIORITIES.len())]),
                Value::Str(format!("Clerk#{:09}", rng.gen_range(0..1000))),
                Value::Int(0),
                s(if special {
                    "was told to handle special requests carefully"
                } else {
                    "ordinary order comment"
                }),
            ]);
        }

        TpchData {
            region,
            nation,
            supplier,
            customer,
            part,
            partsupp,
            orders,
            lineitem,
        }
    }

    pub fn total_rows(&self) -> usize {
        self.region.len()
            + self.nation.len()
            + self.supplier.len()
            + self.customer.len()
            + self.part.len()
            + self.partsupp.len()
            + self.orders.len()
            + self.lineitem.len()
    }
}

// ------------------------------------------------------------ DDL + load

/// Table name, schema, sort column, segmentation column, replicated?
pub fn tpch_tables() -> Vec<(&'static str, Schema, usize, usize, bool)> {
    vec![
        ("region", region_schema(), 0, 0, true),
        ("nation", nation_schema(), 0, 0, true),
        ("supplier", supplier_schema(), 0, 0, false),
        ("customer", customer_schema(), 0, 0, false),
        ("part", part_schema(), 0, 0, false),
        ("partsupp", partsupp_schema(), 0, 0, false),
        ("orders", orders_schema(), 4, 0, false), // sorted by o_orderdate
        ("lineitem", lineitem_schema(), 10, 0, false), // sorted by l_shipdate
    ]
}

/// Create TPC-H tables and load generated data into an Eon database.
pub fn load_tpch_eon(db: &eon_core::EonDb, data: &TpchData) -> eon_types::Result<()> {
    for (name, schema, sort, seg, replicated) in tpch_tables() {
        let proj = if replicated {
            Projection::replicated(format!("{name}_rep"), &schema, &[sort])
        } else {
            Projection::super_projection(format!("{name}_super"), &schema, &[sort], &[seg])
        };
        db.create_table(name, schema, vec![proj])?;
    }
    for (name, rows) in table_rows(data) {
        db.copy_into(name, rows)?;
    }
    Ok(())
}

/// Same for the Enterprise baseline (no replicated projections there —
/// dimensions are segmented and broadcast at query time, the §9
/// contrast).
pub fn load_tpch_enterprise(
    db: &eon_enterprise::EnterpriseDb,
    data: &TpchData,
) -> eon_types::Result<()> {
    for (name, schema, sort, seg, _replicated) in tpch_tables() {
        let proj =
            Projection::super_projection(format!("{name}_super"), &schema, &[sort], &[seg]);
        db.create_table(name, schema, proj)?;
    }
    for (name, rows) in table_rows(data) {
        db.copy_into(name, rows)?;
    }
    Ok(())
}

fn table_rows(data: &TpchData) -> Vec<(&'static str, Vec<Vec<Value>>)> {
    vec![
        ("region", data.region.clone()),
        ("nation", data.nation.clone()),
        ("supplier", data.supplier.clone()),
        ("customer", data.customer.clone()),
        ("part", data.part.clone()),
        ("partsupp", data.partsupp.clone()),
        ("orders", data.orders.clone()),
        ("lineitem", data.lineitem.clone()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = TpchData::generate(0.002, 7);
        let b = TpchData::generate(0.002, 7);
        assert_eq!(a.lineitem.len(), b.lineitem.len());
        assert_eq!(a.lineitem[0], b.lineitem[0]);
        assert_eq!(a.orders[10], b.orders[10]);
    }

    #[test]
    fn ratios_follow_spec() {
        let d = TpchData::generate(0.01, 1);
        assert_eq!(d.region.len(), 5);
        assert_eq!(d.nation.len(), 25);
        assert_eq!(d.customer.len(), 1500);
        assert_eq!(d.orders.len(), 15_000);
        assert_eq!(d.part.len(), 2000);
        assert_eq!(d.partsupp.len(), 8000);
        // ~4 lineitems per order
        let ratio = d.lineitem.len() as f64 / d.orders.len() as f64;
        assert!((3.0..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rows_satisfy_schemas() {
        let d = TpchData::generate(0.002, 3);
        for row in d.lineitem.iter().take(50) {
            lineitem_schema().check_row(row).unwrap();
        }
        for row in d.orders.iter().take(50) {
            orders_schema().check_row(row).unwrap();
        }
        for row in &d.nation {
            nation_schema().check_row(row).unwrap();
        }
    }

    #[test]
    fn dates_are_consistent() {
        let d = TpchData::generate(0.002, 3);
        for row in d.lineitem.iter().take(200) {
            let ship = row[10].as_int().unwrap();
            let receipt = row[12].as_int().unwrap();
            assert!(receipt > ship, "receipt after ship");
        }
    }
}
