//! Workloads for the paper's evaluation (§8):
//!
//! * [`tpch`] — a deterministic TPC-H-schema generator at laptop scale
//!   plus plan builders for queries Q1–Q20 (Fig 10's x-axis). Queries
//!   keep TPC-H's operator shapes — join graphs, aggregates,
//!   selectivities — with the handful of simplifications documented on
//!   each builder (we implement the engine, not a SQL front end).
//! * [`dashboard`] — the "customer-supplied short query comprised of
//!   multiple joins and aggregations" behind Fig 11a and Fig 12:
//!   a star schema with a compact fact table and two dimensions.
//! * [`copyload`] — the many-small-COPY generator of Fig 11b
//!   ("typical of an internet of things workload").

pub mod copyload;
pub mod dashboard;
pub mod tpch;

pub use tpch::{load_tpch_enterprise, load_tpch_eon, tpch_query, TpchData, TPCH_QUERY_COUNT};
