//! The many-small-COPY workload of Fig 11b: "each bulk load or COPY
//! statement loads 50MB of input data. Many tables being loaded
//! concurrently with a small batch size produces this type of load; the
//! scenario is typical of an internet of things workload."
//!
//! We generate fixed-size batches of telemetry-shaped rows; the bench
//! harness scales the batch row count so a batch plays the role of the
//! paper's 50MB file at laptop scale.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eon_columnar::Projection;
use eon_types::{schema, Schema, Value};

pub fn telemetry_schema() -> Schema {
    schema![
        ("device_id", Int),
        ("ts", Int),
        ("metric", Str),
        ("value", Float),
    ]
}

/// Create the telemetry table on an Eon database.
pub fn create_telemetry_table(db: &eon_core::EonDb) -> eon_types::Result<()> {
    let s = telemetry_schema();
    db.create_table(
        "telemetry",
        s.clone(),
        vec![Projection::super_projection("telemetry_super", &s, &[1], &[0])],
    )
    .map(|_| ())
}

const METRICS: [&str; 4] = ["temp", "rpm", "volt", "amps"];

/// One COPY batch: `rows` telemetry rows, deterministic per
/// (seed, batch_index).
pub fn batch(rows: usize, seed: u64, batch_index: u64) -> Vec<Vec<Value>> {
    let mut rng = StdRng::seed_from_u64(seed ^ batch_index.wrapping_mul(0x9e37));
    (0..rows)
        .map(|i| {
            vec![
                Value::Int(rng.gen_range(0..10_000)),
                Value::Int((batch_index as i64) * rows as i64 + i as i64),
                Value::Str(METRICS[rng.gen_range(0..METRICS.len())].into()),
                Value::Float(rng.gen_range(-50.0..150.0)),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eon_core::{EonConfig, EonDb};
    use std::sync::Arc;

    #[test]
    fn batches_are_deterministic_and_distinct() {
        let a = batch(100, 1, 0);
        let b = batch(100, 1, 0);
        let c = batch(100, 1, 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        for row in &a {
            telemetry_schema().check_row(row).unwrap();
        }
    }

    #[test]
    fn concurrent_small_copies_load_cleanly() {
        let db = EonDb::create(
            Arc::new(eon_storage::MemFs::new()),
            EonConfig::new(3, 3),
        )
        .unwrap();
        create_telemetry_table(&db).unwrap();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..8u64 {
                let db = &db;
                handles.push(scope.spawn(move || {
                    db.copy_into("telemetry", batch(200, 42, t)).unwrap()
                }));
            }
            let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 1600);
        });
        use eon_exec::{AggSpec, Plan, ScanSpec};
        let plan = Plan::scan(ScanSpec::new("telemetry"))
            .aggregate(vec![], vec![AggSpec::count_star()]);
        assert_eq!(db.query(&plan).unwrap()[0][0], Value::Int(1600));
    }
}
