//! The dashboard workload behind Fig 11a and Fig 12: "a
//! customer-supplied short query comprised of multiple joins and
//! aggregations that usually runs in about 100 milliseconds."
//!
//! We synthesize a star schema — a compact `events` fact table joined
//! to a replicated `product` dimension and a replicated `geo`
//! dimension — and a short query with two joins, a filter, and a
//! grouped aggregation. Operator mix matches the description; absolute
//! runtime depends on the generated volume.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use eon_columnar::pruning::CmpOp;
use eon_columnar::{Predicate, Projection};
use eon_exec::{AggSpec, Expr, Plan, ScanSpec, SortKey};
use eon_types::{schema, Schema, Value};

pub fn events_schema() -> Schema {
    schema![
        ("event_id", Int),
        ("product_id", Int),
        ("geo_id", Int),
        ("amount", Int),
        ("ts", Int),
    ]
}

pub fn product_schema() -> Schema {
    schema![("product_id", Int), ("category", Str), ("price", Int)]
}

pub fn geo_schema() -> Schema {
    schema![("geo_id", Int), ("region", Str)]
}

/// Generated dashboard data.
pub struct DashboardData {
    pub events: Vec<Vec<Value>>,
    pub products: Vec<Vec<Value>>,
    pub geos: Vec<Vec<Value>>,
}

const CATEGORIES: [&str; 6] = ["toys", "books", "tools", "garden", "music", "games"];
const REGIONS: [&str; 4] = ["NA", "EU", "APAC", "LATAM"];

pub fn generate(n_events: usize, seed: u64) -> DashboardData {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_products = 200.max(n_events / 100);
    let products = (0..n_products as i64)
        .map(|p| {
            vec![
                Value::Int(p),
                Value::Str(CATEGORIES[rng.gen_range(0..CATEGORIES.len())].into()),
                Value::Int(rng.gen_range(1..500)),
            ]
        })
        .collect();
    let geos = (0..REGIONS.len() as i64)
        .map(|g| vec![Value::Int(g), Value::Str(REGIONS[g as usize].into())])
        .collect();
    let events = (0..n_events as i64)
        .map(|e| {
            vec![
                Value::Int(e),
                Value::Int(rng.gen_range(0..n_products as i64)),
                Value::Int(rng.gen_range(0..REGIONS.len() as i64)),
                Value::Int(rng.gen_range(1..100)),
                Value::Int(e), // monotone "timestamp"
            ]
        })
        .collect();
    DashboardData {
        events,
        products,
        geos,
    }
}

/// Create the star-schema tables and load them into an Eon database.
pub fn load_eon(db: &eon_core::EonDb, data: &DashboardData) -> eon_types::Result<()> {
    let es = events_schema();
    db.create_table(
        "events",
        es.clone(),
        vec![Projection::super_projection("events_super", &es, &[4], &[0])],
    )?;
    let ps = product_schema();
    db.create_table(
        "product",
        ps.clone(),
        vec![Projection::replicated("product_rep", &ps, &[0])],
    )?;
    let gs = geo_schema();
    db.create_table(
        "geo",
        gs.clone(),
        vec![Projection::replicated("geo_rep", &gs, &[0])],
    )?;
    db.copy_into("events", data.events.clone())?;
    db.copy_into("product", data.products.clone())?;
    db.copy_into("geo", data.geos.clone())?;
    Ok(())
}

/// Same for the Enterprise baseline.
pub fn load_enterprise(
    db: &eon_enterprise::EnterpriseDb,
    data: &DashboardData,
) -> eon_types::Result<()> {
    let es = events_schema();
    db.create_table(
        "events",
        es.clone(),
        Projection::super_projection("events_super", &es, &[4], &[0]),
    )?;
    let ps = product_schema();
    db.create_table(
        "product",
        ps.clone(),
        Projection::super_projection("product_super", &ps, &[0], &[0]),
    )?;
    let gs = geo_schema();
    db.create_table(
        "geo",
        gs.clone(),
        Projection::super_projection("geo_super", &gs, &[0], &[0]),
    )?;
    db.copy_into("events", data.events.clone())?;
    db.copy_into("product", data.products.clone())?;
    db.copy_into("geo", data.geos.clone())?;
    Ok(())
}

/// The short dashboard query: recent events ⋈ product ⋈ geo, revenue
/// per (category, region), sorted, top 10.
pub fn short_query(ts_floor: i64) -> Plan {
    // events(5) ⋈ product(3) → 8 (category 6, price 7) ⋈ geo(2) → 10
    // (region 9).
    Plan::scan(
        ScanSpec::new("events").predicate(Predicate::cmp(4, CmpOp::Ge, ts_floor)),
    )
    .join(Plan::scan(ScanSpec::new("product").global()), vec![1], vec![0])
    .join(Plan::scan(ScanSpec::new("geo").global()), vec![2], vec![0])
    .aggregate(
        vec![6, 9],
        vec![
            AggSpec::sum(Expr::mul(col(3), col(7))),
            AggSpec::count_star(),
        ],
    )
    .sort(vec![SortKey::desc(2)])
    .limit(10)
}

fn col(i: usize) -> Expr {
    Expr::col(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eon_core::{EonConfig, EonDb};
    use eon_enterprise::{EnterpriseConfig, EnterpriseDb};
    use std::sync::Arc;

    #[test]
    fn eon_and_enterprise_agree_on_dashboard_query() {
        let data = generate(5_000, 11);
        let eon = EonDb::create(
            Arc::new(eon_storage::MemFs::new()),
            EonConfig::new(3, 3),
        )
        .unwrap();
        load_eon(&eon, &data).unwrap();
        let ent = EnterpriseDb::create(EnterpriseConfig {
            num_nodes: 3,
            exec_slots: 4,
            wos_threshold: 100_000,
            fragment_ms: 0,
        });
        load_enterprise(&ent, &data).unwrap();

        let plan = short_query(1_000);
        let a = eon.query(&plan).unwrap();
        let b = ent.query(&plan).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "two architectures, one answer");
    }

    #[test]
    fn short_query_is_selective() {
        let data = generate(2_000, 3);
        let eon = EonDb::create(
            Arc::new(eon_storage::MemFs::new()),
            EonConfig::new(3, 3),
        )
        .unwrap();
        load_eon(&eon, &data).unwrap();
        let out = eon.query(&short_query(0)).unwrap();
        assert!(out.len() <= 10);
    }
}
