//! Transaction-log records and checkpoints (paper §2.4).
//!
//! "Transaction commit results in transaction logs appended to a redo
//! log … broken into multiple files but totally ordered with an
//! incrementing version counter. When the total transaction log size
//! exceeds a threshold, the catalog writes out a checkpoint … Vertica
//! retains two checkpoints."
//!
//! Records serialize as JSON — catalog metadata is small relative to
//! data, and a self-describing format keeps revive debuggable, which is
//! worth more than bytes here.

use bytes::Bytes;
use eon_types::{EonError, Result, TxnVersion};
use serde::{Deserialize, Serialize};

use crate::objects::CatalogOp;
use crate::state::CatalogState;

/// One committed transaction: the ops that move the catalog from
/// `version - 1` to `version`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxnRecord {
    pub version: TxnVersion,
    pub ops: Vec<CatalogOp>,
}

impl TxnRecord {
    pub fn encode(&self) -> Bytes {
        Bytes::from(serde_json::to_vec(self).expect("txn record serialization cannot fail"))
    }

    pub fn decode(data: &[u8]) -> Result<TxnRecord> {
        serde_json::from_slice(data)
            .map_err(|e| EonError::Corrupt(format!("bad txn record: {e}")))
    }
}

/// Encode a group-commit batch as one log file: a JSON array of
/// records. The array brace is the format discriminator — single
/// records serialize as objects, so [`decode_log_file`] can dispatch on
/// the leading byte.
pub fn encode_batch(records: &[TxnRecord]) -> Bytes {
    Bytes::from(serde_json::to_vec(records).expect("txn batch serialization cannot fail"))
}

/// Decode a log file that may hold either a single [`TxnRecord`] or a
/// group-commit batch of them. Batches must be non-empty and hold
/// consecutive versions — a malformed batch is corruption, not a gap.
pub fn decode_log_file(data: &[u8]) -> Result<Vec<TxnRecord>> {
    let records = if data.first() == Some(&b'[') {
        let records: Vec<TxnRecord> = serde_json::from_slice(data)
            .map_err(|e| EonError::Corrupt(format!("bad txn batch: {e}")))?;
        if records.is_empty() {
            return Err(EonError::Corrupt("empty txn batch".into()));
        }
        records
    } else {
        vec![TxnRecord::decode(data)?]
    };
    for pair in records.windows(2) {
        if pair[1].version != pair[0].version.next() {
            return Err(EonError::Corrupt(format!(
                "non-consecutive txn batch: {} then {}",
                pair[0].version.0, pair[1].version.0
            )));
        }
    }
    Ok(records)
}

/// A full catalog snapshot labelled with its version, so it "can be
/// ordered relative to the transaction logs".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    pub version: TxnVersion,
    pub state: CatalogState,
}

impl Checkpoint {
    pub fn encode(&self) -> Bytes {
        Bytes::from(serde_json::to_vec(self).expect("checkpoint serialization cannot fail"))
    }

    pub fn decode(data: &[u8]) -> Result<Checkpoint> {
        serde_json::from_slice(data)
            .map_err(|e| EonError::Corrupt(format!("bad checkpoint: {e}")))
    }
}

/// Key for the log file of `version` under `prefix`. Zero-padded so
/// lexicographic order equals version order — the property `list`-based
/// replay depends on.
pub fn txn_key(prefix: &str, version: TxnVersion) -> String {
    format!("{prefix}txn/{:020}", version.0)
}

/// Key for a group-commit batch holding versions `lo..=hi`. The lexico-
/// graphic position is fixed by the zero-padded `lo` (and `-` sorts
/// before every digit), so batch files interleave correctly with
/// single-record files in `list`-based replay.
pub fn txn_batch_key(prefix: &str, lo: TxnVersion, hi: TxnVersion) -> String {
    format!("{prefix}txn/{:020}-{:020}", lo.0, hi.0)
}

/// Key for the checkpoint at `version` under `prefix`.
pub fn ckpt_key(prefix: &str, version: TxnVersion) -> String {
    format!("{prefix}ckpt/{:020}", version.0)
}

/// A version component is exactly the 20-digit zero-padded form the key
/// constructors emit — anything looser would let stray numeric-suffixed
/// objects under the catalog prefix be ingested by list-based replay.
fn parse_padded(s: &str) -> Option<TxnVersion> {
    if s.len() == 20 && s.bytes().all(|b| b.is_ascii_digit()) {
        s.parse::<u64>().ok().map(TxnVersion)
    } else {
        None
    }
}

/// The `txn/` / `ckpt/` path component of a log key, or `None` if the
/// key is not shaped like one of ours.
fn log_kind_component(key: &str) -> Option<&str> {
    let mut it = key.rsplit('/');
    let last = it.next()?;
    matches!(it.next(), Some("txn" | "ckpt")).then_some(last)
}

/// Parse the version out of a `txn_key`/`ckpt_key`-shaped key. Requires
/// the `txn/`/`ckpt/` component and the exact zero-padded shape; batch
/// keys and any other object under the prefix return `None`.
pub fn version_of_key(key: &str) -> Option<TxnVersion> {
    parse_padded(log_kind_component(key)?)
}

/// Parse the inclusive version range of a log key: `(v, v)` for a
/// single-record key, `(lo, hi)` for a batch key. `None` for anything
/// that is not a well-formed log key.
pub fn version_range_of_key(key: &str) -> Option<(TxnVersion, TxnVersion)> {
    let last = log_kind_component(key)?;
    if let Some(v) = parse_padded(last) {
        return Some((v, v));
    }
    let (lo, hi) = last.split_once('-')?;
    let (lo, hi) = (parse_padded(lo)?, parse_padded(hi)?);
    if lo <= hi {
        Some((lo, hi))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eon_types::Oid;

    #[test]
    fn record_roundtrip() {
        let r = TxnRecord {
            version: TxnVersion(7),
            ops: vec![CatalogOp::DropTable(Oid(1))],
        };
        assert_eq!(TxnRecord::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn checkpoint_roundtrip() {
        let c = Checkpoint {
            version: TxnVersion(3),
            state: CatalogState::default(),
        };
        assert_eq!(Checkpoint::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn decode_garbage_errors() {
        assert!(TxnRecord::decode(b"{not json").is_err());
        assert!(Checkpoint::decode(b"").is_err());
    }

    #[test]
    fn keys_sort_by_version() {
        let a = txn_key("meta/", TxnVersion(9));
        let b = txn_key("meta/", TxnVersion(10));
        let c = txn_key("meta/", TxnVersion(100));
        assert!(a < b && b < c);
        assert_eq!(version_of_key(&c), Some(TxnVersion(100)));
        assert_eq!(version_of_key("meta/ckpt/nope"), None);
    }

    #[test]
    fn version_of_key_requires_log_shape() {
        // Wrong path component: numeric suffix alone must not parse.
        assert_eq!(version_of_key("catalog/junk/00000000000000000007"), None);
        // Unpadded or otherwise malformed version components.
        assert_eq!(version_of_key("catalog/txn/7"), None);
        assert_eq!(version_of_key("catalog/txn/0000000000000000007x"), None);
        assert_eq!(version_of_key("txn"), None);
        // The exact constructor shapes still parse.
        assert_eq!(
            version_of_key(&txn_key("catalog/", TxnVersion(7))),
            Some(TxnVersion(7))
        );
        assert_eq!(
            version_of_key(&ckpt_key("meta/inc0/", TxnVersion(3))),
            Some(TxnVersion(3))
        );
        // Batch keys are not single-version keys.
        assert_eq!(
            version_of_key(&txn_batch_key("catalog/", TxnVersion(4), TxnVersion(6))),
            None
        );
    }

    #[test]
    fn version_range_of_key_parses_both_shapes() {
        assert_eq!(
            version_range_of_key(&txn_key("catalog/", TxnVersion(7))),
            Some((TxnVersion(7), TxnVersion(7)))
        );
        assert_eq!(
            version_range_of_key(&txn_batch_key("catalog/", TxnVersion(4), TxnVersion(6))),
            Some((TxnVersion(4), TxnVersion(6)))
        );
        // Inverted ranges and junk paths are rejected.
        assert_eq!(
            version_range_of_key(&txn_batch_key("catalog/", TxnVersion(6), TxnVersion(4))),
            None
        );
        assert_eq!(version_range_of_key("catalog/junk/00000000000000000007"), None);
    }

    #[test]
    fn batch_keys_interleave_with_single_keys() {
        // A batch covering 7..=9 must sort after txn 6 and before txn 10
        // by its lo component.
        let before = txn_key("catalog/", TxnVersion(6));
        let batch = txn_batch_key("catalog/", TxnVersion(7), TxnVersion(9));
        let after = txn_key("catalog/", TxnVersion(10));
        assert!(before < batch && batch < after);
    }

    #[test]
    fn batch_roundtrip_and_dispatch() {
        let recs: Vec<TxnRecord> = (1..=3)
            .map(|v| TxnRecord {
                version: TxnVersion(v),
                ops: vec![CatalogOp::DropTable(Oid(v))],
            })
            .collect();
        assert_eq!(decode_log_file(&encode_batch(&recs)).unwrap(), recs);
        // Single-record files decode through the same entry point.
        assert_eq!(decode_log_file(&recs[0].encode()).unwrap(), recs[..1]);
        // Empty or gapped batches are corruption.
        assert!(decode_log_file(b"[]").is_err());
        let gapped = vec![recs[0].clone(), recs[2].clone()];
        assert!(decode_log_file(&encode_batch(&gapped)).is_err());
    }
}
