//! Transaction-log records and checkpoints (paper §2.4).
//!
//! "Transaction commit results in transaction logs appended to a redo
//! log … broken into multiple files but totally ordered with an
//! incrementing version counter. When the total transaction log size
//! exceeds a threshold, the catalog writes out a checkpoint … Vertica
//! retains two checkpoints."
//!
//! Records serialize as JSON — catalog metadata is small relative to
//! data, and a self-describing format keeps revive debuggable, which is
//! worth more than bytes here.

use bytes::Bytes;
use eon_types::{EonError, Result, TxnVersion};
use serde::{Deserialize, Serialize};

use crate::objects::CatalogOp;
use crate::state::CatalogState;

/// One committed transaction: the ops that move the catalog from
/// `version - 1` to `version`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxnRecord {
    pub version: TxnVersion,
    pub ops: Vec<CatalogOp>,
}

impl TxnRecord {
    pub fn encode(&self) -> Bytes {
        Bytes::from(serde_json::to_vec(self).expect("txn record serialization cannot fail"))
    }

    pub fn decode(data: &[u8]) -> Result<TxnRecord> {
        serde_json::from_slice(data)
            .map_err(|e| EonError::Corrupt(format!("bad txn record: {e}")))
    }
}

/// A full catalog snapshot labelled with its version, so it "can be
/// ordered relative to the transaction logs".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    pub version: TxnVersion,
    pub state: CatalogState,
}

impl Checkpoint {
    pub fn encode(&self) -> Bytes {
        Bytes::from(serde_json::to_vec(self).expect("checkpoint serialization cannot fail"))
    }

    pub fn decode(data: &[u8]) -> Result<Checkpoint> {
        serde_json::from_slice(data)
            .map_err(|e| EonError::Corrupt(format!("bad checkpoint: {e}")))
    }
}

/// Key for the log file of `version` under `prefix`. Zero-padded so
/// lexicographic order equals version order — the property `list`-based
/// replay depends on.
pub fn txn_key(prefix: &str, version: TxnVersion) -> String {
    format!("{prefix}txn/{:020}", version.0)
}

/// Key for the checkpoint at `version` under `prefix`.
pub fn ckpt_key(prefix: &str, version: TxnVersion) -> String {
    format!("{prefix}ckpt/{:020}", version.0)
}

/// Parse the version out of a `txn_key`/`ckpt_key`-shaped key.
pub fn version_of_key(key: &str) -> Option<TxnVersion> {
    key.rsplit('/').next()?.parse::<u64>().ok().map(TxnVersion)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eon_types::Oid;

    #[test]
    fn record_roundtrip() {
        let r = TxnRecord {
            version: TxnVersion(7),
            ops: vec![CatalogOp::DropTable(Oid(1))],
        };
        assert_eq!(TxnRecord::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn checkpoint_roundtrip() {
        let c = Checkpoint {
            version: TxnVersion(3),
            state: CatalogState::default(),
        };
        assert_eq!(Checkpoint::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn decode_garbage_errors() {
        assert!(TxnRecord::decode(b"{not json").is_err());
        assert!(Checkpoint::decode(b"").is_err());
    }

    #[test]
    fn keys_sort_by_version() {
        let a = txn_key("meta/", TxnVersion(9));
        let b = txn_key("meta/", TxnVersion(10));
        let c = txn_key("meta/", TxnVersion(100));
        assert!(a < b && b < c);
        assert_eq!(version_of_key(&c), Some(TxnVersion(100)));
        assert_eq!(version_of_key("meta/ckpt/nope"), None);
    }
}
